//! Live observability over a cluster under crash/restart churn.
//!
//! Run with: `cargo run --release --example observe`
//!
//! Three nodes share one observer. Node 0 sends pattern-directed traffic
//! at workers on nodes 1 and 2 while node 2 is killed mid-run and later
//! restarted. A stats table refreshes from metric snapshots as the run
//! progresses; at the end the example checks its own telemetry — a
//! non-empty snapshot and at least one complete message lifecycle — and
//! prints `OBS SMOKE OK`, which `scripts/ci.sh` greps for.
//!
//! `OBSERVE_MS` bounds the run (default 3000; CI uses a shorter run).

use std::time::{Duration, Instant};

use actorspace::prelude::*;
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_obs::{names, Obs, ObsConfig, Snapshot};

fn row(snap: &Snapshot, cluster: &Cluster, node: u16) -> String {
    let c = |name: &str| snap.counter(name, node).unwrap_or(0);
    format!(
        "  {:>4} {:>3} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        node,
        if cluster.node(node as usize).is_up() {
            "up"
        } else {
            "DOWN"
        },
        c(names::RT_DELIVERIES),
        c(names::NET_FORWARDED),
        c(names::RT_FAILOVERS),
        c(names::RT_DEAD_LETTERS),
        c(names::NET_RETRANSMITS),
        c(names::NET_RESTARTS),
    )
}

fn main() {
    let run_ms: u64 = std::env::var("OBSERVE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let obs = Obs::shared(ObsConfig {
        sample_every: 1, // trace everything: this run is about visibility
        ..ObsConfig::default()
    });
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        failure: FailureConfig::fast(),
        obs: Some(obs.clone()),
        ..ClusterConfig::default()
    });
    let space = cluster.node(0).create_space(None);
    for i in [1usize, 2] {
        let w = cluster.node(i).spawn(from_fn(|_ctx, _msg| {}));
        cluster
            .node(i)
            .make_visible(w, &path(&format!("svc/n{i}")), space, None)
            .unwrap();
    }
    assert!(cluster.await_coherence(Duration::from_secs(10)));

    println!("3-node cluster, node 2 will crash and return; OBSERVE_MS={run_ms}\n");
    println!(
        "  {:>4} {:>3} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "node", "", "deliver", "forward", "failover", "deadltr", "retx", "restarts"
    );

    let start = Instant::now();
    let deadline = start + Duration::from_millis(run_ms);
    let kill_at = start + Duration::from_millis(run_ms / 3);
    let restart_at = start + Duration::from_millis(2 * run_ms / 3);
    let mut killed = false;
    let mut restarted = false;
    let mut sent = 0u64;
    let mut last_table = Instant::now();
    while Instant::now() < deadline {
        let _ = cluster
            .node(0)
            .send_pattern(&pattern("svc/*"), space, Value::int(sent as i64));
        sent += 1;
        if !killed && Instant::now() >= kill_at {
            killed = cluster.kill_node(2);
            println!("  -- kill node 2 --");
        }
        if !restarted && Instant::now() >= restart_at {
            restarted = cluster.restart_node(2);
            println!("  -- restart node 2 --");
        }
        if last_table.elapsed() >= Duration::from_millis(run_ms / 8) {
            let snap = obs.snapshot();
            for n in 0..3 {
                println!("{}", row(&snap, &cluster, n));
            }
            println!();
            last_table = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cluster.await_quiescence(Duration::from_secs(10));

    // Self-checks: the run must have produced real telemetry.
    let snap = obs.snapshot();
    assert!(!snap.is_empty(), "metric snapshot is empty");
    assert!(
        snap.counter_total(names::RT_DELIVERIES) > 0,
        "no deliveries recorded"
    );
    let complete = obs.tracer.complete_traces();
    assert!(
        !complete.is_empty(),
        "no message completed a traced lifecycle"
    );
    assert!(killed && restarted, "churn did not run (run too short?)");
    assert_eq!(
        snap.counter_total(names::NET_DECODE_FAILURES),
        0,
        "wire corruption between well-behaved nodes"
    );

    println!("final snapshot:");
    for n in 0..3 {
        println!("{}", row(&snap, &cluster, n));
    }
    println!(
        "\nsent {} sends; {} events in trace ring ({} complete lifecycles, {} dropped)",
        sent,
        obs.tracer.len(),
        complete.len(),
        obs.tracer.dropped(),
    );
    let sample = obs.tracer.events_for(complete[complete.len() / 2]);
    println!("one lifecycle, straight from the export format:");
    for e in &sample {
        println!("  {}", e.to_json_line());
    }
    cluster.shutdown();
    println!("\nOBS SMOKE OK");
}
