//! A multi-node ActorSpace deployment — the paper's Figure 3 architecture.
//!
//! Run with: `cargo run --example cluster_demo`
//!
//! Three simulated nodes connected by a coordinator bus (centralized
//! sequencer) and reliable point-to-point data links. Visibility changes
//! are globally ordered so every node has the same view; pattern
//! resolution is local; messages to remote actors are forwarded
//! automatically.

use std::time::Duration;

use actorspace::prelude::*;
use actorspace_net::{Cluster, ClusterConfig, LinkConfig, OrderingProtocol};

fn main() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        protocol: OrderingProtocol::Sequencer,
        data_link: LinkConfig {
            latency: Duration::from_micros(200),
            jitter: Duration::from_micros(100),
            ..LinkConfig::ideal()
        },
        ..ClusterConfig::default()
    });
    println!("3-node cluster up (sequencer-ordered coordinator bus)\n");

    // A shared space, created on node 0, replicated everywhere.
    let services = cluster.node(0).create_space(None);

    // Each node hosts one worker, visible under its own attribute.
    let (inbox, rx) = cluster.node(0).system().inbox();
    for i in 0..3 {
        let node_name = i as i64;
        let w = cluster.node(i).spawn(from_fn(move |ctx, msg| {
            let n = msg.body.as_int().unwrap_or(0);
            ctx.send_addr(
                inbox,
                Value::list([Value::int(node_name), Value::int(n * n)]),
            );
        }));
        cluster
            .node(i)
            .make_visible(w, &path(&format!("sq/node{i}")), services, None)
            .unwrap();
    }
    assert!(cluster.await_coherence(Duration::from_secs(10)));
    println!("every node now resolves the same view:");
    for i in 0..3 {
        let found = cluster
            .node(i)
            .system()
            .resolve(&pattern("sq/**"), services)
            .unwrap();
        println!("  node {i} sees {} workers", found.len());
    }

    // Send from node 2 by pattern: resolution is local, forwarding is
    // automatic (§7.3).
    println!("\nnode 2 sends 10 jobs to `sq/*` (any worker):");
    for n in 1..=10 {
        cluster
            .node(2)
            .send_pattern(&pattern("sq/*"), services, Value::int(n))
            .unwrap();
    }
    let mut by_node = [0u32; 3];
    for _ in 0..10 {
        let m = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let parts = m.body.as_list().unwrap();
        by_node[parts[0].as_int().unwrap() as usize] += 1;
    }
    for (i, c) in by_node.iter().enumerate() {
        println!("  node {i} served {c} jobs");
    }

    // Broadcast reaches workers on every node.
    println!("\nnode 1 broadcasts to `sq/**`:");
    cluster
        .node(1)
        .broadcast(&pattern("sq/**"), services, Value::int(5))
        .unwrap();
    let mut heard = std::collections::HashSet::new();
    for _ in 0..3 {
        let m = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        heard.insert(m.body.as_list().unwrap()[0].as_int().unwrap());
    }
    println!("  workers on nodes {heard:?} all received it");

    let stats: Vec<_> = cluster.nodes().iter().map(|n| n.stats()).collect();
    println!("\nper-node counters:");
    for (i, s) in stats.iter().enumerate() {
        println!(
            "  node {i}: {} bus events applied, {} messages forwarded",
            s.applied, s.forwarded
        );
    }

    cluster.shutdown();
}
