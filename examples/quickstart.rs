//! Quickstart: the ActorSpace primitives in two minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the §5 model end to end: create an actorSpace, spawn
//! actors, make them visible under attributes, reach them by *pattern*
//! rather than by address, broadcast to a group, and see the §5.6
//! suspension semantics release a message when a matching actor appears.

use std::time::Duration;

use actorspace::prelude::*;

fn main() {
    let system = ActorSystem::new(Config::default());

    // An actorSpace: a passive container that scopes pattern matching.
    let services = system.create_space(None).unwrap();

    // A channel-backed inbox so main() can receive replies.
    let (inbox, rx) = system.inbox();

    // Two servers with different attributes.
    let fib = system.spawn(from_fn(move |ctx, msg| {
        let n = msg.body.as_int().unwrap_or(0);
        fn fib(n: i64) -> i64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        ctx.send_addr(inbox, Value::list([Value::str("fib"), Value::int(fib(n))]));
    }));
    let square = system.spawn(from_fn(move |ctx, msg| {
        let n = msg.body.as_int().unwrap_or(0);
        ctx.send_addr(
            inbox,
            Value::list([Value::str("square"), Value::int(n * n)]),
        );
    }));

    // Visibility is explicit (§5.4): until made visible, no pattern can
    // reach an actor.
    system
        .make_visible(fib.id(), &path("srv/math/fib"), services, None)
        .unwrap();
    system
        .make_visible(square.id(), &path("srv/math/square"), services, None)
        .unwrap();

    // Pattern-directed send: one matching actor receives it.
    system
        .send_pattern(&pattern("srv/math/fib"), services, Value::int(20), None)
        .unwrap();
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!("fib(20)      -> {}", m.body);

    // Wildcards select groups; `send` picks ONE non-deterministically —
    // this is how replicated services are load-balanced (§5.3).
    system
        .send_pattern(&pattern("srv/math/*"), services, Value::int(7), None)
        .unwrap();
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!("srv/math/*   -> {} (one of the two servers)", m.body);

    // `broadcast` reaches EVERY matching actor.
    system
        .broadcast(&pattern("srv/**"), services, Value::int(3), None)
        .unwrap();
    for _ in 0..2 {
        let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        println!("broadcast    -> {}", m.body);
    }

    // Unmatched messages suspend until a matching actor appears (§5.6).
    system
        .send_pattern(
            &pattern("srv/text/upper"),
            services,
            Value::str("hello"),
            None,
        )
        .unwrap();
    println!("suspended    -> message for srv/text/upper waits...");
    let upper = system.spawn(from_fn(move |ctx, msg| {
        let s = msg.body.as_str().unwrap_or("").to_uppercase();
        ctx.send_addr(inbox, Value::str(s));
    }));
    system
        .make_visible(upper.id(), &path("srv/text/upper"), services, None)
        .unwrap();
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!("released     -> {}", m.body);

    system.shutdown();
}
