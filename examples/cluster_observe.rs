//! Remote observability: one subscriber watches a churning cluster
//! through the delta-encoded snapshot stream.
//!
//! Run with: `cargo run --release --example cluster_observe`
//!
//! Three nodes each publish delta frames of their own metrics slice every
//! 50ms; the observer's [`ClusterView`] folds them into a cluster-wide
//! aggregate — it never touches the nodes' registries directly. Node 2 is
//! killed mid-run (the failure detector marks it stale in the view) and
//! later restarted (the next frame flips it back and bumps its rejoin
//! counter). A text dashboard rendered *from the view* refreshes as the
//! run progresses. At the end the example checks that the view converged
//! on the nodes' real totals, saw the churn, and carries nonzero
//! `lock.wait.*` timing — then prints `CLUSTER OBS OK`, which
//! `scripts/ci.sh` greps for.
//!
//! `CLUSTER_OBSERVE_MS` bounds the run (default 3000; CI runs shorter).

use std::sync::Barrier;
use std::time::{Duration, Instant};

use actorspace::prelude::*;
use actorspace_lockcheck::{LockClass, Mutex, RwLock};
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_obs::{names, MetricValue};

/// A burst of seeded lock contention, so `lock.wait.*` histograms carry
/// samples even on a machine fast enough to never contend organically.
/// The shard is taken under the meta lock, per the coordinator's
/// two-level protocol, so the probe is order-valid under
/// `--features lockcheck` too.
fn contention_probe() {
    static META: RwLock<()> = RwLock::new(LockClass::Meta, ());
    static SHARD: Mutex<()> = Mutex::new(LockClass::Shard(900_002), ());
    let rendezvous = Barrier::new(2);
    std::thread::scope(|s| {
        s.spawn(|| {
            let _meta = META.read();
            let _shard = SHARD.lock();
            rendezvous.wait();
            std::thread::sleep(Duration::from_millis(2));
        });
        rendezvous.wait();
        let _meta = META.read();
        drop(SHARD.lock());
    });
}

fn main() {
    let run_ms: u64 = std::env::var("CLUSTER_OBSERVE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let publish = Duration::from_millis(50);
    let stale_after = publish * 10;
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        failure: FailureConfig::fast(),
        obs_publish: Some(publish),
        ..ClusterConfig::default()
    });
    let view = cluster.observe();
    let obs = cluster.obs().clone();

    let space = cluster.node(0).create_space(None);
    for i in [1usize, 2] {
        let w = cluster.node(i).spawn(from_fn(|_ctx, _msg| {}));
        cluster
            .node(i)
            .make_visible(w, &path(&format!("svc/n{i}")), space, None)
            .unwrap();
    }
    assert!(cluster.await_coherence(Duration::from_secs(10)));

    println!("3-node cluster, one remote observer; CLUSTER_OBSERVE_MS={run_ms}");
    println!("dashboard below renders from streamed deltas, not local state\n");

    let start = Instant::now();
    let deadline = start + Duration::from_millis(run_ms);
    let kill_at = start + Duration::from_millis(run_ms / 3);
    let restart_at = start + Duration::from_millis(2 * run_ms / 3);
    let (mut killed, mut restarted) = (false, false);
    let mut sent = 0u64;
    let mut last_dash = Instant::now();
    while Instant::now() < deadline {
        let _ = cluster
            .node(0)
            .send_pattern(&pattern("svc/*"), space, Value::int(sent as i64));
        sent += 1;
        if sent.is_multiple_of(64) {
            contention_probe();
        }
        if !killed && Instant::now() >= kill_at {
            killed = cluster.kill_node(2);
            println!("-- kill node 2 --");
        }
        if !restarted && Instant::now() >= restart_at {
            restarted = cluster.restart_node(2);
            println!("-- restart node 2 --");
        }
        if last_dash.elapsed() >= Duration::from_millis(run_ms / 6) {
            println!("{}", view.render(obs.now_nanos(), stale_after));
            last_dash = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(killed && restarted, "churn did not run (run too short?)");
    assert!(cluster.await_quiescence(Duration::from_secs(10)));

    // The publishers keep streaming after traffic stops; wait for the
    // view to converge on the registry's real per-node delivery totals.
    let wanted: Vec<u64> = (0..3u16)
        .map(|n| obs.metrics.counter(names::RT_DELIVERIES, n).get())
        .collect();
    let converge_deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let m = view.merged();
        if (0..3u16).all(|n| m.counter(names::RT_DELIVERIES, n).unwrap_or(0) == wanted[n as usize])
        {
            break;
        }
        assert!(
            Instant::now() < converge_deadline,
            "view never converged on the nodes' delivery totals:\n{}",
            view.render(obs.now_nanos(), stale_after)
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    println!("final view:\n{}", view.render(obs.now_nanos(), stale_after));

    // Self-checks on the *streamed* aggregate.
    let merged = view.merged();
    assert!(
        view.nodes().len() >= 2,
        "merged view tracks fewer than 2 publishers"
    );
    let lock_waits: u64 = merged
        .entries
        .iter()
        .filter(|e| e.name.starts_with(names::LOCK_WAIT_PREFIX))
        .map(|e| match &e.value {
            MetricValue::Histogram(h) => h.count,
            _ => 0,
        })
        .sum();
    assert!(lock_waits > 0, "no lock.wait.* samples reached the view");
    let rejoins = view.peer(2).map(|p| p.rejoins).unwrap_or(0);
    assert!(
        rejoins >= 1,
        "node 2's restart never registered as a rejoin"
    );
    println!(
        "observer saw {} deliveries, {} lock-wait samples, node 2 rejoined {} time(s)",
        merged.counter_total(names::RT_DELIVERIES),
        lock_waits,
        rejoins
    );
    cluster.shutdown();
    println!("\nCLUSTER OBS OK");
}
