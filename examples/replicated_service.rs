//! Replicated services behind one pattern — §5.3:
//!
//! "This is useful when several actors are replicating a service offered
//! to clients … the load may be balanced automatically by an
//! implementation, and none of the clients need to know the exact number
//! of potential receivers."
//!
//! Run with: `cargo run --example replicated_service`
//!
//! A client hammers `srv/kv` with requests while the number of replicas
//! changes from 1 → 4 → 2 *without the client noticing*. Also demos the
//! manager customization of §8: switching the space's selection policy
//! from Random to RoundRobin at run time.

use std::collections::HashMap;
use std::time::Duration;

use actorspace::prelude::*;
use actorspace_core::ManagerPolicy;

fn main() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();

    // Spawn one replica; each reply carries the replica's name so we can
    // see who served the request.
    let spawn_replica = |name: &'static str| {
        let r = system.spawn(from_fn(move |ctx, msg| {
            let parts = msg.body.as_list().unwrap();
            let reply_to = parts[1].as_addr().unwrap();
            ctx.send_addr(reply_to, Value::list([Value::str(name), parts[0].clone()]));
        }));
        system
            .make_visible(r.id(), &path("srv/kv"), space, None)
            .unwrap();
        r
    };

    let ask = |i: i64| {
        system
            .send_pattern(
                &pattern("srv/kv"),
                space,
                Value::list([Value::int(i), Value::Addr(inbox)]),
                None,
            )
            .unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap()
    };

    let tally = |n: i64, label: &str, ask: &dyn Fn(i64) -> Message| {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for i in 0..n {
            let m = ask(i);
            let who = m.body.as_list().unwrap()[0].as_str().unwrap().to_owned();
            *counts.entry(who).or_insert(0) += 1;
        }
        println!("{label}:");
        let mut keys: Vec<_> = counts.keys().cloned().collect();
        keys.sort();
        for k in keys {
            let c = counts[&k];
            println!("  {k:<10} {c:>4}  {}", "#".repeat((c / 4) as usize));
        }
    };

    // Phase 1: a single replica serves everything.
    let _a = spawn_replica("alpha").leak();
    tally(40, "1 replica (alpha)", &ask);

    // Phase 2: three more replicas appear — the client code is unchanged.
    let b = spawn_replica("beta");
    let c = spawn_replica("gamma");
    let _d = spawn_replica("delta").leak();
    tally(
        200,
        "\n4 replicas, Random selection (the default non-deterministic choice)",
        &ask,
    );

    // Phase 3: §8 manager customization — switch arbitration to RoundRobin.
    let policy = ManagerPolicy {
        selection: actorspace_core::SelectionPolicy::RoundRobin,
        ..Default::default()
    };
    system.set_space_policy(space, policy, None).unwrap();
    tally(
        200,
        "\n4 replicas, RoundRobin selection (customized manager)",
        &ask,
    );

    // Phase 4: two replicas retire — again invisible to the client.
    system.make_invisible(b.id(), space, None).unwrap();
    system.make_invisible(c.id(), space, None).unwrap();
    tally(40, "\n2 replicas after beta and gamma retire", &ask);

    println!(
        "\nthe client sent the same pattern `srv/kv` throughout — it never knew the replica count"
    );
    system.shutdown();
}
