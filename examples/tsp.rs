//! Travelling salesman by distributed branch-and-bound — the paper's §5.3
//! motivating example for `broadcast`:
//!
//! "in search problems such as the Traveling Salesman, a new lower bound
//! can be broadcast to all nodes participating in the search for the
//! shortest route."
//!
//! Run with: `cargo run --example tsp --release`
//!
//! Search workers live in an actorSpace; each improved incumbent tour is
//! broadcast to `searcher/**`, pruning everyone's remaining subtree. The
//! run compares against (a) an exact Held–Karp solution for correctness
//! and (b) the identical search *without* bound sharing, to show what the
//! broadcast buys.

use actorspace_bench::workloads::tsp::{solve_actorspace_with, Instance};

fn main() {
    let n = 13;
    let workers = 4;
    // A deliberately loose starting incumbent (2× greedy): bound sharing
    // matters most when searchers start with a poor bound.
    let slack = 2.0;
    println!("TSP: {n} random cities, {workers} searcher actors, initial bound = 2x greedy\n");

    for seed in [1u64, 2, 3] {
        let inst = Instance::random(n, seed);
        let exact = inst.held_karp();

        let shared = solve_actorspace_with(&inst, workers, true, slack);
        let lone = solve_actorspace_with(&inst, workers, false, slack);

        assert_eq!(shared.best, exact, "bound-sharing search must be exact");
        assert_eq!(lone.best, exact, "baseline search must be exact");

        let ratio = lone.nodes_explored as f64 / shared.nodes_explored.max(1) as f64;
        println!("instance seed={seed}:  optimum = {exact} (Held–Karp verified)");
        println!(
            "  with broadcast bounds : {:>9} nodes  {:>9.2?}   ({} bound broadcasts)",
            shared.nodes_explored, shared.wall, shared.broadcasts
        );
        println!(
            "  without sharing       : {:>9} nodes  {:>9.2?}",
            lone.nodes_explored, lone.wall
        );
        println!("  pruning factor        : {ratio:.2}x fewer nodes explored\n");
    }
}
