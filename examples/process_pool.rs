//! The paper's Figure 1 / §6 example: a dynamic process pool.
//!
//! Run with: `cargo run --example process_pool --release`
//!
//! "Consider a parallel system with a number of processors in a pool that
//! can be allocated to solve problems … All these actors reside in an
//! actorSpace, and new actors may come along while the system is running to
//! help to solve the problem."
//!
//! A client sends a divide-and-conquer job into the `ProcPool` actorSpace
//! with `send(*@ProcPool, job, self)`. Whichever worker receives it splits
//! the job if it is too big and re-sends the halves into the pool — no
//! master process, no knowledge of how many workers exist. Halfway through,
//! more workers join the pool ("the lighter circles denote newly arrived
//! processes") and immediately start absorbing work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace::prelude::*;
use actorspace_core::SpaceId;

/// A worker in the pool: splits big jobs back into the pool, computes
/// small ones, and reports to the collector.
struct Worker {
    pool: SpaceId,
    /// Work items this worker computed (for the load report).
    computed: Arc<AtomicUsize>,
}

impl Behavior for Worker {
    fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // job = (lo hi collector)
        let parts = msg.body.as_list().expect("job is a list");
        let lo = parts[0].as_int().unwrap();
        let hi = parts[1].as_int().unwrap();
        let collector = parts[2].as_addr().unwrap();

        const GRAIN: i64 = 1024;
        if hi - lo > GRAIN {
            // Too big: divide and send the halves to *some* workers in the
            // pool — "send(*@MyNghbrProcs, subjobs[i], self)".
            let mid = (lo + hi) / 2;
            ctx.send_pattern(
                &Pattern::any(),
                self.pool,
                Value::list([Value::int(lo), Value::int(mid), Value::Addr(collector)]),
            )
            .unwrap();
            ctx.send_pattern(
                &Pattern::any(),
                self.pool,
                Value::list([Value::int(mid), Value::int(hi), Value::Addr(collector)]),
            )
            .unwrap();
        } else {
            // Small enough: process. (An iterated hash over the range —
            // heavy enough that the pool stays busy while workers arrive.)
            let sum: i64 = (lo..hi).map(leaf_work).sum();
            self.computed.fetch_add(1, Ordering::Relaxed);
            ctx.send_addr(
                collector,
                Value::list([Value::int(sum), Value::int(hi - lo)]),
            );
        }
    }
}

/// Per-element work: a short iterated mix, so a leaf job costs real time.
fn leaf_work(x: i64) -> i64 {
    let mut h = x as u64 ^ 0x9e37_79b9_7f4a_7c15;
    for _ in 0..64 {
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    (h % 1000) as i64
}

fn main() {
    let system = ActorSystem::new(Config::default());
    let (done_tx, done_rx) = std::sync::mpsc::channel::<i64>();

    // The processor pool actorSpace.
    let pool = system.create_space(None).unwrap();

    // Initial workers.
    let mut load_counters = Vec::new();
    let initial = 4;
    for i in 0..initial {
        let computed = Arc::new(AtomicUsize::new(0));
        load_counters.push(computed.clone());
        let w = system.spawn(Worker { pool, computed });
        system
            .make_visible(w.id(), &path(&format!("proc/{i}")), pool, None)
            .unwrap();
        w.leak();
    }
    println!("pool started with {initial} workers");

    // The collector: joins partial results until the whole range is
    // accounted for.
    let total_range = 1 << 20;
    let collector = {
        let done = done_tx.clone();
        let mut acc = 0i64;
        let mut covered = 0i64;
        system.spawn(from_fn(move |_ctx, msg| {
            let parts = msg.body.as_list().unwrap();
            acc += parts[0].as_int().unwrap();
            covered += parts[1].as_int().unwrap();
            if covered == total_range {
                let _ = done.send(acc);
            }
        }))
    };

    // The client: one send into the pool starts everything —
    // `send(*@ProcPool, job, self)`.
    system
        .send_pattern(
            &Pattern::any(),
            pool,
            Value::list([
                Value::int(0),
                Value::int(total_range),
                Value::Addr(collector.id()),
            ]),
            None,
        )
        .unwrap();

    // While the computation runs, new workers arrive — "the number of
    // processors allocated to the task can be adjusted during execution —
    // without having to stop the system."
    std::thread::sleep(Duration::from_millis(5));
    let late = 4;
    for i in 0..late {
        let computed = Arc::new(AtomicUsize::new(0));
        load_counters.push(computed.clone());
        let w = system.spawn(Worker { pool, computed });
        system
            .make_visible(w.id(), &path(&format!("proc/late-{i}")), pool, None)
            .unwrap();
        w.leak();
    }
    println!("{late} more workers joined mid-run");

    let result = done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("job must finish");
    // Verify against the sequential computation.
    let expected: i64 = (0..total_range).map(leaf_work).sum();
    assert_eq!(result, expected);
    println!("result = {result} (verified against sequential computation)");

    println!("\nwork distribution (leaf jobs per worker):");
    for (i, c) in load_counters.iter().enumerate() {
        let name = if i < initial {
            format!("proc/{i}")
        } else {
            format!("proc/late-{}", i - initial)
        };
        let n = c.load(Ordering::Relaxed);
        println!("  {name:<12} {n:>5}  {}", "#".repeat(n / 8));
    }
    let late_total: usize = load_counters[initial..]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum();
    println!(
        "\nlate-arriving workers absorbed {late_total} leaf jobs — the pool rebalanced \
         without stopping"
    );

    system.shutdown();
}
