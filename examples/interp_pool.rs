//! The §6 process pool written in the prototype's behavior language (§7).
//!
//! Run with: `cargo run --example interp_pool`
//!
//! The paper's prototype interprets behaviors loaded at run time. This
//! example loads the divide-and-conquer pool as s-expression source,
//! spawns interpreted workers into an actorSpace, and drives the same
//! `send(*@ProcPool, job, self)` protocol as the native example — showing
//! that "the computations themselves may be expressed in different
//! programming notations" (§5).

use std::sync::Arc;
use std::time::Duration;

use actorspace::interp::{BehaviorLib, InterpBehavior};
use actorspace::prelude::*;

const POOL_SOURCE: &str = r#"
; A worker: splits oversized jobs back into the pool, computes small ones.
; job = (lo hi collector)
(behavior worker (pool)
  (on job
    (let ((lo (nth job 0)) (hi (nth job 1)) (collector (nth job 2)))
      (if (> (- hi lo) 64)
          (let ((mid (/ (+ lo hi) 2)))
            (send "**" pool (list lo mid collector))
            (send "**" pool (list mid hi collector)))
          (begin
            (define s 0)
            (define i lo)
            (while (< i hi) (set! s (+ s (* i i))) (set! i (+ i 1)))
            (send-addr collector (list s (- hi lo))))))))

; The collector: joins partial sums until the range is covered.
(behavior collector (total out acc covered)
  (on part
    (set! acc (+ acc (nth part 0)))
    (set! covered (+ covered (nth part 1)))
    (if (= covered total)
        (send-addr out acc))))
"#;

fn main() {
    let lib = Arc::new(BehaviorLib::load(POOL_SOURCE).expect("behavior source parses"));
    println!("loaded behaviors: worker, collector (from s-expression source)\n");

    let system = ActorSystem::new(Config::default());
    let pool = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();

    // Spawn interpreted workers into the pool.
    for i in 0..4 {
        let w = system
            .spawn(InterpBehavior::new(lib.clone(), "worker", vec![Value::Space(pool)]).unwrap());
        system
            .make_visible(w.id(), &path(&format!("proc/{i}")), pool, None)
            .unwrap();
        w.leak();
    }

    let total: i64 = 4096;
    let collector = system.spawn(
        InterpBehavior::new(
            lib.clone(),
            "collector",
            vec![
                Value::int(total),
                Value::Addr(inbox),
                Value::int(0),
                Value::int(0),
            ],
        )
        .unwrap(),
    );

    // Kick off: one pattern send into the pool.
    system
        .send_pattern(
            &Pattern::any(),
            pool,
            Value::list([
                Value::int(0),
                Value::int(total),
                Value::Addr(collector.id()),
            ]),
            None,
        )
        .unwrap();

    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .unwrap()
        .body
        .as_int()
        .unwrap();
    let expected: i64 = (0..total).map(|i| i * i).sum();
    assert_eq!(result, expected);
    println!("sum of squares over 0..{total} = {result} (verified)");
    println!("computed by interpreted actors cooperating through the pool actorSpace");

    system.shutdown();
}
