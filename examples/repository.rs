//! Pattern-directed access to a software repository — §1:
//!
//! "Consider each class as a 'factory' actor which may return its
//! instances. The interface specifications of classes may be represented
//! as attributes which are then used to dynamically access classes from
//! the library."
//!
//! Run with: `cargo run --example repository`
//!
//! Factory actors advertise `<package>/<interface>/<version>` attributes in
//! a library actorSpace. Clients discover and instantiate classes purely by
//! pattern: exact coordinates, "any version of this interface", or "the
//! whole package" — queries a name server cannot express.

use std::time::Duration;

use actorspace::prelude::*;

fn main() {
    let system = ActorSystem::new(Config::default());
    let library = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();

    // A factory actor: answers `instantiate` requests by creating a fresh
    // instance actor and returning its address (the class-as-factory idea).
    let install = |pkg: &'static str, iface: &'static str, ver: &'static str| {
        let f = system.spawn(from_fn(move |ctx, msg| {
            let reply_to = msg.body.as_list().unwrap()[0].as_addr().unwrap();
            // The "instance": an actor that reports its own class.
            let instance = ctx.create(from_fn(move |ictx, imsg| {
                let reply = imsg.body.as_addr().unwrap();
                ictx.send_addr(
                    reply,
                    Value::str(format!("instance of {pkg}/{iface}/{ver}")),
                );
            }));
            ctx.send_addr(
                reply_to,
                Value::list([
                    Value::str(format!("{pkg}/{iface}/{ver}")),
                    Value::Addr(instance),
                ]),
            );
        }));
        system
            .make_visible(
                f.id(),
                &path(&format!("{pkg}/{iface}/{ver}")),
                library,
                None,
            )
            .unwrap();
        f.leak();
    };

    // Populate the library.
    for (pkg, iface, vers) in [
        ("collections", "list", &["v1", "v2"][..]),
        ("collections", "map", &["v1"][..]),
        ("numerics", "matrix", &["v1", "v2", "v3"][..]),
        ("numerics", "fft", &["v1"][..]),
    ] {
        for v in vers {
            install(pkg, iface, v);
        }
    }
    println!("library populated: 7 factory classes across 2 packages\n");

    // 1. Exact retrieval: instantiate collections/map v1.
    system
        .send_pattern(
            &pattern("collections/map/v1"),
            library,
            Value::list([Value::Addr(inbox)]),
            None,
        )
        .unwrap();
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    let parts = m.body.as_list().unwrap().to_vec();
    println!("exact query `collections/map/v1`   -> factory {}", parts[0]);

    // The returned instance is a live actor.
    let instance = parts[1].as_addr().unwrap();
    system.send_to(instance, Value::Addr(inbox));
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!("instantiated object answered       -> {}", m.body);

    // 2. "Any version" retrieval: the system picks one matching factory.
    system
        .send_pattern(
            &pattern("numerics/matrix/*"),
            library,
            Value::list([Value::Addr(inbox)]),
            None,
        )
        .unwrap();
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!(
        "wildcard `numerics/matrix/*`       -> {} (one of 3 versions)",
        m.body.as_list().unwrap()[0]
    );

    // 3. Discovery without delivery: resolve enumerates matches.
    let all = system.resolve(&pattern("collections/**"), library).unwrap();
    println!(
        "resolve `collections/**`           -> {} factories found",
        all.len()
    );

    // 4. A query for a class not yet installed suspends (§5.6)…
    system
        .send_pattern(
            &pattern("graphics/canvas/*"),
            library,
            Value::list([Value::Addr(inbox)]),
            None,
        )
        .unwrap();
    println!("query `graphics/canvas/*`          -> suspended (class not yet installed)");
    // …until someone hot-installs the package.
    install("graphics", "canvas", "v1");
    let m = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    println!(
        "after hot-install                  -> {} answered the waiting query",
        m.body.as_list().unwrap()[0]
    );

    system.shutdown();
}
