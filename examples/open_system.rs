//! The §2 open-system story: clients, servers, and managers.
//!
//! Run with: `cargo run --example open_system`
//!
//! "We want to develop systems which offer resources to applications and
//! reclaim resources after some application has finished using them. …
//! in an open system clients cannot be trusted …, so security must be
//! enforced in order to prevent clients from contaminating a shared
//! resource. Managers have authorization to perform powerful operations
//! such as manipulating actorSpaces."
//!
//! The scenario: a manager offers a shared compute service through a
//! capability-guarded actorSpace. Applications arrive, use the service by
//! pattern, and leave "in a coherent state"; a buggy client cannot damage
//! the shared resource; and the manager reclaims what dead applications
//! leave behind.

use std::time::Duration;

use actorspace::core::managers::NamespaceManager;
use actorspace::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(10);

fn main() {
    let system = ActorSystem::new(Config::default());

    // ---- The manager boots the shared facility -------------------------
    // A guarded space: only the manager's capability can administer it.
    let admin = system.new_capability();
    let facility = system.create_space(Some(&admin)).unwrap();
    // Anchor it in the globally visible root so applications can find it,
    // and constrain every registration to the `public` namespace (§8
    // coordination constraints).
    system
        .make_visible(
            facility,
            &path("facility/compute"),
            actorspace_core::ROOT_SPACE,
            Some(&admin),
        )
        .unwrap();
    system
        .set_space_manager(
            facility,
            Box::new(NamespaceManager::new(path("public"))),
            Some(&admin),
        )
        .unwrap();
    println!("manager: facility online, admission restricted to `public/**` attributes");

    // The shared resource: a compute server, guarded by the manager's
    // capability so clients cannot hide or re-register it.
    let server_cap = system.new_capability();
    let (audit, audit_rx) = system.inbox();
    let server = system
        .spawn_in(
            facility,
            from_fn(move |ctx, msg| {
                let parts = msg.body.as_list().unwrap();
                let n = parts[0].as_int().unwrap();
                let reply_to = parts[1].as_addr().unwrap();
                ctx.send_addr(reply_to, Value::int(n * n));
                ctx.send_addr(audit, Value::int(n));
            }),
            Some(&server_cap),
        )
        .unwrap();
    system
        .make_visible(
            server.id(),
            &path("public/square"),
            facility,
            Some(&server_cap),
        )
        .unwrap();

    // ---- An application arrives ----------------------------------------
    // It discovers the facility by pattern from the root — no prior
    // acquaintance (the open-system property §3 demands).
    let found = system
        .resolve_spaces(&pattern("facility/*"), actorspace_core::ROOT_SPACE)
        .unwrap();
    assert_eq!(found, vec![facility]);
    println!("client:  discovered the facility by pattern, no prior reference");

    let (inbox, rx) = system.inbox();
    for n in [3i64, 4, 5] {
        system
            .send_pattern(
                &pattern("public/*"),
                facility,
                Value::list([Value::int(n), Value::Addr(inbox)]),
                None,
            )
            .unwrap();
        let got = rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap();
        println!("client:  square({n}) = {got}");
    }

    // ---- An untrusted client tries to contaminate the resource ---------
    let mallory_cap = system.new_capability();
    // 1. It cannot register junk outside the namespace the manager set.
    let junk = system.spawn(from_fn(|_, _| {}));
    let refused = system.make_visible(junk.id(), &path("evil/fake-square"), facility, None);
    println!(
        "mallory: register `evil/fake-square` -> {}",
        verdict(refused.is_err())
    );
    // 2. It cannot hide the real server (wrong capability).
    let refused = system.make_invisible(server.id(), facility, Some(&mallory_cap));
    println!(
        "mallory: hide the real server        -> {}",
        verdict(refused.is_err())
    );
    // 3. It cannot re-policy or destroy the facility.
    let refused = system.destroy_space(facility, Some(&mallory_cap));
    println!(
        "mallory: destroy the facility        -> {}",
        verdict(refused.is_err())
    );

    // ---- An application dies; the manager reclaims ---------------------
    // A short-lived app spawns a helper, then exits without cleanup.
    let helper = system.spawn(from_fn(|_, _| {}));
    let leaked_id = helper.id();
    drop(helper); // the application is gone; its helper is garbage
    system.await_idle(TIMEOUT);
    let report = system.collect_garbage(&|_| Vec::new());
    println!(
        "manager: reclaimed {} leaked actor(s) after the application exited",
        report.collected_actors.len()
    );
    assert!(report.collected_actors.contains(&leaked_id));

    // The facility is unharmed throughout.
    let audits: usize = audit_rx.try_iter().count();
    println!("audit:   server handled {audits} requests and is still registered");
    assert_eq!(
        system.resolve(&pattern("public/*"), facility).unwrap(),
        vec![server.id()]
    );
    system.shutdown();
}

fn verdict(refused: bool) -> &'static str {
    if refused {
        "REFUSED (capability check)"
    } else {
        "allowed?!"
    }
}
