//! Structural lint for the lockcheck boundary — compiled and run by
//! `scripts/ci.sh` (`rustc scripts/lint.rs && ./lint <repo root>`), no
//! cargo involvement, no dependencies.
//!
//! Two rules, both scoped to first-party `.rs` sources (`crates/`, `src/`,
//! excluding `crates/lockcheck` and anything under `vendor/` or `target/`):
//!
//! 1. **No raw `parking_lot`.** Every lock must go through the
//!    `actorspace_lockcheck` wrappers so the `--features lockcheck` build
//!    instruments it; a raw `parking_lot` type would be invisible to the
//!    order graph. Only `crates/lockcheck` (the wrapper itself) and the
//!    vendored stub may name it.
//! 2. **No `.lock()` / `.write()` inside inline sink closures.** A closure
//!    passed as an argument to `.send(` / `.broadcast(` / `.resend(` /
//!    `.make_visible(` / `.change_attributes(` runs under the
//!    coordinator's meta + shard locks; taking another lock there is how
//!    re-entrancy deadlocks start. (Out-of-line sink closures are covered
//!    dynamically by the lockcheck re-entrancy detector — this rule just
//!    catches the pattern where it is visible syntactically.)
//!
//! Comments and string literals are stripped (preserving line numbers)
//! before matching, so prose mentioning `parking_lot` is fine.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const SINK_METHODS: [&str; 5] = [
    ".send(",
    ".broadcast(",
    ".resend(",
    ".make_visible(",
    ".change_attributes(",
];

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect(&root.join(top), &mut files);
    }
    files.sort();

    let mut errors = Vec::new();
    for f in &files {
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        let code = strip_comments_and_strings(&text);
        let shown = f.strip_prefix(&root).unwrap_or(f).display();
        if !f.starts_with(root.join("crates/lockcheck")) {
            for (ln, line) in code.lines().enumerate() {
                if line.contains("parking_lot") {
                    errors.push(format!(
                        "{shown}:{}: raw `parking_lot` outside crates/lockcheck — \
                         use the actorspace_lockcheck wrappers",
                        ln + 1
                    ));
                }
            }
        }
        for (ln, what) in locks_in_sink_closures(&code) {
            errors.push(format!(
                "{shown}:{ln}: `{what}` inside a sink closure — sinks run under \
                 the coordinator's meta + shard locks and must not take locks"
            ));
        }
    }

    if errors.is_empty() {
        println!("lockcheck lint: ok ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("lockcheck lint: {e}");
        }
        eprintln!("lockcheck lint: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Blanks comments and string literals with spaces (newlines kept), so
/// later passes see code tokens at their original line numbers.
fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 1;
                        out.push(' ');
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 1;
                        out.push(' ');
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
            '"' => {
                // String literal (raw strings lose their hashes — fine for
                // matching purposes).
                out.push('"');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Finds `.lock(` / `.write(` occurrences lexically inside a closure that
/// is itself inside the argument list of one of [`SINK_METHODS`]. Returns
/// (1-based line, offending token).
fn locks_in_sink_closures(code: &str) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for m in SINK_METHODS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(m) {
            let call = from + pos;
            let open = call + m.len() - 1;
            let Some(close) = matching_paren(code, open) else {
                break;
            };
            let args = &code[open + 1..close];
            if let Some(cl) = closure_start(args) {
                let body = &args[cl..];
                for tok in [".lock(", ".write("] {
                    if let Some(off) = body.find(tok) {
                        let abs = open + 1 + cl + off;
                        let line = code[..abs].matches('\n').count() + 1;
                        hits.push((line, if tok == ".lock(" { ".lock(" } else { ".write(" }));
                    }
                }
            }
            from = open + 1;
        }
    }
    hits.sort();
    hits.dedup();
    hits
}

/// Index of the `)` matching the `(` at `open`, or None.
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Offset just past the opening `|param…|` of an inline closure in an
/// argument list, or None. Recognizes `|…|` introduced at an argument
/// boundary (`(`, `,`, `&`, `mut `, `move `), which sidesteps `||` the
/// logical operator inside ordinary argument expressions.
fn closure_start(args: &str) -> Option<usize> {
    let bytes = args.as_bytes();
    for (i, &c) in bytes.iter().enumerate() {
        if c != b'|' {
            continue;
        }
        let before = args[..i].trim_end();
        let introduced = before.is_empty()
            || before.ends_with(',')
            || before.ends_with('&')
            || before.ends_with("mut")
            || before.ends_with("move");
        if !introduced {
            continue;
        }
        // Find the closing `|` of the parameter list (same line scan is
        // enough for parameter lists; they cannot contain `|`).
        if let Some(end) = args[i + 1..].find('|') {
            return Some(i + 1 + end + 1);
        }
    }
    None
}
