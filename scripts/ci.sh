#!/usr/bin/env bash
# The CI gate, runnable locally: `scripts/ci.sh`.
#
# Mirrors .github/workflows/ci.yml exactly — if this script exits 0, CI
# passes. Everything runs offline: all third-party crates are vendored
# under vendor/ as path dependencies, so no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> lockcheck structural lint (no raw parking_lot, no locking in sink bodies)"
mkdir -p target/lint
rustc --edition 2021 -O scripts/lint.rs -o target/lint/lockcheck-lint
./target/lint/lockcheck-lint .

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (workspace, lockcheck instrumentation on)"
# Same suite with every lock wrapped: lock-order graph, two-level meta/shard
# protocol, ascending-shard order, sink re-entrancy, and the §5.7 visibility
# DAG re-validated after every topology mutation. Any violation panics.
cargo test --workspace -q --features lockcheck

echo "==> shard stress (multi-threaded coordinator tests under parallel harness)"
# The sharded-coordinator stress and oracle tests spawn their own threads;
# running the harness itself multi-threaded adds cross-test interleaving
# on top. Release mode so the contention window is realistic.
RUST_TEST_THREADS=4 cargo test --release -p actorspace-core \
  --test shard_stress --test shard_wakeup --test differential_oracle -q

echo "==> E14 quick (sharded vs global-lock send throughput must stay ~parity)"
E14_QUICK=1 cargo run --release -p actorspace-bench --bin experiments e14

echo "==> E15 quick (obs delta streaming: views must converge; overhead report)"
E15_QUICK=1 cargo run --release -p actorspace-bench --bin experiments e15

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> obs smoke (observe example under churn must self-check)"
# The example asserts a non-empty metric snapshot and at least one
# complete traced lifecycle, then prints the marker we grep for.
OBSERVE_MS=1500 cargo run --release --example observe | tee /tmp/observe.out
grep -q "OBS SMOKE OK" /tmp/observe.out

echo "==> cluster view smoke (remote observer under churn must self-check)"
# The example's merged ClusterView must track >=2 publishers, converge on
# the nodes' true delivery totals, carry nonzero lock.wait.* timing, and
# see node 2's kill/restart as stale -> rejoined, then print the marker.
CLUSTER_OBSERVE_MS=1500 cargo run --release --example cluster_observe | tee /tmp/cluster_observe.out
grep -q "CLUSTER OBS OK" /tmp/cluster_observe.out

echo "CI gate passed."
