//! Cross-crate integration: the full paper scenarios through the façade.

use std::time::Duration;

use actorspace::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(15);

/// The paper's §2 roles: a client requests service, servers provide it, a
/// manager administers the space (capability-guarded policy changes).
#[test]
fn client_server_manager_roles() {
    let system = ActorSystem::new(Config::default());

    // The manager creates a guarded space: only the capability holder may
    // manage it or change guarded members.
    let manage_cap = system.new_capability();
    let space = system.create_space(Some(&manage_cap)).unwrap();

    // Servers register themselves.
    let (inbox, rx) = system.inbox();
    for name in ["s1", "s2"] {
        let srv = system.spawn(from_fn(move |ctx, msg| {
            let reply_to = msg.body.as_list().unwrap()[0].as_addr().unwrap();
            ctx.send_addr(reply_to, Value::str(name));
        }));
        system
            .make_visible(srv.id(), &path("service/echo"), space, None)
            .unwrap();
        srv.leak();
    }

    // A client requests service knowing only the pattern.
    system
        .send_pattern(
            &pattern("service/*"),
            space,
            Value::list([Value::Addr(inbox)]),
            None,
        )
        .unwrap();
    let reply = rx.recv_timeout(TIMEOUT).unwrap();
    assert!(matches!(reply.body.as_str(), Some("s1") | Some("s2")));

    // An untrusted client cannot manage the space…
    let mallory_cap = system.new_capability();
    assert!(system
        .set_space_policy(
            space,
            actorspace_core::ManagerPolicy::default(),
            Some(&mallory_cap)
        )
        .is_err());
    assert!(system.destroy_space(space, None).is_err());

    // …but the manager can.
    system
        .set_space_policy(
            space,
            actorspace_core::ManagerPolicy::default(),
            Some(&manage_cap),
        )
        .unwrap();
    system.destroy_space(space, Some(&manage_cap)).unwrap();
    system.shutdown();
}

/// §1's "successively localized" computation: broadcast to WAN
/// representatives, then distribute within a LAN.
#[test]
fn wan_lan_localization() {
    let system = ActorSystem::new(Config::default());
    let wan = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();

    // Two LANs, each a nested space with local workers.
    for lan_name in ["lan-a", "lan-b"] {
        let lan = system.create_space(None).unwrap();
        system
            .make_visible(lan, &path(lan_name), wan, None)
            .unwrap();
        // A representative: receives WAN broadcasts and re-distributes
        // locally within its own LAN space.
        let rep = system.spawn(from_fn(move |ctx, msg| {
            ctx.send_pattern(&pattern("worker/*"), lan, msg.body)
                .unwrap();
        }));
        system
            .make_visible(rep.id(), &path("rep"), lan, None)
            .unwrap();
        rep.leak();
        for w in 0..2 {
            let lan_label = lan_name;
            let worker = system.spawn(from_fn(move |ctx, msg| {
                ctx.send_addr(
                    msg.body.as_addr().unwrap(),
                    Value::str(format!("{lan_label}-w{w}")),
                );
            }));
            system
                .make_visible(worker.id(), &path(&format!("worker/{w}")), lan, None)
                .unwrap();
            worker.leak();
        }
    }

    // Broadcast to every LAN's representative via the structured attribute
    // `<lan>/rep`; each rep localizes the work inside its LAN.
    system
        .broadcast(&pattern("*/rep"), wan, Value::Addr(inbox), None)
        .unwrap();
    let mut lans_heard = std::collections::HashSet::new();
    for _ in 0..2 {
        let m = rx.recv_timeout(TIMEOUT).unwrap();
        let s = m.body.as_str().unwrap().to_owned();
        lans_heard.insert(s.split("-w").next().unwrap().to_owned());
    }
    assert_eq!(lans_heard.len(), 2, "one worker in each LAN should answer");
    system.shutdown();
}

/// The Actor locality property (§3) survives the extension: an actor that
/// is never made visible is reachable only by its explicit address.
#[test]
fn locality_is_the_default() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    let private = system.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    // Not visible: no pattern reaches it.
    assert_eq!(system.resolve(&Pattern::any(), space).unwrap(), vec![]);
    // The explicit address still works — Actors are a special case of
    // ActorSpace.
    assert!(private.send(Value::int(1)));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(1));
    system.shutdown();
}

/// §5.4: different attributes in different spaces — the mailing-list
/// metaphor ("each list may contain a set of attributes … as viewed by
/// that list").
#[test]
fn per_space_attribute_views() {
    let system = ActorSystem::new(Config::default());
    let red_book = system.create_space(None).unwrap();
    let blue_book = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    let person = system.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    system
        .make_visible(person.id(), &path("plumber"), red_book, None)
        .unwrap();
    system
        .make_visible(person.id(), &path("violinist"), blue_book, None)
        .unwrap();

    // Reachable as a plumber only through the red book.
    system
        .send_pattern(&pattern("plumber"), red_book, Value::int(1), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(1));
    assert_eq!(
        system.resolve(&pattern("plumber"), blue_book).unwrap(),
        vec![]
    );
    assert_eq!(
        system.resolve(&pattern("violinist"), blue_book).unwrap(),
        vec![person.id()]
    );
    system.shutdown();
}

/// Interpreted and native actors cooperating across a simulated cluster.
#[test]
fn interp_actor_on_a_cluster_node() {
    use actorspace::interp::{BehaviorLib, InterpBehavior};
    use actorspace::net::{Cluster, ClusterConfig};
    use std::sync::Arc;

    let lib = Arc::new(
        BehaviorLib::load("(behavior tripler (out) (on m (send-addr out (* 3 m))))").unwrap(),
    );
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        ..ClusterConfig::default()
    });
    let (inbox, rx) = cluster.node(0).system().inbox();
    let space = cluster.node(0).create_space(None);

    // The interpreted actor runs on node 1.
    let t = cluster
        .node(1)
        .spawn(InterpBehavior::new(lib, "tripler", vec![Value::Addr(inbox)]).unwrap());
    cluster
        .node(1)
        .make_visible(t, &path("math/triple"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(TIMEOUT));

    // Node 0 reaches it by pattern; the message crosses the data plane.
    cluster
        .node(0)
        .send_pattern(&pattern("math/*"), space, Value::int(14))
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(42));
    cluster.shutdown();
}

/// GC at the system level: a dropped service is collected; pattern sends
/// then suspend until a replacement arrives (open-system resource
/// reclamation, §2).
#[test]
fn resource_reclamation_cycle() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    // Anchor the space in the globally visible root (§7.1) so GC keeps it;
    // only the withdrawn server should be collected.
    system
        .make_visible(
            space,
            &path("public/services"),
            actorspace_core::ROOT_SPACE,
            None,
        )
        .unwrap();
    let (inbox, rx) = system.inbox();

    let v1 = system.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, Value::list([Value::str("v1"), msg.body]));
    }));
    system
        .make_visible(v1.id(), &path("svc"), space, None)
        .unwrap();
    system
        .send_pattern(&pattern("svc"), space, Value::int(1), None)
        .unwrap();
    rx.recv_timeout(TIMEOUT).unwrap();

    // The server is withdrawn and collected.
    system.make_invisible(v1.id(), space, None).unwrap();
    let v1_id = v1.id();
    drop(v1);
    system.await_idle(TIMEOUT);
    let report = system.collect_garbage(&|_| Vec::new());
    assert!(report.collected_actors.contains(&v1_id));

    // New requests suspend, then a v2 replacement releases them.
    system
        .send_pattern(&pattern("svc"), space, Value::int(2), None)
        .unwrap();
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    let v2 = system.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, Value::list([Value::str("v2"), msg.body]));
    }));
    system
        .make_visible(v2.id(), &path("svc"), space, None)
        .unwrap();
    let m = rx.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(m.body.as_list().unwrap()[0], Value::str("v2"));
    system.shutdown();
}
