//! One test per textual claim of the paper, named by section. These are
//! the executable versions of statements the paper makes in prose.

use std::time::Duration;

use actorspace::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(15);

/// §1: "a set may be described … by enumerating its elements, or by
/// specifying a characteristic function" — address the same group by
/// explicit enumeration and by pattern; same recipients.
#[test]
fn s1_enumeration_equals_characteristic_function() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    let mut enumerated = Vec::new();
    for i in 0..5 {
        let a = system.spawn(from_fn(move |ctx, msg| {
            let me = ctx.self_id();
            ctx.send_addr(msg.body.as_addr().unwrap(), Value::Addr(me));
        }));
        system
            .make_visible(a.id(), &path(&format!("group/m{i}")), space, None)
            .unwrap();
        enumerated.push(a.leak());
    }
    // By pattern.
    system
        .broadcast(&pattern("group/*"), space, Value::Addr(inbox), None)
        .unwrap();
    let mut by_pattern = Vec::new();
    for _ in 0..5 {
        by_pattern.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_addr().unwrap());
    }
    // By enumeration.
    for &a in &enumerated {
        system.send_to(a, Value::Addr(inbox));
    }
    let mut by_enumeration = Vec::new();
    for _ in 0..5 {
        by_enumeration.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_addr().unwrap());
    }
    by_pattern.sort_unstable();
    by_enumeration.sort_unstable();
    assert_eq!(by_pattern, by_enumeration);
    system.shutdown();
}

/// §1: "computational objects … may dynamically change their behavior
/// while retaining their identity" — the mathematical metaphor breaks
/// down; the same address answers differently after `become`.
#[test]
fn s1_identity_survives_behavior_change() {
    let system = ActorSystem::new(Config::default());
    let (inbox, rx) = system.inbox();
    let a = system.spawn(from_fn(move |ctx, msg| {
        if msg.body == Value::str("switch") {
            ctx.become_(from_fn(move |c2, m2| {
                c2.send_addr(inbox, Value::list([Value::str("after"), m2.body]));
            }));
        } else {
            ctx.send_addr(inbox, Value::list([Value::str("before"), msg.body]));
        }
    }));
    let id_before = a.id();
    a.send(Value::int(1));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body.as_list().unwrap()[0],
        Value::str("before")
    );
    a.send(Value::str("switch"));
    a.send(Value::int(2));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body.as_list().unwrap()[0],
        Value::str("after")
    );
    assert_eq!(a.id(), id_before, "identity (mail address) is retained");
    system.shutdown();
}

/// §3: "in ActorSpace, by contrast, the visible attributes of a message's
/// recipient are specified by the sender" — a receiver with the wrong
/// attributes cannot intercept, unlike the Linda tuple theft.
#[test]
fn s3_no_interception_by_wrong_attributes() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    // Mallory advertises a *different* attribute and cannot receive
    // messages addressed to `payroll/*`.
    let mallory = system.spawn(from_fn(move |ctx, _| {
        ctx.send_addr(inbox, Value::str("INTERCEPTED"));
    }));
    system
        .make_visible(mallory.id(), &path("printer/laser"), space, None)
        .unwrap();
    let alice = system.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    system
        .make_visible(alice.id(), &path("payroll/alice"), space, None)
        .unwrap();
    system
        .send_pattern(&pattern("payroll/*"), space, Value::int(9), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(9));
    // Contrast: the Linda baseline demonstrates the theft in its own tests
    // (actorspace_baselines::tuple_space::no_access_control_any_reader_can_consume).
    system.shutdown();
}

/// §3: "changes in a group of potential receivers must be explicitly
/// communicated" in plain Actors — here group changes are invisible to the
/// sender: the same pattern keeps working as membership churns.
#[test]
fn s3_group_membership_changes_are_transparent() {
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    let spawn_member = |tag: i64| {
        let m = system.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(msg.body.as_addr().unwrap(), Value::int(tag));
        }));
        system
            .make_visible(m.id(), &path("pool/w"), space, None)
            .unwrap();
        m
    };
    let first = spawn_member(1);
    system
        .send_pattern(&pattern("pool/*"), space, Value::Addr(inbox), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(1));
    // Membership churns; the client's pattern never changes.
    let _second = spawn_member(2).leak();
    system.make_invisible(first.id(), space, None).unwrap();
    system
        .send_pattern(&pattern("pool/*"), space, Value::Addr(inbox), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(2));
    system.shutdown();
}

/// §5: attributes embed in a description lattice — generalization and
/// specialization by disjunction/conjunction, with exact subsumption.
#[test]
fn s5_description_lattice() {
    use actorspace::pattern::lattice;
    let any_math = pattern("srv/math/**");
    let fib_or_fact = pattern("srv/math/{fib, fact}");
    let fib = pattern("srv/math/fib");
    assert!(lattice::subsumes(&any_math, &fib_or_fact));
    assert!(lattice::subsumes(&fib_or_fact, &fib));
    assert!(!lattice::subsumes(&fib, &fib_or_fact));
    // join generalizes, meet specializes.
    let joined = lattice::join(&fib, &pattern("srv/math/fact"));
    assert!(lattice::equivalent(&joined, &fib_or_fact));
    let met = lattice::meet(any_math.nfa(), fib_or_fact.nfa());
    assert!(actorspace::pattern::matcher::matches(
        &met,
        path("srv/math/fib").atoms()
    ));
    assert!(!actorspace::pattern::matcher::matches(
        &met,
        path("srv/text/upper").atoms()
    ));
}

/// §5.2: "actorSpaces can be referred to by their actorSpace mail address
/// or by a pattern."
#[test]
fn s5_2_spaces_addressable_by_pattern() {
    let system = ActorSystem::new(Config::default());
    let top = system.create_space(None).unwrap();
    let pool = system.create_space(None).unwrap();
    system
        .make_visible(pool, &path("pools/alpha"), top, None)
        .unwrap();
    let found = system.resolve_spaces(&pattern("pools/*"), top).unwrap();
    assert_eq!(found, vec![pool]);
    system.shutdown();
}

/// §5.3: "broadcasts may be received by two actors in a different order
/// and point to point messages may be interleaved between two broadcasts"
/// — the system imposes no broadcast ordering (we verify no *global*
/// coordination is required: both interleavings are accepted outcomes).
#[test]
fn s5_3_no_global_broadcast_order_required() {
    // Deliver two broadcasts to two actors many times; assert only
    // per-actor integrity (both arrive exactly once per broadcast), never
    // a global order.
    let system = ActorSystem::new(Config::default());
    let space = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    for tag in 0..2i64 {
        let a = system.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(
                msg.body.as_addr().unwrap(),
                Value::list([Value::int(tag), msg.body.clone()]),
            );
        }));
        system
            .make_visible(a.id(), &path("grp"), space, None)
            .unwrap();
        a.leak();
    }
    for _ in 0..10 {
        system
            .broadcast(&pattern("grp"), space, Value::Addr(inbox), None)
            .unwrap();
        let mut seen = Vec::new();
        for _ in 0..2 {
            seen.push(
                rx.recv_timeout(TIMEOUT).unwrap().body.as_list().unwrap()[0]
                    .as_int()
                    .unwrap(),
            );
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1], "each member exactly once per broadcast");
    }
    system.shutdown();
}

/// §5.4: "actors are autonomous entities, so they are able to make
/// themselves visible or invisible"; spaces, being passive, cannot — the
/// API makes self-visibility an actor operation only.
#[test]
fn s5_4_actors_autonomous_spaces_passive() {
    let system = ActorSystem::new(Config::default());
    let arena = system.create_space(None).unwrap();
    let (inbox, rx) = system.inbox();
    let a = system.spawn(from_fn(move |ctx, msg| match msg.body.as_str() {
        Some("hide") => {
            ctx.make_self_invisible(arena, None).unwrap();
            ctx.send_addr(inbox, Value::str("hidden"));
        }
        Some("show") => {
            ctx.make_self_visible(&path("me"), arena, None).unwrap();
            ctx.send_addr(inbox, Value::str("shown"));
        }
        _ => {
            ctx.send_addr(inbox, msg.body);
        }
    }));
    a.send(Value::str("show"));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::str("shown"));
    assert_eq!(system.resolve(&pattern("me"), arena).unwrap(), vec![a.id()]);
    a.send(Value::str("hide"));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::str("hidden"));
    assert_eq!(system.resolve(&pattern("me"), arena).unwrap(), vec![]);
    system.shutdown();
}

/// §5.6: "delivery is asynchronous, but is guaranteed to eventually
/// happen" — under a lossy simulated network, every message still arrives
/// (exactly once).
#[test]
fn s5_6_eventual_delivery_under_faults() {
    use actorspace::net::{Cluster, ClusterConfig, LinkConfig};
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        data_link: LinkConfig::lossy(0.35, 0.25, 2024),
        retx_every: Duration::from_millis(5),
        ..ClusterConfig::default()
    });
    let (inbox, rx) = cluster.node(0).system().inbox();
    let space = cluster.node(0).create_space(None);
    let echo = cluster.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    cluster
        .node(1)
        .make_visible(echo, &path("echo"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(TIMEOUT));
    let n = 40;
    for i in 0..n {
        cluster
            .node(0)
            .send_pattern(&pattern("echo"), space, Value::int(i))
            .unwrap();
    }
    let mut got: Vec<i64> = (0..n)
        .map(|_| rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap())
        .collect();
    got.sort_unstable();
    assert_eq!(got, (0..n).collect::<Vec<_>>());
    cluster.shutdown();
}

/// §7.1: "they may be made visible in other actorSpaces, regardless of
/// whether or not they are visible in their 'host' actorSpace."
#[test]
fn s7_1_visibility_independent_of_host() {
    let system = ActorSystem::new(Config::default());
    let host = system.create_space(None).unwrap();
    let elsewhere = system.create_space(None).unwrap();
    let a = system.spawn_in(host, from_fn(|_, _| {}), None).unwrap();
    // Visible only in a foreign space, never in its host.
    system
        .make_visible(a.id(), &path("visitor"), elsewhere, None)
        .unwrap();
    assert_eq!(system.resolve(&pattern("**"), host).unwrap(), vec![]);
    assert_eq!(
        system.resolve(&pattern("visitor"), elsewhere).unwrap(),
        vec![a.id()]
    );
    system.shutdown();
}

/// §8: "persistent messages that would be automatically received by a new
/// participant whenever it enters an existing group."
#[test]
fn s8_persistent_protocol_message() {
    use actorspace_core::{ManagerPolicy, UnmatchedPolicy};
    let system = ActorSystem::new(Config::default());
    let policy = ManagerPolicy {
        unmatched_broadcast: UnmatchedPolicy::Persistent,
        ..Default::default()
    };
    let group = system.create_space(None).unwrap();
    system.set_space_policy(group, policy, None).unwrap();
    let (inbox, rx) = system.inbox();

    // The protocol announcement precedes any member.
    system
        .broadcast(&pattern("member/*"), group, Value::str("protocol-v2"), None)
        .unwrap();

    // Members join at different times; each receives it exactly once.
    for i in 0..3 {
        let m = system.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(inbox, Value::list([Value::int(i), msg.body]));
        }));
        system
            .make_visible(m.id(), &path(&format!("member/{i}")), group, None)
            .unwrap();
        m.leak();
        let got = rx.recv_timeout(TIMEOUT).unwrap();
        let parts = got.body.as_list().unwrap();
        assert_eq!(parts[0], Value::int(i));
        assert_eq!(parts[1], Value::str("protocol-v2"));
    }
    // No duplicates pending.
    system.await_idle(TIMEOUT);
    assert!(rx.try_recv().is_err());
    system.shutdown();
}
