//! `asi` — the ActorSpace interactive shell.
//!
//! A REPL over the prototype's behavior language (§7): type expressions,
//! define behaviors at run time, create actors, make them visible, and
//! send pattern-directed messages — against a live multi-threaded
//! [`ActorSystem`].
//!
//! ```text
//! $ cargo run --bin asi
//! asi> (+ 1 2)
//! 3
//! asi> (behavior echo (out) (on m (send-addr out m)))
//! behavior `echo` loaded
//! asi> (define e (create echo out))
//! actor:5
//! asi> (send-addr e "hello")
//! ()
//! [inbox] "hello"
//! ```
//!
//! The REPL itself runs *inside an actor* (a driver), so every actor
//! primitive is available. `out` is pre-bound to an inbox whose deliveries
//! print asynchronously; `arena` is pre-bound to a scratch actorSpace.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use actorspace::interp::{eval_with_ctx, parse_all, BehaviorLib, Env, Sexp};
use actorspace::prelude::*;
use std::sync::Mutex;

/// Messages the driver actor understands.
enum Request {
    Eval(Sexp),
    SwapLib(Arc<BehaviorLib>),
}

fn main() {
    let system = ActorSystem::new(Config::default());
    let arena = system.create_space(None).expect("create arena space");
    let (inbox, inbox_rx) = system.inbox();

    // Channels between the REPL loop and the driver actor.
    let (req_tx, req_rx) = mpsc::channel::<Request>();
    let (resp_tx, resp_rx) = mpsc::channel::<String>();

    // The driver: evaluates submitted expressions with full actor powers
    // and a persistent environment.
    let mut lib = Arc::new(BehaviorLib::default());
    let driver_lib = Arc::new(Mutex::new(lib.clone()));
    let driver = {
        let driver_lib = driver_lib.clone();
        let mut base = HashMap::new();
        base.insert("out".to_owned(), Value::Addr(inbox));
        base.insert("arena".to_owned(), Value::Space(arena));
        let mut env = Env::with_base(base);
        system.spawn(from_fn(move |ctx, _msg| {
            // Drain all queued requests in one activation.
            while let Ok(req) = req_rx.try_recv() {
                match req {
                    Request::SwapLib(new_lib) => {
                        *driver_lib.lock().unwrap() = new_lib;
                        let _ = resp_tx.send("behaviors loaded".to_owned());
                    }
                    Request::Eval(expr) => {
                        let lib = driver_lib.lock().unwrap().clone();
                        let out = match eval_with_ctx(&lib, &mut env, ctx, &expr) {
                            Ok((v, _become)) => format!("{v}"),
                            Err(e) => format!("error: {e}"),
                        };
                        let _ = resp_tx.send(out);
                    }
                }
            }
        }))
    };

    // Asynchronous inbox printer.
    let running = Arc::new(AtomicBool::new(true));
    let printer = {
        let running = running.clone();
        std::thread::spawn(move || {
            while running.load(Ordering::Acquire) {
                match inbox_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(m) => println!("[inbox] {}", m.body),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        })
    };

    println!("asi — ActorSpace interactive shell");
    println!("  `out` = your inbox address   `arena` = a scratch actorSpace");
    println!("  (behavior …) forms load into the library; :help for commands");

    let stdin = std::io::stdin();
    let mut pending = String::new();
    loop {
        if pending.is_empty() {
            print!("asi> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if pending.is_empty() {
            match trimmed {
                ":quit" | ":q" => break,
                ":help" => {
                    println!("  expressions     (+ 1 2), (create <behavior> args…), (send \"pat\" arena msg)…");
                    println!("  (behavior …)    define/replace a behavior in the library");
                    println!("  :behaviors      list loaded behaviors");
                    println!("  :stats          system counters");
                    println!("  :spaces         per-space membership and queues");
                    println!("  :quit           exit");
                    continue;
                }
                ":behaviors" => {
                    let names: Vec<&str> = lib.names().collect();
                    println!(
                        "  {}",
                        if names.is_empty() {
                            "(none)".to_owned()
                        } else {
                            names.join(", ")
                        }
                    );
                    continue;
                }
                ":stats" => {
                    let s = system.stats();
                    println!(
                        "  actors={} spaces={} pending={} dead_letters={}",
                        s.actors, s.spaces, s.pending, s.dead_letters
                    );
                    continue;
                }
                ":spaces" => {
                    for id in system.space_ids() {
                        if let Ok(info) = system.space_info(id) {
                            println!(
                                "  {id}: {} actors, {} sub-spaces, {} suspended, {} persistent{}",
                                info.actor_members,
                                info.space_members,
                                info.pending_messages,
                                info.persistent_broadcasts,
                                if info.guarded { ", guarded" } else { "" },
                            );
                        }
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        pending.push_str(&line);
        // Keep reading until parentheses balance.
        if !parens_balanced(&pending) {
            continue;
        }
        let source = std::mem::take(&mut pending);
        match parse_all(&source) {
            Err(e) => println!("parse error: {e}"),
            Ok(forms) => {
                for form in forms {
                    if is_behavior_form(&form) {
                        // Extend a fresh snapshot of the current library
                        // with this definition (libraries behind `Arc` are
                        // immutable; the driver swaps atomically).
                        let mut next = clone_lib(&lib);
                        match next.load_more(&form.to_string()) {
                            Ok(()) => {
                                lib = Arc::new(next);
                                req_tx.send(Request::SwapLib(lib.clone())).ok();
                                driver.send(Value::Unit);
                                match resp_rx.recv_timeout(Duration::from_secs(10)) {
                                    Ok(_) => println!("behavior loaded"),
                                    Err(_) => println!("error: driver did not respond"),
                                }
                            }
                            Err(e) => println!("load error: {e}"),
                        }
                    } else {
                        req_tx.send(Request::Eval(form)).ok();
                        driver.send(Value::Unit);
                        match resp_rx.recv_timeout(Duration::from_secs(30)) {
                            Ok(out) => println!("{out}"),
                            Err(_) => println!("error: evaluation timed out"),
                        }
                    }
                }
            }
        }
        // Give async deliveries a moment to print before the next prompt.
        std::thread::sleep(Duration::from_millis(20));
    }

    running.store(false, Ordering::Release);
    printer.join().ok();
    system.shutdown();
}

fn parens_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            ';' => break, // rest-of-line comment; good enough for the REPL
            '(' => depth += 1,
            ')' => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn is_behavior_form(form: &Sexp) -> bool {
    form.as_list()
        .and_then(|l| l.first())
        .and_then(Sexp::as_sym)
        == Some("behavior")
}

/// Rebuilds a library with the same definitions (BehaviorLib holds parsed
/// definitions; regenerate via their stored structure).
fn clone_lib(lib: &BehaviorLib) -> BehaviorLib {
    let mut out = BehaviorLib::default();
    for name in lib.names() {
        let def = lib.get(name).expect("listed name exists");
        // Reassemble the source form and reload it.
        let mut src = format!("(behavior {name} (");
        src.push_str(&def.params.join(" "));
        src.push(')');
        if !def.init.is_empty() {
            src.push_str(" (init");
            for e in &def.init {
                src.push(' ');
                src.push_str(&e.to_string());
            }
            src.push(')');
        }
        src.push_str(&format!(" (on {}", def.msg_var));
        for e in &def.body {
            src.push(' ');
            src.push_str(&e.to_string());
        }
        src.push_str("))");
        out.load_more(&src).expect("regenerated source parses");
    }
    out
}
