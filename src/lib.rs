//! # ActorSpace
//!
//! A Rust reproduction of *ActorSpace: An Open Distributed Programming
//! Paradigm* (Gul Agha and Christian J. Callsen, PPoPP 1993).
//!
//! This façade crate re-exports the whole workspace. See the individual
//! crates for depth:
//!
//! * [`atoms`] — interned atoms and attribute paths (`srv/fib/fast`).
//! * [`pattern`] — regular expressions over atoms: destination patterns.
//! * [`capability`] — unforgeable keys guarding visibility operations.
//! * [`core`] — actorSpaces, the visibility DAG, pattern-directed
//!   `send`/`broadcast`, manager policies, garbage collection.
//! * [`runtime`] — a multi-threaded single-node runtime: mailboxes,
//!   scheduler, the Coordinator, and the three actor ports of the paper's
//!   prototype.
//! * [`interp`] — the prototype's small behavior interpreter.
//! * [`net`] — the inter-node design: a simulated cluster connected by a
//!   coordinator bus with globally ordered broadcasts.
//! * [`obs`] — the shared observer: a lock-light metrics registry plus
//!   sampled message-lifecycle tracing (see README "Observability").
//! * [`baselines`] — the systems the paper compares against: a Linda tuple
//!   space, a global name server, and explicit process groups.
//!
//! ## Quickstart
//!
//! ```
//! use actorspace::prelude::*;
//!
//! let system = ActorSystem::new(Config::default());
//! let space = system.create_space(None).unwrap();
//!
//! // An actor that answers "ping" messages.
//! let (inbox_id, inbox) = system.inbox();
//! let ponger = system.spawn(from_fn(move |ctx, msg| {
//!     ctx.send_addr(inbox_id, Value::list([Value::str("pong"), msg.body]));
//! }));
//!
//! // Make it visible in the space under an attribute, then reach it by
//! // pattern rather than by address.
//! system.make_visible(ponger.id(), &path("srv/ping"), space, None).unwrap();
//! system
//!     .send_pattern(&pattern("srv/*"), space, Value::str("hello"), None)
//!     .unwrap();
//!
//! let reply = inbox.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(reply.body.as_list().unwrap()[0], Value::str("pong"));
//! system.shutdown();
//! ```

#![deny(unsafe_code)]

pub use actorspace_atoms as atoms;
pub use actorspace_baselines as baselines;
pub use actorspace_capability as capability;
pub use actorspace_core as core;
pub use actorspace_interp as interp;
pub use actorspace_net as net;
pub use actorspace_obs as obs;
pub use actorspace_pattern as pattern;
pub use actorspace_runtime as runtime;

/// The most common imports, in one place.
pub mod prelude {
    pub use actorspace_atoms::{atom, path, Atom, Path};
    pub use actorspace_capability::{Capability, Rights};
    pub use actorspace_core::{ActorId, MemberId, SelectionPolicy, SpaceId, UnmatchedPolicy};
    pub use actorspace_pattern::{pattern, Pattern};
    pub use actorspace_runtime::{
        from_fn, ActorHandle, ActorSystem, Behavior, Config, Ctx, Message, Value,
    };
}
