//! Regular expressions over atoms — the destination patterns of ActorSpace.
//!
//! Paper §7.1: "attributes are concatenations of atoms, and patterns are
//! regular expressions over atoms – rather analogous to the structure of
//! files and directories in UNIX."
//!
//! The alphabet of these regular expressions is *atoms* (interned
//! identifiers), not characters. A pattern like `srv/fib/*` has three
//! symbols: the literal atoms `srv` and `fib`, then a wildcard matching any
//! single atom. Patterns are parsed ([`parse`]) into an [`ast::Ast`],
//! compiled ([`nfa`]) into a Thompson NFA over atom ids, and matched
//! ([`matcher`]) with the standard state-set simulation, which is
//! `O(states × path length)` with no pathological backtracking.
//!
//! # Syntax
//!
//! | form | meaning |
//! |---|---|
//! | `ident` | the literal atom `ident` |
//! | `a/b/c` | the atom sequence `a` then `b` then `c` |
//! | `*` | any single atom |
//! | `**` | any sequence of atoms (zero or more) |
//! | `[a b c]` | one atom from the set |
//! | `[^a b c]` | one atom *not* in the set |
//! | `{p, q}` | alternation between sub-patterns |
//! | `p \| q` | alternation (same as `{p, q}`) |
//! | `(p)` | grouping |
//! | `(p)*` `(p)+` `(p)?` | repetition / option (postfix, adjacent) |
//!
//! A postfix operator must be *adjacent* to what it repeats: `(a/b)*`
//! repeats the group, while `a/*` is "atom `a` then any one atom".
//!
//! ```
//! use actorspace_pattern::Pattern;
//! use actorspace_atoms::path;
//!
//! let p = Pattern::parse("srv/{fib, fact}/**").unwrap();
//! assert!(p.matches(&path("srv/fib/fast")));
//! assert!(p.matches(&path("srv/fact")));
//! assert!(!p.matches(&path("srv/sqrt/fast")));
//! ```
//!
//! The [`lattice`] module implements the description-lattice view of
//! attributes from paper §5 (generalization/specialization by conjunction
//! and disjunction) and decision procedures on whole patterns
//! (emptiness-of-intersection, subsumption on star-free patterns).

#![deny(unsafe_code)]

pub mod ast;
pub mod lattice;
pub mod matcher;
pub mod nfa;
pub mod parse;

use std::fmt;
use std::str::FromStr;

use actorspace_atoms::Path;

pub use ast::Ast;
pub use matcher::StateSet;
pub use nfa::Nfa;
pub use parse::ParseError;

/// A compiled destination pattern: parse once, match many times.
///
/// `Pattern` owns both the AST (for display, analysis, and lattice
/// operations) and the compiled NFA (for matching).
#[derive(Clone)]
pub struct Pattern {
    ast: Ast,
    nfa: Nfa,
    text: String,
}

impl Pattern {
    /// Parses and compiles a pattern.
    pub fn parse(text: &str) -> Result<Pattern, ParseError> {
        let ast = parse::parse(text)?;
        Ok(Pattern::from_ast_with_text(ast, text.to_owned()))
    }

    /// Compiles a pattern from an already-built AST.
    pub fn from_ast(ast: Ast) -> Pattern {
        let text = ast.to_string();
        Pattern::from_ast_with_text(ast, text)
    }

    fn from_ast_with_text(ast: Ast, text: String) -> Pattern {
        let nfa = nfa::compile(&ast);
        Pattern { ast, nfa, text }
    }

    /// The pattern matching *any* attribute — the paper's `*` in
    /// `send(*@ProcPool, job, self)`. Equivalent to `**` here: it matches
    /// every visible actor regardless of its attributes.
    pub fn any() -> Pattern {
        Pattern::parse("**").expect("`**` always parses")
    }

    /// Whether this pattern matches an entire attribute path.
    pub fn matches(&self, path: &Path) -> bool {
        matcher::matches(&self.nfa, path.atoms())
    }

    /// Starts an incremental match (used to walk nested actorSpaces without
    /// materializing joined attribute paths).
    pub fn start(&self) -> StateSet {
        matcher::start(&self.nfa)
    }

    /// The compiled NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The pattern's AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// The original (or regenerated) pattern text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// If the pattern matches exactly one literal path (no wildcards,
    /// classes, alternation, or repetition), returns it. The matching
    /// engine uses this for index-based fast paths.
    pub fn as_literal(&self) -> Option<Path> {
        self.ast.as_literal()
    }

    /// True if no path whatsoever can match this pattern.
    pub fn is_empty_language(&self) -> bool {
        !matcher::is_satisfiable(&self.nfa)
    }

    /// True if some path matches both `self` and `other`. Decidable for all
    /// patterns (product-NFA emptiness over an open alphabet).
    pub fn may_overlap(&self, other: &Pattern) -> bool {
        matcher::intersects(&self.nfa, &other.nfa)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({})", self.text)
    }
}

impl FromStr for Pattern {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

impl PartialEq for Pattern {
    /// Structural equality on the AST (not language equivalence).
    fn eq(&self, other: &Self) -> bool {
        self.ast == other.ast
    }
}

impl Eq for Pattern {}

/// Shorthand for `Pattern::parse(s).unwrap()` — for literals in examples
/// and tests. Panics on malformed input.
pub fn pattern(s: &str) -> Pattern {
    Pattern::parse(s).expect("invalid pattern literal")
}
