//! Thompson construction of an NFA over the atom alphabet.
//!
//! States and transitions are plain vectors; atom identity is the interned
//! id, so a transition test is an integer comparison (or a small sorted-set
//! membership test for classes). The alphabet is *open* — new atoms may be
//! interned at any time — which matters for negated classes and for the
//! satisfiability/intersection analyses in [`crate::matcher`].

use actorspace_atoms::Atom;

use crate::ast::Ast;

/// Index of a state inside its [`Nfa`].
pub type StateId = u32;

/// A transition label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trans {
    /// Consume exactly this atom.
    Atom(Atom),
    /// Consume any single atom.
    Any,
    /// Consume one atom from a sorted set.
    In(Vec<Atom>),
    /// Consume one atom *not* in a sorted set.
    NotIn(Vec<Atom>),
}

impl Trans {
    /// Whether this label accepts `a`.
    pub fn accepts(&self, a: Atom) -> bool {
        match self {
            Trans::Atom(x) => *x == a,
            Trans::Any => true,
            Trans::In(set) => set.binary_search(&a).is_ok(),
            Trans::NotIn(set) => set.binary_search(&a).is_err(),
        }
    }

    /// Whether *some* atom is accepted. Only `In([])` would be empty, and
    /// the parser rejects empty classes; `NotIn` is always satisfiable
    /// because the alphabet is open.
    pub fn satisfiable(&self) -> bool {
        match self {
            Trans::In(set) => !set.is_empty(),
            _ => true,
        }
    }
}

/// One NFA state: labelled transitions plus epsilon moves.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// `(label, target)` pairs.
    pub trans: Vec<(Trans, StateId)>,
    /// Epsilon (no-consume) moves.
    pub eps: Vec<StateId>,
}

/// A compiled pattern automaton with a single start and a single accept
/// state (the classic Thompson shape).
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Assembles an NFA from raw parts. Used by the lattice constructions
    /// (product, determinization, complement), which synthesize automata
    /// that have no surface-syntax AST.
    pub fn from_parts(states: Vec<State>, start: StateId, accept: StateId) -> Nfa {
        debug_assert!((start as usize) < states.len());
        debug_assert!((accept as usize) < states.len());
        Nfa {
            states,
            start,
            accept,
        }
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The unique accept state.
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// All states, indexed by [`StateId`].
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// NFAs always have at least a start and accept state.
    pub fn is_empty(&self) -> bool {
        false
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn new_state(&mut self) -> StateId {
        let id = u32::try_from(self.states.len()).expect("NFA too large");
        self.states.push(State::default());
        id
    }

    fn eps(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].eps.push(to);
    }

    fn edge(&mut self, from: StateId, label: Trans, to: StateId) {
        self.states[from as usize].trans.push((label, to));
    }

    /// Builds the fragment for `ast` between fresh start/end states,
    /// returning `(start, end)`.
    fn fragment(&mut self, ast: &Ast) -> (StateId, StateId) {
        match ast {
            Ast::Empty => {
                let s = self.new_state();
                let e = self.new_state();
                self.eps(s, e);
                (s, e)
            }
            Ast::Atom(a) => {
                let s = self.new_state();
                let e = self.new_state();
                self.edge(s, Trans::Atom(*a), e);
                (s, e)
            }
            Ast::AnyAtom => {
                let s = self.new_state();
                let e = self.new_state();
                self.edge(s, Trans::Any, e);
                (s, e)
            }
            Ast::Class { atoms, negated } => {
                let s = self.new_state();
                let e = self.new_state();
                let label = if *negated {
                    Trans::NotIn(atoms.clone())
                } else {
                    Trans::In(atoms.clone())
                };
                self.edge(s, label, e);
                (s, e)
            }
            Ast::Seq(parts) => {
                let mut cur: Option<(StateId, StateId)> = None;
                for p in parts {
                    let (ps, pe) = self.fragment(p);
                    cur = Some(match cur {
                        None => (ps, pe),
                        Some((s, e)) => {
                            self.eps(e, ps);
                            (s, pe)
                        }
                    });
                }
                cur.unwrap_or_else(|| {
                    let s = self.new_state();
                    let e = self.new_state();
                    self.eps(s, e);
                    (s, e)
                })
            }
            Ast::Alt(parts) => {
                let s = self.new_state();
                let e = self.new_state();
                for p in parts {
                    let (ps, pe) = self.fragment(p);
                    self.eps(s, ps);
                    self.eps(pe, e);
                }
                (s, e)
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                let (is, ie) = self.fragment(inner);
                self.eps(s, is);
                self.eps(s, e);
                self.eps(ie, is);
                self.eps(ie, e);
                (s, e)
            }
            Ast::Plus(inner) => {
                // p+ ≡ p / p*
                let (is, ie) = self.fragment(inner);
                let e = self.new_state();
                self.eps(ie, is);
                self.eps(ie, e);
                (is, e)
            }
            Ast::Opt(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                let (is, ie) = self.fragment(inner);
                self.eps(s, is);
                self.eps(s, e);
                self.eps(ie, e);
                (s, e)
            }
        }
    }
}

/// Compiles an AST into its Thompson NFA.
pub fn compile(ast: &Ast) -> Nfa {
    let mut b = Builder { states: Vec::new() };
    let (start, accept) = b.fragment(ast);
    Nfa {
        states: b.states,
        start,
        accept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn nfa(s: &str) -> Nfa {
        compile(&parse(s).unwrap())
    }

    #[test]
    fn trans_accepts() {
        use actorspace_atoms::atom;
        let a = atom("nfa-a");
        let b = atom("nfa-b");
        assert!(Trans::Atom(a).accepts(a));
        assert!(!Trans::Atom(a).accepts(b));
        assert!(Trans::Any.accepts(a));
        let mut set = vec![a, b];
        set.sort_unstable();
        assert!(Trans::In(set.clone()).accepts(a));
        assert!(!Trans::NotIn(set.clone()).accepts(a));
        assert!(Trans::NotIn(set).accepts(atom("nfa-c")));
    }

    #[test]
    fn state_counts_are_linear() {
        // Thompson construction: at most 2 states per AST node.
        let n = nfa("a/b/c/d/e");
        assert!(n.len() <= 2 * 6, "got {}", n.len());
        let n = nfa("(a|b)*");
        assert!(n.len() <= 2 * 5, "got {}", n.len());
    }

    #[test]
    fn empty_pattern_has_eps_path() {
        let n = nfa("");
        assert_eq!(n.states()[n.start() as usize].eps, vec![n.accept()]);
    }

    #[test]
    fn compile_is_deterministic() {
        let a = nfa("x/{y, z}/**");
        let b = nfa("x/{y, z}/**");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.start(), b.start());
        assert_eq!(a.accept(), b.accept());
    }
}
