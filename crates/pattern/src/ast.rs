//! The pattern abstract syntax tree.

use std::fmt;

use actorspace_atoms::{Atom, Path};

/// A pattern expression over the atom alphabet.
///
/// The atom alphabet is *open*: new atoms may be interned at any time, so a
/// negated class `[^a b]` matches infinitely many atoms. All analyses in
/// this crate (emptiness, intersection) account for that.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Ast {
    /// Matches the empty path; the identity of sequencing.
    Empty,
    /// A literal atom.
    Atom(Atom),
    /// `*` — any single atom.
    AnyAtom,
    /// `[a b c]` / `[^a b c]` — one atom (not) in the set. The set is kept
    /// sorted and deduplicated by the constructor.
    Class {
        /// Sorted, deduplicated members.
        atoms: Vec<Atom>,
        /// If true, matches atoms *not* in `atoms`.
        negated: bool,
    },
    /// Sequencing: `a/b/c`.
    Seq(Vec<Ast>),
    /// Alternation: `{p, q}` or `p|q`.
    Alt(Vec<Ast>),
    /// Zero or more repetitions: `(p)*`. `**` desugars to `Star(AnyAtom)`.
    Star(Box<Ast>),
    /// One or more repetitions: `(p)+`.
    Plus(Box<Ast>),
    /// Zero or one: `(p)?`.
    Opt(Box<Ast>),
}

impl Ast {
    /// A class node with the member set normalized (sorted, deduplicated).
    pub fn class(mut atoms: Vec<Atom>, negated: bool) -> Ast {
        atoms.sort_unstable();
        atoms.dedup();
        Ast::Class { atoms, negated }
    }

    /// A sequence, flattening nested sequences and dropping `Empty`.
    pub fn seq(parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Empty => {}
                Ast::Seq(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Ast::Seq(flat),
        }
    }

    /// An alternation, flattening nested alternations.
    pub fn alt(parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Ast::Alt(flat),
        }
    }

    /// The exact-path pattern matching precisely `path` and nothing else.
    pub fn literal(path: &Path) -> Ast {
        Ast::seq(path.iter().map(Ast::Atom).collect())
    }

    /// True if this pattern is *star-free and class-free*: a finite union of
    /// literal paths (possibly with `*` wildcards). Lattice subsumption is
    /// exact on this fragment.
    pub fn is_finite_union(&self) -> bool {
        match self {
            Ast::Empty | Ast::Atom(_) | Ast::AnyAtom => true,
            Ast::Class { .. } => true,
            Ast::Seq(ps) | Ast::Alt(ps) => ps.iter().all(Ast::is_finite_union),
            Ast::Opt(p) => p.is_finite_union(),
            Ast::Star(_) | Ast::Plus(_) => false,
        }
    }

    /// If this pattern is a *literal* — a plain sequence of atoms with no
    /// wildcards, classes, alternation, or repetition — returns the exact
    /// path it matches. Literal patterns admit index-based resolution.
    pub fn as_literal(&self) -> Option<Path> {
        fn collect(ast: &Ast, out: &mut Vec<Atom>) -> bool {
            match ast {
                Ast::Empty => true,
                Ast::Atom(a) => {
                    out.push(*a);
                    true
                }
                Ast::Seq(parts) => parts.iter().all(|p| collect(p, out)),
                _ => false,
            }
        }
        let mut atoms = Vec::new();
        collect(self, &mut atoms).then(|| Path::from_atoms(atoms))
    }

    /// Number of AST nodes — a size measure used by benches.
    pub fn size(&self) -> usize {
        match self {
            Ast::Empty | Ast::Atom(_) | Ast::AnyAtom | Ast::Class { .. } => 1,
            Ast::Seq(ps) | Ast::Alt(ps) => 1 + ps.iter().map(Ast::size).sum::<usize>(),
            Ast::Star(p) | Ast::Plus(p) | Ast::Opt(p) => 1 + p.size(),
        }
    }
}

/// Precedence levels for printing: alternation < sequence < postfix atom.
fn fmt_prec(ast: &Ast, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match ast {
        Ast::Empty => write!(f, "()"),
        Ast::Atom(a) => write!(f, "{a}"),
        Ast::AnyAtom => write!(f, "*"),
        Ast::Class { atoms, negated } => {
            write!(f, "[")?;
            if *negated {
                write!(f, "^")?;
            }
            for (i, a) in atoms.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "]")
        }
        Ast::Seq(ps) => {
            let need_parens = prec > 1;
            if need_parens {
                write!(f, "(")?;
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, "/")?;
                }
                fmt_prec(p, f, 2)?;
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Ast::Alt(ps) => {
            write!(f, "{{")?;
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_prec(p, f, 0)?;
            }
            write!(f, "}}")
        }
        Ast::Star(p) => {
            if matches!(**p, Ast::AnyAtom) {
                write!(f, "**")
            } else {
                write!(f, "(")?;
                fmt_prec(p, f, 0)?;
                write!(f, ")*")
            }
        }
        Ast::Plus(p) => {
            write!(f, "(")?;
            fmt_prec(p, f, 0)?;
            write!(f, ")+")
        }
        Ast::Opt(p) => {
            write!(f, "(")?;
            fmt_prec(p, f, 0)?;
            write!(f, ")?")
        }
    }
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, f, 0)
    }
}

impl fmt::Debug for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ast({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::{atom, path};

    #[test]
    fn seq_flattens_and_drops_empty() {
        let s = Ast::seq(vec![
            Ast::Atom(atom("a")),
            Ast::Empty,
            Ast::seq(vec![Ast::Atom(atom("b")), Ast::Atom(atom("c"))]),
        ]);
        assert_eq!(s.to_string(), "a/b/c");
    }

    #[test]
    fn singleton_seq_collapses() {
        let s = Ast::seq(vec![Ast::Atom(atom("only"))]);
        assert_eq!(s, Ast::Atom(atom("only")));
    }

    #[test]
    fn alt_flattens() {
        let a = Ast::alt(vec![
            Ast::Atom(atom("x")),
            Ast::alt(vec![Ast::Atom(atom("y")), Ast::Atom(atom("z"))]),
        ]);
        assert_eq!(a.to_string(), "{x, y, z}");
    }

    #[test]
    fn class_normalizes() {
        let c1 = Ast::class(vec![atom("b"), atom("a"), atom("b")], false);
        let c2 = Ast::class(vec![atom("a"), atom("b")], false);
        assert_eq!(c1, c2);
    }

    #[test]
    fn literal_of_path() {
        let l = Ast::literal(&path("a/b"));
        assert_eq!(l.to_string(), "a/b");
        assert_eq!(Ast::literal(&path("")), Ast::Empty);
    }

    #[test]
    fn double_star_prints_compactly() {
        let s = Ast::Star(Box::new(Ast::AnyAtom));
        assert_eq!(s.to_string(), "**");
    }

    #[test]
    fn finite_union_classification() {
        assert!(Ast::literal(&path("a/b")).is_finite_union());
        assert!(Ast::alt(vec![Ast::Atom(atom("a")), Ast::AnyAtom]).is_finite_union());
        assert!(!Ast::Star(Box::new(Ast::Atom(atom("a")))).is_finite_union());
        assert!(!Ast::Plus(Box::new(Ast::AnyAtom)).is_finite_union());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Ast::Atom(atom("a")).size(), 1);
        assert_eq!(Ast::literal(&path("a/b/c")).size(), 4);
    }

    #[test]
    fn as_literal_round_trips_literal_paths() {
        for p in ["a", "a/b/c", ""] {
            let ast = Ast::literal(&path(p));
            assert_eq!(ast.as_literal(), Some(path(p)), "{p:?}");
        }
    }

    #[test]
    fn as_literal_rejects_non_literals() {
        for (ast, name) in [
            (Ast::AnyAtom, "star"),
            (Ast::Star(Box::new(Ast::AnyAtom)), "double star"),
            (
                Ast::alt(vec![Ast::Atom(atom("a")), Ast::Atom(atom("b"))]),
                "alt",
            ),
            (Ast::class(vec![atom("a")], false), "class"),
            (Ast::Opt(Box::new(Ast::Atom(atom("a")))), "opt"),
            (
                Ast::seq(vec![Ast::Atom(atom("a")), Ast::AnyAtom]),
                "seq with star",
            ),
        ] {
            assert_eq!(ast.as_literal(), None, "{name}");
        }
    }
}
