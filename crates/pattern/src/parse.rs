//! Lexer and recursive-descent parser for the pattern syntax.
//!
//! The one subtlety is *adjacency*: a postfix operator (`*`, `+`, `?`)
//! applies to the preceding element only when written immediately against
//! it (`(a/b)*`), while a `*` separated by `/` or whitespace is the
//! any-single-atom wildcard (`a/*`). The lexer therefore records, for every
//! token, whether it was glued to the previous one.

use std::fmt;

use actorspace_atoms::atom;

use crate::ast::Ast;

/// Parses pattern `text` into an [`Ast`].
pub fn parse(text: &str) -> Result<Ast, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        text,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.tokens.len() {
        return Err(p.err_here("unexpected trailing input"));
    }
    Ok(ast)
}

/// A pattern syntax error, with byte offset into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was noticed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Star,
    DblStar,
    Plus,
    Question,
    Slash,
    Pipe,
    Comma,
    Caret,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    /// Byte offset of the token's first character.
    offset: usize,
    /// True when this token directly follows the previous token with no
    /// whitespace or `/` in between.
    joined: bool,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

fn lex(text: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut joined = false; // first token is never "joined"
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            joined = false;
            continue;
        }
        let kind = match c {
            '/' => {
                chars.next();
                joined = false;
                toks.push(Tok {
                    kind: TokKind::Slash,
                    offset: i,
                    joined: false,
                });
                continue;
            }
            '*' => {
                chars.next();
                if let Some(&(_, '*')) = chars.peek() {
                    chars.next();
                    TokKind::DblStar
                } else {
                    TokKind::Star
                }
            }
            '+' => {
                chars.next();
                TokKind::Plus
            }
            '?' => {
                chars.next();
                TokKind::Question
            }
            '|' => {
                chars.next();
                TokKind::Pipe
            }
            ',' => {
                chars.next();
                TokKind::Comma
            }
            '^' => {
                chars.next();
                TokKind::Caret
            }
            '(' => {
                chars.next();
                TokKind::LParen
            }
            ')' => {
                chars.next();
                TokKind::RParen
            }
            '{' => {
                chars.next();
                TokKind::LBrace
            }
            '}' => {
                chars.next();
                TokKind::RBrace
            }
            '[' => {
                chars.next();
                TokKind::LBracket
            }
            ']' => {
                chars.next();
                TokKind::RBracket
            }
            c if is_ident_char(c) => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_char(c) {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                TokKind::Ident(s)
            }
            other => {
                return Err(ParseError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        toks.push(Tok {
            kind,
            offset: i,
            joined,
        });
        joined = true;
    }
    Ok(toks)
}

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: &str) -> ParseError {
        let offset = self.peek().map(|t| t.offset).unwrap_or(self.text.len());
        ParseError {
            offset,
            message: msg.to_owned(),
        }
    }

    fn expect(&mut self, kind: TokKind, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t.kind == kind => Ok(()),
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected {what}, found {:?}", t.kind),
            }),
            None => Err(ParseError {
                offset: self.text.len(),
                message: format!("expected {what}, found end of pattern"),
            }),
        }
    }

    /// alt := seq ('|' seq)*
    fn parse_alt(&mut self) -> Result<Ast, ParseError> {
        let mut parts = vec![self.parse_seq()?];
        while matches!(self.peek().map(|t| &t.kind), Some(TokKind::Pipe)) {
            self.bump();
            parts.push(self.parse_seq()?);
        }
        Ok(Ast::alt(parts))
    }

    /// seq := (element ('/'? element)*)?
    fn parse_seq(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        loop {
            // Skip explicit separators between elements.
            while matches!(self.peek().map(|t| &t.kind), Some(TokKind::Slash)) {
                self.bump();
            }
            match self.peek().map(|t| &t.kind) {
                Some(
                    TokKind::Ident(_)
                    | TokKind::Star
                    | TokKind::DblStar
                    | TokKind::LParen
                    | TokKind::LBrace
                    | TokKind::LBracket,
                ) => {
                    parts.push(self.parse_element()?);
                }
                _ => break,
            }
        }
        Ok(Ast::seq(parts))
    }

    /// element := primary postfix*   (postfix must be adjacent)
    fn parse_element(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(t) if t.joined && t.kind == TokKind::Star => {
                    self.bump();
                    node = Ast::Star(Box::new(node));
                }
                Some(t) if t.joined && t.kind == TokKind::Plus => {
                    self.bump();
                    node = Ast::Plus(Box::new(node));
                }
                Some(t) if t.joined && t.kind == TokKind::Question => {
                    self.bump();
                    node = Ast::Opt(Box::new(node));
                }
                Some(t) if t.joined && t.kind == TokKind::DblStar => {
                    return Err(ParseError {
                        offset: t.offset,
                        message: "`**` cannot follow an element directly; write `a/**`".into(),
                    });
                }
                // A `+`/`?` that is NOT adjacent is an error (a lone `+`
                // never starts an element), caught here for a better message.
                Some(t) if !t.joined && matches!(t.kind, TokKind::Plus | TokKind::Question) => {
                    return Err(ParseError {
                        offset: t.offset,
                        message: "postfix operator must directly follow an element".into(),
                    });
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_primary(&mut self) -> Result<Ast, ParseError> {
        let t = self
            .bump()
            .ok_or_else(|| self.err_here("expected a pattern element"))?;
        match t.kind {
            TokKind::Ident(name) => Ok(Ast::Atom(atom(&name))),
            TokKind::Star => Ok(Ast::AnyAtom),
            TokKind::DblStar => Ok(Ast::Star(Box::new(Ast::AnyAtom))),
            TokKind::LParen => {
                // `()` is the empty pattern.
                if matches!(self.peek().map(|t| &t.kind), Some(TokKind::RParen)) {
                    self.bump();
                    return Ok(Ast::Empty);
                }
                let inner = self.parse_alt()?;
                self.expect(TokKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokKind::LBrace => {
                let mut parts = vec![self.parse_alt()?];
                while matches!(self.peek().map(|t| &t.kind), Some(TokKind::Comma)) {
                    self.bump();
                    parts.push(self.parse_alt()?);
                }
                self.expect(TokKind::RBrace, "`}`")?;
                Ok(Ast::alt(parts))
            }
            TokKind::LBracket => {
                let negated = if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Caret)) {
                    self.bump();
                    true
                } else {
                    false
                };
                let mut members = Vec::new();
                loop {
                    match self.peek().map(|t| t.kind.clone()) {
                        Some(TokKind::Ident(name)) => {
                            self.bump();
                            members.push(atom(&name));
                        }
                        Some(TokKind::Comma) => {
                            self.bump();
                        }
                        Some(TokKind::RBracket) => {
                            self.bump();
                            break;
                        }
                        _ => return Err(self.err_here("expected atom or `]` in class")),
                    }
                }
                if members.is_empty() {
                    return Err(ParseError {
                        offset: t.offset,
                        message: "empty atom class".into(),
                    });
                }
                Ok(Ast::class(members, negated))
            }
            other => Err(ParseError {
                offset: t.offset,
                message: format!("unexpected {other:?} at start of element"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::atom;

    fn p(s: &str) -> Ast {
        parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn literal_paths() {
        assert_eq!(p("a"), Ast::Atom(atom("a")));
        assert_eq!(
            p("a/b"),
            Ast::seq(vec![Ast::Atom(atom("a")), Ast::Atom(atom("b"))])
        );
    }

    #[test]
    fn wildcards() {
        assert_eq!(p("*"), Ast::AnyAtom);
        assert_eq!(p("**"), Ast::Star(Box::new(Ast::AnyAtom)));
        assert_eq!(p("a/*"), Ast::seq(vec![Ast::Atom(atom("a")), Ast::AnyAtom]));
        assert_eq!(
            p("a/**"),
            Ast::seq(vec![
                Ast::Atom(atom("a")),
                Ast::Star(Box::new(Ast::AnyAtom))
            ])
        );
    }

    #[test]
    fn adjacency_disambiguates_postfix_star() {
        // `a*`: star glued to the atom → repetition.
        assert_eq!(p("a*"), Ast::Star(Box::new(Ast::Atom(atom("a")))));
        // `a / *`: separated → sequence with any-atom.
        assert_eq!(
            p("a / *"),
            Ast::seq(vec![Ast::Atom(atom("a")), Ast::AnyAtom])
        );
        // `(a/b)*`: group repetition.
        assert_eq!(
            p("(a/b)*"),
            Ast::Star(Box::new(Ast::seq(vec![
                Ast::Atom(atom("a")),
                Ast::Atom(atom("b"))
            ])))
        );
    }

    #[test]
    fn plus_and_question() {
        assert_eq!(p("a+"), Ast::Plus(Box::new(Ast::Atom(atom("a")))));
        assert_eq!(p("(a)?"), Ast::Opt(Box::new(Ast::Atom(atom("a")))));
        assert_eq!(p("a?"), Ast::Opt(Box::new(Ast::Atom(atom("a")))));
    }

    #[test]
    fn alternation_forms() {
        let want = Ast::alt(vec![Ast::Atom(atom("x")), Ast::Atom(atom("y"))]);
        assert_eq!(p("{x, y}"), want);
        assert_eq!(p("x|y"), want);
        assert_eq!(p("{x,y}"), want);
    }

    #[test]
    fn alternation_of_sequences() {
        let got = p("srv/{fib, fact}/fast");
        let want = Ast::seq(vec![
            Ast::Atom(atom("srv")),
            Ast::alt(vec![Ast::Atom(atom("fib")), Ast::Atom(atom("fact"))]),
            Ast::Atom(atom("fast")),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn classes() {
        assert_eq!(
            p("[a b c]"),
            Ast::class(vec![atom("a"), atom("b"), atom("c")], false)
        );
        assert_eq!(p("[a, b]"), Ast::class(vec![atom("a"), atom("b")], false));
        assert_eq!(p("[^a]"), Ast::class(vec![atom("a")], true));
    }

    #[test]
    fn empty_group_is_empty_pattern() {
        assert_eq!(p("()"), Ast::Empty);
        assert_eq!(p("(a)"), Ast::Atom(atom("a")));
    }

    #[test]
    fn nested_groups_and_pipes() {
        let got = p("(a|b)/c");
        let want = Ast::seq(vec![
            Ast::alt(vec![Ast::Atom(atom("a")), Ast::Atom(atom("b"))]),
            Ast::Atom(atom("c")),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn idents_with_punctuation() {
        assert_eq!(p("node-3"), Ast::Atom(atom("node-3")));
        assert_eq!(p("v1.2"), Ast::Atom(atom("v1.2")));
        assert_eq!(p("under_score"), Ast::Atom(atom("under_score")));
    }

    #[test]
    fn errors_are_reported_with_position() {
        for bad in [
            "{a", "(a", "[a", "[]", "a)", "a}", "a**", "@", "+a", "a ^", "a/ +",
        ] {
            let err = parse(bad).expect_err(&format!("{bad:?} should fail"));
            assert!(err.offset <= bad.len());
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn empty_pattern_is_empty_ast() {
        assert_eq!(p(""), Ast::Empty);
        assert_eq!(p("  "), Ast::Empty);
    }

    #[test]
    fn display_round_trips_through_parser() {
        for s in [
            "a/b/c",
            "srv/{fib, fact}/**",
            "(a/b)*",
            "[a b]/c",
            "[^x y]",
            "a+",
            "(a)?",
            "{a, b/c, **}",
        ] {
            let once = p(s);
            let again = p(&once.to_string());
            assert_eq!(once, again, "round-trip failed for {s:?} → {once}");
        }
    }
}
