//! NFA simulation: whole-path matching, incremental state sets for walking
//! nested actorSpaces, and the decision procedures (satisfiability and
//! intersection emptiness) used by the description lattice and by
//! actorSpace managers checking pattern overlap.

use std::collections::VecDeque;

use actorspace_atoms::Atom;

use crate::nfa::{Nfa, StateId, Trans};

/// A set of NFA states, as a bitset. The working representation of an
/// in-progress match; cheap to clone so the matching engine can fork it when
/// descending into nested actorSpaces. `Hash` supports visited-state
/// deduplication when walking (possibly cyclic) space graphs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StateSet {
    bits: Box<[u64]>,
}

impl StateSet {
    fn empty(n_states: usize) -> StateSet {
        StateSet {
            bits: vec![0u64; n_states.div_ceil(64)].into_boxed_slice(),
        }
    }

    fn insert(&mut self, s: StateId) -> bool {
        let (w, b) = (s as usize / 64, s as usize % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    fn contains(&self, s: StateId) -> bool {
        let (w, b) = (s as usize / 64, s as usize % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// True if no states are live — the match can never succeed, so tree
    /// walks prune here.
    pub fn is_dead(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// True if the accept state is live: the atoms consumed so far form a
    /// complete match.
    pub fn is_accepting(&self, nfa: &Nfa) -> bool {
        self.contains(nfa.accept())
    }

    /// Iterates over live state ids.
    fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter_map(move |b| {
                if word & (1u64 << b) != 0 {
                    Some((w * 64 + b) as StateId)
                } else {
                    None
                }
            })
        })
    }

    /// Consumes one atom, returning the successor state set
    /// (epsilon-closed).
    pub fn advance(&self, nfa: &Nfa, atom: Atom) -> StateSet {
        let mut next = StateSet::empty(nfa.len());
        for s in self.iter() {
            for (label, to) in &nfa.states()[s as usize].trans {
                if label.accepts(atom) {
                    next.insert(*to);
                }
            }
        }
        eps_close(nfa, &mut next);
        next
    }
}

fn eps_close(nfa: &Nfa, set: &mut StateSet) {
    let mut stack: Vec<StateId> = set.iter().collect();
    while let Some(s) = stack.pop() {
        for &to in &nfa.states()[s as usize].eps {
            if set.insert(to) {
                stack.push(to);
            }
        }
    }
}

/// The epsilon-closed start set of `nfa`.
pub fn start(nfa: &Nfa) -> StateSet {
    let mut set = StateSet::empty(nfa.len());
    set.insert(nfa.start());
    eps_close(nfa, &mut set);
    set
}

/// Whole-path match: does `nfa` accept exactly the atom sequence `path`?
pub fn matches(nfa: &Nfa, path: &[Atom]) -> bool {
    let mut set = start(nfa);
    for &a in path {
        if set.is_dead() {
            return false;
        }
        set = set.advance(nfa, a);
    }
    set.is_accepting(nfa)
}

/// True if the NFA accepts at least one path. Because the alphabet is open,
/// every transition except `In([])` is traversable, so this is plain
/// reachability.
pub fn is_satisfiable(nfa: &Nfa) -> bool {
    let mut seen = StateSet::empty(nfa.len());
    seen.insert(nfa.start());
    let mut queue = VecDeque::from([nfa.start()]);
    while let Some(s) = queue.pop_front() {
        if s == nfa.accept() {
            return true;
        }
        let st = &nfa.states()[s as usize];
        for &to in &st.eps {
            if seen.insert(to) {
                queue.push_back(to);
            }
        }
        for (label, to) in &st.trans {
            if label.satisfiable() && seen.insert(*to) {
                queue.push_back(*to);
            }
        }
    }
    false
}

/// Can two transition labels consume the *same* atom? Exact for an open
/// (infinite) alphabet: `NotIn × NotIn` is always compatible because some
/// atom outside both finite sets always exists.
fn compatible(a: &Trans, b: &Trans) -> bool {
    use Trans::*;
    match (a, b) {
        (Atom(x), other) | (other, Atom(x)) => other.accepts(*x),
        (Any, other) | (other, Any) => other.satisfiable(),
        (In(s), In(t)) => s.iter().any(|x| t.binary_search(x).is_ok()),
        (In(s), NotIn(t)) | (NotIn(t), In(s)) => s.iter().any(|x| t.binary_search(x).is_err()),
        (NotIn(_), NotIn(_)) => true,
    }
}

/// True if some path is accepted by *both* NFAs: breadth-first search of the
/// product automaton. Exact (not conservative) over the open atom alphabet.
pub fn intersects(a: &Nfa, b: &Nfa) -> bool {
    let idx = |x: StateId, y: StateId| x as usize * b.len() + y as usize;
    let mut seen = vec![false; a.len() * b.len()];
    let mut queue = VecDeque::new();

    let push =
        |x: StateId, y: StateId, seen: &mut Vec<bool>, queue: &mut VecDeque<(StateId, StateId)>| {
            if !seen[idx(x, y)] {
                seen[idx(x, y)] = true;
                queue.push_back((x, y));
            }
        };

    push(a.start(), b.start(), &mut seen, &mut queue);
    while let Some((x, y)) = queue.pop_front() {
        if x == a.accept() && y == b.accept() {
            return true;
        }
        // Epsilon moves on either side.
        for &to in &a.states()[x as usize].eps {
            push(to, y, &mut seen, &mut queue);
        }
        for &to in &b.states()[y as usize].eps {
            push(x, to, &mut seen, &mut queue);
        }
        // Joint consuming moves.
        for (la, ta) in &a.states()[x as usize].trans {
            for (lb, tb) in &b.states()[y as usize].trans {
                if compatible(la, lb) {
                    push(*ta, *tb, &mut seen, &mut queue);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::compile;
    use crate::parse::parse;
    use actorspace_atoms::path;

    fn nfa(s: &str) -> Nfa {
        compile(&parse(s).unwrap())
    }

    fn m(pat: &str, p: &str) -> bool {
        matches(&nfa(pat), path(p).atoms())
    }

    #[test]
    fn literal_matching() {
        assert!(m("a/b/c", "a/b/c"));
        assert!(!m("a/b/c", "a/b"));
        assert!(!m("a/b/c", "a/b/c/d"));
        assert!(!m("a/b/c", "a/x/c"));
    }

    #[test]
    fn empty_pattern_matches_empty_path() {
        assert!(m("", ""));
        assert!(!m("", "a"));
        assert!(!m("a", ""));
    }

    #[test]
    fn single_wildcard() {
        assert!(m("*", "anything"));
        assert!(!m("*", ""));
        assert!(!m("*", "two/atoms"));
        assert!(m("srv/*", "srv/fib"));
        assert!(!m("srv/*", "srv/fib/fast"));
    }

    #[test]
    fn double_wildcard() {
        assert!(m("**", ""));
        assert!(m("**", "a"));
        assert!(m("**", "a/b/c/d"));
        assert!(m("srv/**", "srv"));
        assert!(m("srv/**", "srv/fib/fast"));
        assert!(!m("srv/**", "cli/fib"));
        assert!(m("**/fast", "srv/fib/fast"));
        assert!(m("**/fast", "fast"));
        assert!(!m("**/fast", "fast/slow"));
    }

    #[test]
    fn alternation() {
        assert!(m("{fib, fact}", "fib"));
        assert!(m("{fib, fact}", "fact"));
        assert!(!m("{fib, fact}", "sqrt"));
        assert!(m("srv/{fib, fact}/v1", "srv/fact/v1"));
        assert!(m("a|b/c", "a"));
        assert!(m("a|b/c", "b/c"));
        assert!(!m("a|b/c", "a/c"));
    }

    #[test]
    fn classes() {
        assert!(m("[a b c]", "b"));
        assert!(!m("[a b c]", "d"));
        assert!(m("[^a b]", "c"));
        assert!(!m("[^a b]", "a"));
        assert!(!m("[^a b]", ""));
    }

    #[test]
    fn repetition() {
        assert!(m("a*", ""));
        assert!(m("a*", "a/a/a"));
        assert!(!m("a*", "a/b"));
        assert!(m("a+", "a"));
        assert!(!m("a+", ""));
        assert!(m("(a/b)*", "a/b/a/b"));
        assert!(!m("(a/b)*", "a/b/a"));
        assert!(m("a?", ""));
        assert!(m("a?", "a"));
        assert!(!m("a?", "a/a"));
    }

    #[test]
    fn incremental_state_sets_fork_correctly() {
        use actorspace_atoms::atom;
        let n = nfa("srv/{fib, fact}");
        let s0 = start(&n);
        let s1 = s0.advance(&n, atom("srv"));
        // Fork: both branches continue from the same prefix state.
        let fib = s1.advance(&n, atom("fib"));
        let fact = s1.advance(&n, atom("fact"));
        let nope = s1.advance(&n, atom("sqrt"));
        assert!(fib.is_accepting(&n));
        assert!(fact.is_accepting(&n));
        assert!(nope.is_dead());
        // The original sets are unchanged by advancing a clone.
        assert!(!s1.is_accepting(&n));
        assert!(!s1.is_dead());
    }

    #[test]
    fn dead_state_detection_prunes() {
        use actorspace_atoms::atom;
        let n = nfa("a/b");
        let s = start(&n).advance(&n, atom("x"));
        assert!(s.is_dead());
        // Advancing a dead set stays dead.
        assert!(s.advance(&n, atom("a")).is_dead());
    }

    #[test]
    fn satisfiability() {
        assert!(is_satisfiable(&nfa("a/b")));
        assert!(is_satisfiable(&nfa("**")));
        assert!(is_satisfiable(&nfa("[^a]")));
        assert!(is_satisfiable(&nfa("")));
    }

    #[test]
    fn intersection_basics() {
        assert!(intersects(&nfa("a/b"), &nfa("a/b")));
        assert!(!intersects(&nfa("a/b"), &nfa("a/c")));
        assert!(intersects(&nfa("a/*"), &nfa("*/b")));
        assert!(!intersects(&nfa("a"), &nfa("a/b")));
        assert!(intersects(&nfa("**"), &nfa("x/y/z")));
    }

    #[test]
    fn intersection_with_negated_classes_uses_open_alphabet() {
        // [^a] and [^b] overlap: any third atom works.
        assert!(intersects(&nfa("[^a]"), &nfa("[^b]")));
        // [a] and [^a] cannot overlap.
        assert!(!intersects(&nfa("[a]"), &nfa("[^a]")));
        // [a b] and [^a] overlap on b.
        assert!(intersects(&nfa("[a b]"), &nfa("[^a]")));
        // [a] and [^a b] cannot.
        assert!(!intersects(&nfa("[a]"), &nfa("[^a b]")));
    }

    #[test]
    fn intersection_with_stars() {
        assert!(intersects(&nfa("a*"), &nfa("a/a")));
        assert!(!intersects(&nfa("a*"), &nfa("b")));
        assert!(intersects(&nfa("(a/b)*"), &nfa("**/b")));
        // Both match the empty path.
        assert!(intersects(&nfa("a*"), &nfa("b*")));
        // Nonempty on both sides impossible: a+ vs b+ share nothing.
        assert!(!intersects(&nfa("a+"), &nfa("b+")));
    }

    #[test]
    fn long_paths_do_not_blow_up() {
        // 200-atom path against a pattern with nested stars: linear scan.
        let pat = nfa("(a|b)*");
        let mut p = Vec::new();
        for i in 0..200 {
            p.push(actorspace_atoms::atom(if i % 2 == 0 { "a" } else { "b" }));
        }
        assert!(matches(&pat, &p));
        p.push(actorspace_atoms::atom("c"));
        assert!(!matches(&pat, &p));
    }
}
