//! The description lattice over patterns (paper §5).
//!
//! "Attributes may be generalized and specialized through conjunction and
//! disjunction … thus attributes may be embedded in a description lattice
//! (e.g., see Omega)." Viewing a pattern extensionally — as the set of
//! attribute paths it matches — the lattice operations are language union
//! ([`join`]) and language intersection ([`meet`]), and the lattice order is
//! language inclusion ([`subsumes`]).
//!
//! All operations here are *exact*, not conservative. Inclusion is decided
//! by the textbook route: determinize the would-be superset pattern's NFA
//! into a symbolic DFA over atom minterms ([`determinize`]), complement it
//! ([`complement`]), and test product emptiness against the other pattern.
//! The atom alphabet is open (new atoms appear at run time), which the
//! minterm construction handles with a co-finite "every other atom" class.

use std::collections::HashMap;

use actorspace_atoms::Atom;

use crate::ast::Ast;
use crate::matcher;
use crate::nfa::{Nfa, State, StateId, Trans};
use crate::Pattern;

/// Disjunction (lattice join, generalization): matches what either pattern
/// matches.
pub fn join(p: &Pattern, q: &Pattern) -> Pattern {
    Pattern::from_ast(Ast::alt(vec![p.ast().clone(), q.ast().clone()]))
}

/// Conjunction (lattice meet, specialization): the product automaton
/// accepting exactly the paths both patterns match. Returned as a raw NFA —
/// the meet of two patterns is not always expressible in the surface syntax
/// without blowup, but it can be matched and analyzed like any other.
pub fn meet(a: &Nfa, b: &Nfa) -> Nfa {
    fn intern(
        x: StateId,
        y: StateId,
        index: &mut HashMap<(StateId, StateId), StateId>,
        states: &mut Vec<State>,
        work: &mut Vec<(StateId, StateId)>,
    ) -> StateId {
        *index.entry((x, y)).or_insert_with(|| {
            let id = states.len() as StateId;
            states.push(State::default());
            work.push((x, y));
            id
        })
    }

    let mut states = Vec::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut work = Vec::new();

    let start = intern(a.start(), b.start(), &mut index, &mut states, &mut work);
    while let Some((x, y)) = work.pop() {
        let from = index[&(x, y)];
        // Epsilon moves on either side.
        for to in a.states()[x as usize].eps.clone() {
            let t = intern(to, y, &mut index, &mut states, &mut work);
            states[from as usize].eps.push(t);
        }
        for to in b.states()[y as usize].eps.clone() {
            let t = intern(x, to, &mut index, &mut states, &mut work);
            states[from as usize].eps.push(t);
        }
        // Joint consuming moves labelled with the meet of the two labels.
        let trans_a = a.states()[x as usize].trans.clone();
        let trans_b = b.states()[y as usize].trans.clone();
        for (la, ta) in &trans_a {
            for (lb, tb) in &trans_b {
                if let Some(label) = meet_label(la, lb) {
                    let t = intern(*ta, *tb, &mut index, &mut states, &mut work);
                    states[from as usize].trans.push((label, t));
                }
            }
        }
    }

    // Single-accept shape: fresh accept state with eps from the pair
    // (accept, accept) if it was ever materialized.
    let accept = states.len() as StateId;
    states.push(State::default());
    if let Some(&pair) = index.get(&(a.accept(), b.accept())) {
        states[pair as usize].eps.push(accept);
    }
    Nfa::from_parts(states, start, accept)
}

/// The meet of two transition labels: a label accepting exactly the atoms
/// both accept, or `None` if that set is empty. Exact over the open
/// alphabet.
fn sorted_intersect(s: &[Atom], t: &[Atom]) -> Vec<Atom> {
    s.iter()
        .filter(|x| t.binary_search(x).is_ok())
        .copied()
        .collect()
}

fn sorted_minus(s: &[Atom], t: &[Atom]) -> Vec<Atom> {
    s.iter()
        .filter(|x| t.binary_search(x).is_err())
        .copied()
        .collect()
}

fn sorted_union(s: &[Atom], t: &[Atom]) -> Vec<Atom> {
    let mut v: Vec<Atom> = s.iter().chain(t.iter()).copied().collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn meet_label(a: &Trans, b: &Trans) -> Option<Trans> {
    use Trans::*;
    match (a, b) {
        (Atom(x), other) | (other, Atom(x)) => other.accepts(*x).then_some(Atom(*x)),
        (Any, other) | (other, Any) => other.satisfiable().then(|| other.clone()),
        (In(s), In(t)) => {
            let m = sorted_intersect(s, t);
            (!m.is_empty()).then_some(In(m))
        }
        (In(s), NotIn(t)) | (NotIn(t), In(s)) => {
            let m = sorted_minus(s, t);
            (!m.is_empty()).then_some(In(m))
        }
        (NotIn(s), NotIn(t)) => Some(NotIn(sorted_union(s, t))),
    }
}

/// Lattice order: does `general` match everything `specific` matches
/// (`L(specific) ⊆ L(general)`)?
pub fn subsumes(general: &Pattern, specific: &Pattern) -> bool {
    let not_general = complement(general.nfa());
    !matcher::intersects(specific.nfa(), &not_general)
}

/// Language equivalence: each subsumes the other.
pub fn equivalent(p: &Pattern, q: &Pattern) -> bool {
    subsumes(p, q) && subsumes(q, p)
}

/// A deterministic automaton over atom minterms, in NFA clothing (every
/// state has disjoint outgoing labels covering the whole alphabet; no
/// epsilon edges except into the synthetic accept state).
pub fn determinize(nfa: &Nfa) -> Nfa {
    build_dfa(nfa, false)
}

/// The complement automaton: accepts exactly the paths `nfa` rejects.
pub fn complement(nfa: &Nfa) -> Nfa {
    build_dfa(nfa, true)
}

fn build_dfa(nfa: &Nfa, complemented: bool) -> Nfa {
    // Subset construction over symbolic minterms. A subset is represented as
    // a sorted Vec<StateId> key.
    struct Build {
        states: Vec<State>,
        accepting: Vec<bool>,
        index: HashMap<Vec<StateId>, StateId>,
        work: Vec<Vec<StateId>>,
        nfa_accept: StateId,
    }
    impl Build {
        fn intern(&mut self, subset: Vec<StateId>) -> StateId {
            if let Some(&id) = self.index.get(&subset) {
                return id;
            }
            let id = self.states.len() as StateId;
            self.states.push(State::default());
            self.accepting
                .push(subset.binary_search(&self.nfa_accept).is_ok());
            self.index.insert(subset.clone(), id);
            self.work.push(subset);
            id
        }
    }

    let mut b = Build {
        states: Vec::new(),
        accepting: Vec::new(),
        index: HashMap::new(),
        work: Vec::new(),
        nfa_accept: nfa.accept(),
    };

    let start_subset = close(nfa, vec![nfa.start()]);
    let start = b.intern(start_subset);
    while let Some(subset) = b.work.pop() {
        let from = b.index[&subset];
        // Atoms mentioned on any outgoing transition of the subset — these,
        // plus the co-finite "rest" class, partition the alphabet.
        let mut mentioned: Vec<Atom> = Vec::new();
        for &s in &subset {
            for (label, _) in &nfa.states()[s as usize].trans {
                match label {
                    Trans::Atom(a) => mentioned.push(*a),
                    Trans::In(set) | Trans::NotIn(set) => mentioned.extend(set.iter().copied()),
                    Trans::Any => {}
                }
            }
        }
        mentioned.sort_unstable();
        mentioned.dedup();

        // One successor per mentioned atom.
        for &a in &mentioned {
            let mut next: Vec<StateId> = Vec::new();
            for &s in &subset {
                for (label, to) in &nfa.states()[s as usize].trans {
                    if label.accepts(a) {
                        next.push(*to);
                    }
                }
            }
            let next = close(nfa, next);
            if next.is_empty() && !complemented {
                continue; // dead transitions only matter for the complement
            }
            let t = b.intern(next);
            b.states[from as usize].trans.push((Trans::Atom(a), t));
        }

        // The rest class: any atom not mentioned. Only `Any` and `NotIn`
        // labels (whose sets are all mentioned) can accept it.
        let mut next: Vec<StateId> = Vec::new();
        for &s in &subset {
            for (label, to) in &nfa.states()[s as usize].trans {
                if matches!(label, Trans::Any | Trans::NotIn(_)) {
                    next.push(*to);
                }
            }
        }
        let next = close(nfa, next);
        if !next.is_empty() || complemented {
            let t = b.intern(next);
            let label = if mentioned.is_empty() {
                Trans::Any
            } else {
                Trans::NotIn(mentioned.clone())
            };
            b.states[from as usize].trans.push((label, t));
        }
    }

    // Collapse to the single-accept NFA shape.
    let accept = b.states.len() as StateId;
    b.states.push(State::default());
    for (i, acc) in b.accepting.iter().enumerate() {
        if *acc != complemented {
            b.states[i].eps.push(accept);
        }
    }
    Nfa::from_parts(b.states, start, accept)
}

/// Sorted, deduplicated epsilon closure of a set of states.
fn close(nfa: &Nfa, seed: Vec<StateId>) -> Vec<StateId> {
    let mut seen = vec![false; nfa.len()];
    let mut stack = seed;
    let mut out = Vec::new();
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut seen[s as usize], true) {
            continue;
        }
        out.push(s);
        stack.extend_from_slice(&nfa.states()[s as usize].eps);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern;
    use actorspace_atoms::path;

    #[test]
    fn join_is_union() {
        let p = pattern("a");
        let q = pattern("b");
        let j = join(&p, &q);
        assert!(j.matches(&path("a")));
        assert!(j.matches(&path("b")));
        assert!(!j.matches(&path("c")));
    }

    #[test]
    fn meet_is_intersection() {
        let p = pattern("a/*");
        let q = pattern("*/b");
        let m = meet(p.nfa(), q.nfa());
        assert!(matcher::matches(&m, path("a/b").atoms()));
        assert!(!matcher::matches(&m, path("a/c").atoms()));
        assert!(!matcher::matches(&m, path("c/b").atoms()));
    }

    #[test]
    fn meet_of_disjoint_is_empty() {
        let p = pattern("a");
        let q = pattern("b");
        let m = meet(p.nfa(), q.nfa());
        assert!(!matcher::is_satisfiable(&m));
    }

    #[test]
    fn meet_with_stars() {
        let p = pattern("(a|b)*");
        let q = pattern("**/b");
        let m = meet(p.nfa(), q.nfa());
        assert!(matcher::matches(&m, path("a/b").atoms()));
        assert!(matcher::matches(&m, path("b").atoms()));
        assert!(!matcher::matches(&m, path("a").atoms()));
        assert!(!matcher::matches(&m, path("a/c/b").atoms()));
    }

    #[test]
    fn complement_flips_membership() {
        let p = pattern("srv/*");
        let c = complement(p.nfa());
        assert!(!matcher::matches(&c, path("srv/fib").atoms()));
        assert!(matcher::matches(&c, path("srv").atoms()));
        assert!(matcher::matches(&c, path("cli/fib").atoms()));
        assert!(matcher::matches(&c, path("srv/fib/fast").atoms()));
        assert!(matcher::matches(&c, path("").atoms()));
    }

    #[test]
    fn complement_of_everything_is_empty() {
        let all = pattern("**");
        let c = complement(all.nfa());
        assert!(!matcher::is_satisfiable(&c));
    }

    #[test]
    fn determinized_preserves_language() {
        for (pat, yes, no) in [
            ("a/b", "a/b", "a/c"),
            ("srv/{fib, fact}/**", "srv/fib/x/y", "cli/fib"),
            ("(a|b)*", "a/b/b/a", "a/c"),
            ("[^x]/end", "y/end", "x/end"),
        ] {
            let p = pattern(pat);
            let d = determinize(p.nfa());
            assert!(
                matcher::matches(&d, path(yes).atoms()),
                "{pat} should match {yes}"
            );
            assert!(
                !matcher::matches(&d, path(no).atoms()),
                "{pat} should reject {no}"
            );
        }
    }

    #[test]
    fn subsumption_chain() {
        let any = pattern("**");
        let srv = pattern("srv/**");
        let fib = pattern("srv/fib");
        assert!(subsumes(&any, &srv));
        assert!(subsumes(&any, &fib));
        assert!(subsumes(&srv, &fib));
        assert!(!subsumes(&fib, &srv));
        assert!(!subsumes(&srv, &any));
        assert!(subsumes(&fib, &fib));
    }

    #[test]
    fn subsumption_with_alternation() {
        let broad = pattern("srv/{fib, fact, sqrt}");
        let narrow = pattern("srv/{fib, fact}");
        assert!(subsumes(&broad, &narrow));
        assert!(!subsumes(&narrow, &broad));
    }

    #[test]
    fn subsumption_star_cases() {
        assert!(subsumes(&pattern("a*"), &pattern("a/a")));
        assert!(subsumes(&pattern("a*"), &pattern("")));
        assert!(!subsumes(&pattern("a+"), &pattern("a*")));
        assert!(subsumes(&pattern("a*"), &pattern("a+")));
        assert!(subsumes(&pattern("**"), &pattern("(a|b)+/c")));
    }

    #[test]
    fn equivalence() {
        assert!(equivalent(&pattern("{a, b}"), &pattern("b|a")));
        assert!(equivalent(&pattern("a/(b)?"), &pattern("{a, a/b}")));
        assert!(equivalent(&pattern("(a)+"), &pattern("a/a*")));
        assert!(!equivalent(&pattern("a*"), &pattern("a+")));
        // ** is equivalent to *|** but not to *.
        assert!(equivalent(&pattern("**"), &pattern("*|**")));
        assert!(!equivalent(&pattern("**"), &pattern("*")));
    }

    #[test]
    fn negated_class_subsumption() {
        // `*` matches any one atom, so it subsumes `[^x]`.
        assert!(subsumes(&pattern("*"), &pattern("[^x]")));
        assert!(!subsumes(&pattern("[^x]"), &pattern("*")));
        // [^x] subsumes [^x y] (fewer exclusions is more general).
        assert!(subsumes(&pattern("[^x]"), &pattern("[^x y]")));
        assert!(!subsumes(&pattern("[^x y]"), &pattern("[^x]")));
    }
}
