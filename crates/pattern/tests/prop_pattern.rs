//! Property-based tests for the pattern engine.
//!
//! The key oracle is a naive backtracking matcher over the AST, written
//! independently of the NFA pipeline. Random ASTs and random paths over a
//! small alphabet are checked for agreement, and the lattice constructions
//! (determinize / complement / meet / join / subsumes) are validated
//! against their logical definitions on sampled paths.

use actorspace_atoms::{atom, Atom, Path};
use actorspace_pattern::{ast::Ast, lattice, matcher, Pattern};
use proptest::prelude::*;

/// Naive backtracking match: does `ast` accept `path[i..]` exactly?
fn oracle(ast: &Ast, path: &[Atom]) -> bool {
    // Returns the set of suffix offsets reachable after consuming a prefix.
    fn step(ast: &Ast, path: &[Atom], at: usize, out: &mut Vec<usize>) {
        match ast {
            Ast::Empty => out.push(at),
            Ast::Atom(a) => {
                if path.get(at) == Some(a) {
                    out.push(at + 1);
                }
            }
            Ast::AnyAtom => {
                if at < path.len() {
                    out.push(at + 1);
                }
            }
            Ast::Class { atoms, negated } => {
                if let Some(x) = path.get(at) {
                    let inside = atoms.contains(x);
                    if inside != *negated {
                        out.push(at + 1);
                    }
                }
            }
            Ast::Seq(parts) => {
                let mut fronts = vec![at];
                for p in parts {
                    let mut next = Vec::new();
                    for &f in &fronts {
                        step(p, path, f, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    fronts = next;
                    if fronts.is_empty() {
                        return;
                    }
                }
                out.extend(fronts);
            }
            Ast::Alt(parts) => {
                for p in parts {
                    step(p, path, at, out);
                }
            }
            Ast::Star(inner) => {
                let mut fronts = vec![at];
                let mut seen = vec![at];
                out.push(at);
                while let Some(f) = fronts.pop() {
                    let mut next = Vec::new();
                    step(inner, path, f, &mut next);
                    for n in next {
                        if !seen.contains(&n) {
                            seen.push(n);
                            fronts.push(n);
                            out.push(n);
                        }
                    }
                }
            }
            Ast::Plus(inner) => {
                // p+ = p then p*
                let star = Ast::Star(inner.clone());
                let mut mids = Vec::new();
                step(inner, path, at, &mut mids);
                mids.sort_unstable();
                mids.dedup();
                for m in mids {
                    step(&star, path, m, out);
                }
            }
            Ast::Opt(inner) => {
                out.push(at);
                step(inner, path, at, out);
            }
        }
    }
    let mut out = Vec::new();
    step(ast, path, 0, &mut out);
    out.contains(&path.len())
}

/// A small fixed alphabet so random patterns and paths collide often.
fn alphabet() -> Vec<Atom> {
    ["pa", "pb", "pc", "pd"].iter().map(|s| atom(s)).collect()
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0usize..4).prop_map(|i| alphabet()[i])
}

fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        arb_atom().prop_map(Ast::Atom),
        Just(Ast::AnyAtom),
        Just(Ast::Empty),
        (proptest::collection::vec(arb_atom(), 1..3), any::<bool>())
            .prop_map(|(atoms, neg)| Ast::class(atoms, neg)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Ast::seq),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Ast::alt),
            inner.clone().prop_map(|a| Ast::Star(Box::new(a))),
            inner.clone().prop_map(|a| Ast::Plus(Box::new(a))),
            inner.prop_map(|a| Ast::Opt(Box::new(a))),
        ]
    })
}

fn arb_path() -> impl Strategy<Value = Vec<Atom>> {
    proptest::collection::vec(arb_atom(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The NFA pipeline agrees with the backtracking oracle.
    #[test]
    fn nfa_matches_oracle(ast in arb_ast(), p in arb_path()) {
        let pat = Pattern::from_ast(ast.clone());
        let path = Path::from_atoms(p.clone());
        prop_assert_eq!(pat.matches(&path), oracle(&ast, &p));
    }

    /// Printing a pattern and re-parsing it preserves the language.
    #[test]
    fn display_parse_round_trip_preserves_language(ast in arb_ast(), p in arb_path()) {
        let pat = Pattern::from_ast(ast);
        let reparsed = Pattern::parse(pat.text()).expect("printed pattern must parse");
        let path = Path::from_atoms(p);
        prop_assert_eq!(pat.matches(&path), reparsed.matches(&path));
    }

    /// Determinization preserves the language.
    #[test]
    fn determinize_preserves_language(ast in arb_ast(), p in arb_path()) {
        let pat = Pattern::from_ast(ast);
        let dfa = lattice::determinize(pat.nfa());
        let path = Path::from_atoms(p.clone());
        prop_assert_eq!(matcher::matches(&dfa, &p), pat.matches(&path));
    }

    /// The complement automaton accepts exactly the rejected paths.
    #[test]
    fn complement_is_negation(ast in arb_ast(), p in arb_path()) {
        let pat = Pattern::from_ast(ast);
        let comp = lattice::complement(pat.nfa());
        let path = Path::from_atoms(p.clone());
        prop_assert_eq!(matcher::matches(&comp, &p), !pat.matches(&path));
    }

    /// meet = logical AND, join = logical OR on sampled paths.
    #[test]
    fn meet_and_join_are_and_or(a in arb_ast(), b in arb_ast(), p in arb_path()) {
        let pa = Pattern::from_ast(a);
        let pb = Pattern::from_ast(b);
        let path = Path::from_atoms(p.clone());
        let m = lattice::meet(pa.nfa(), pb.nfa());
        prop_assert_eq!(
            matcher::matches(&m, &p),
            pa.matches(&path) && pb.matches(&path)
        );
        let j = lattice::join(&pa, &pb);
        prop_assert_eq!(
            j.matches(&path),
            pa.matches(&path) || pb.matches(&path)
        );
    }

    /// Subsumption is sound: if `general` subsumes `specific`, every path
    /// matched by `specific` is matched by `general`.
    #[test]
    fn subsumption_soundness(a in arb_ast(), b in arb_ast(), p in arb_path()) {
        let pa = Pattern::from_ast(a);
        let pb = Pattern::from_ast(b);
        if lattice::subsumes(&pa, &pb) {
            let path = Path::from_atoms(p.clone());
            if pb.matches(&path) {
                prop_assert!(pa.matches(&path),
                    "{} subsumes {} but misses {}", pa, pb, path);
            }
        }
    }

    /// Both patterns always subsume their meet and are subsumed by their join.
    #[test]
    fn lattice_order_laws(a in arb_ast(), b in arb_ast()) {
        let pa = Pattern::from_ast(a);
        let pb = Pattern::from_ast(b);
        let j = lattice::join(&pa, &pb);
        prop_assert!(lattice::subsumes(&j, &pa));
        prop_assert!(lattice::subsumes(&j, &pb));
    }

    /// `may_overlap` agrees with a sampled witness: any path matching both
    /// implies overlap is reported.
    #[test]
    fn overlap_soundness(a in arb_ast(), b in arb_ast(), p in arb_path()) {
        let pa = Pattern::from_ast(a);
        let pb = Pattern::from_ast(b);
        let path = Path::from_atoms(p.clone());
        if pa.matches(&path) && pb.matches(&path) {
            prop_assert!(pa.may_overlap(&pb));
        }
    }

    /// Emptiness: a pattern that matched some sampled path is satisfiable.
    #[test]
    fn satisfiability_soundness(ast in arb_ast(), p in arb_path()) {
        let pat = Pattern::from_ast(ast);
        let path = Path::from_atoms(p);
        if pat.matches(&path) {
            prop_assert!(!pat.is_empty_language());
        }
    }
}
