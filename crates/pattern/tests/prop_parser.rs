//! Parser robustness: arbitrary input never panics; valid patterns
//! round-trip; error offsets stay in bounds.

use actorspace_pattern::Pattern;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// The parser is total over arbitrary unicode soup.
    #[test]
    fn parser_never_panics(s in "\\PC{0,60}") {
        let _ = Pattern::parse(&s);
    }

    /// The parser is total over pattern-ish character soup (higher density
    /// of meaningful tokens than plain unicode).
    #[test]
    fn parser_never_panics_on_pattern_soup(
        s in proptest::collection::vec(
            prop_oneof![
                Just("a"), Just("bc"), Just("/"), Just("*"), Just("**"),
                Just("("), Just(")"), Just("{"), Just("}"), Just(","),
                Just("["), Just("]"), Just("^"), Just("|"), Just("+"),
                Just("?"), Just(" "),
            ],
            0..30,
        ).prop_map(|v| v.concat())
    ) {
        let _ = Pattern::parse(&s);
    }

    /// Error offsets point inside (or just past) the input.
    #[test]
    fn error_offsets_in_bounds(s in "\\PC{0,60}") {
        if let Err(e) = Pattern::parse(&s) {
            prop_assert!(e.offset <= s.len(), "offset {} > len {}", e.offset, s.len());
        }
    }

    /// Any pattern that parses can be displayed and re-parsed to an equal
    /// AST (full round-trip stability, beyond the fixed cases in the unit
    /// tests).
    #[test]
    fn parsed_patterns_round_trip(
        s in proptest::collection::vec(
            prop_oneof![
                Just("a"), Just("b"), Just("/"), Just("*"), Just("**"),
                Just("{a, b}"), Just("[a b]"), Just("[^a]"), Just("(a|b)"),
                Just("(a)+"), Just("(b)?"),
            ],
            0..12,
        ).prop_map(|v| v.join("/"))
    ) {
        if let Ok(p) = Pattern::parse(&s) {
            // Use the AST's canonical rendering, not the retained source
            // text — this checks Display, not the cache.
            let printed = p.ast().to_string();
            let again = Pattern::parse(&printed)
                .unwrap_or_else(|e| panic!("printed pattern {printed:?} must parse: {e}"));
            prop_assert_eq!(p.ast(), again.ast(), "{} vs {}", s, printed);
        }
    }
}
