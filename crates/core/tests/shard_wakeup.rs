//! Cross-shard §5.6 semantics: suspended sends and persistent broadcasts
//! must wake across shard boundaries.
//!
//! Under the single-lock registry every wake happened inside one critical
//! section; the sharded coordinator instead computes a wake lock-set (the
//! ancestors of the changed space, plus everything reachable from them)
//! and sweeps suspended queues in ascending-SpaceId order. These tests pin
//! the observable contract: a `make_visible` in one space wakes suspended
//! sends parked in *other* spaces (overlapping scopes, transitive
//! ancestors), and a persistent broadcast registered in an ancestor
//! catches up with actors that arrive later in a nested space — exactly
//! once each. The file also pins the per-space E12 index hit/miss
//! accounting that `Obs::snapshot()` exports.

use actorspace_atoms::path;
use actorspace_core::{
    obs::names,
    policy::{ManagerPolicy, UnmatchedPolicy},
    ActorId, Disposition, Route, ShardedRegistry,
};
use actorspace_pattern::pattern;

fn policy(unmatched: UnmatchedPolicy) -> ManagerPolicy {
    ManagerPolicy {
        unmatched_send: unmatched,
        unmatched_broadcast: unmatched,
        selection_seed: Some(7),
        ..ManagerPolicy::default()
    }
}

type Log = std::rc::Rc<std::cell::RefCell<Vec<(ActorId, &'static str)>>>;

fn collector() -> (Log, impl FnMut(ActorId, &'static str, Option<&Route>)) {
    let log: Log = Default::default();
    let sink = {
        let log = log.clone();
        move |a: ActorId, m: &'static str, _: Option<&Route>| log.borrow_mut().push((a, m))
    };
    (log, sink)
}

/// A send suspended in a *parent* space is woken by a `make_visible` in a
/// *nested* space — the wake crosses from the child's shard into the
/// ancestor's.
#[test]
fn make_visible_in_child_wakes_send_suspended_in_parent() {
    let r: ShardedRegistry<&str> = ShardedRegistry::new(policy(UnmatchedPolicy::Suspend));
    let (log, mut sink) = collector();

    let parent = r.create_space(None);
    let child = r.create_space(None);
    r.make_visible(child.into(), vec![path("c")], parent, None, &mut sink)
        .unwrap();

    // No member of `child` matches yet: the send parks in `parent`.
    let d = r
        .send(&pattern("c/worker"), parent, "job", &mut sink)
        .unwrap();
    assert_eq!(d, Disposition::Suspended);
    assert_eq!(r.space_info(parent).unwrap().pending_messages, 1);
    assert!(log.borrow().is_empty());

    // The arrival happens in `child`'s shard; the suspended queue lives in
    // `parent`'s. The wake lock-set must span both.
    let a = r.create_actor(child, None).unwrap();
    r.make_visible(a.into(), vec![path("worker")], child, None, &mut sink)
        .unwrap();

    assert_eq!(log.borrow().as_slice(), &[(a, "job")]);
    assert_eq!(r.space_info(parent).unwrap().pending_messages, 0);
}

/// The wake walks *transitive* ancestors: a change three shards deep
/// re-resolves a send suspended at the top of the chain.
#[test]
fn wake_traverses_transitive_ancestors_across_shards() {
    let r: ShardedRegistry<&str> = ShardedRegistry::new(policy(UnmatchedPolicy::Suspend));
    let (log, mut sink) = collector();

    let top = r.create_space(None);
    let mid = r.create_space(None);
    let leaf = r.create_space(None);
    r.make_visible(mid.into(), vec![path("m")], top, None, &mut sink)
        .unwrap();
    r.make_visible(leaf.into(), vec![path("l")], mid, None, &mut sink)
        .unwrap();

    let d = r.send(&pattern("m/l/**"), top, "deep", &mut sink).unwrap();
    assert_eq!(d, Disposition::Suspended);

    let a = r.create_actor(leaf, None).unwrap();
    r.make_visible(a.into(), vec![path("fib")], leaf, None, &mut sink)
        .unwrap();

    assert_eq!(log.borrow().as_slice(), &[(a, "deep")]);
    assert_eq!(r.space_info(top).unwrap().pending_messages, 0);
}

/// Two scopes overlap on one space: a single arrival there wakes sends
/// suspended in *both* containers, each delivered once.
#[test]
fn one_arrival_wakes_overlapping_scopes() {
    let r: ShardedRegistry<&str> = ShardedRegistry::new(policy(UnmatchedPolicy::Suspend));
    let (log, mut sink) = collector();

    let left = r.create_space(None);
    let right = r.create_space(None);
    let hub = r.create_space(None);
    r.make_visible(hub.into(), vec![path("hub")], left, None, &mut sink)
        .unwrap();
    r.make_visible(hub.into(), vec![path("hub")], right, None, &mut sink)
        .unwrap();

    assert_eq!(
        r.send(&pattern("hub/w"), left, "from-left", &mut sink)
            .unwrap(),
        Disposition::Suspended
    );
    assert_eq!(
        r.send(&pattern("hub/w"), right, "from-right", &mut sink)
            .unwrap(),
        Disposition::Suspended
    );

    let a = r.create_actor(hub, None).unwrap();
    r.make_visible(a.into(), vec![path("w")], hub, None, &mut sink)
        .unwrap();

    let mut got = log.borrow().clone();
    got.sort();
    assert_eq!(got, vec![(a, "from-left"), (a, "from-right")]);
    assert_eq!(r.space_info(left).unwrap().pending_messages, 0);
    assert_eq!(r.space_info(right).unwrap().pending_messages, 0);
}

/// Persistent broadcast registered in an ancestor shard catches up with
/// actors arriving later in a nested shard — exactly once per actor, even
/// through visibility churn (§5.6 "persistent" mode).
#[test]
fn persistent_broadcast_catches_up_across_shards() {
    let r: ShardedRegistry<&str> = ShardedRegistry::new(policy(UnmatchedPolicy::Persistent));
    let (log, mut sink) = collector();

    let top = r.create_space(None);
    let nest = r.create_space(None);
    r.make_visible(nest.into(), vec![path("n")], top, None, &mut sink)
        .unwrap();

    let d = r
        .broadcast(&pattern("n/*"), top, "memo", &mut sink)
        .unwrap();
    assert_eq!(d, Disposition::Persistent(0));
    assert_eq!(r.space_info(top).unwrap().persistent_broadcasts, 1);

    // First arrival in the nested shard: delivered on arrival.
    let a = r.create_actor(nest, None).unwrap();
    r.make_visible(a.into(), vec![path("w")], nest, None, &mut sink)
        .unwrap();
    assert_eq!(log.borrow().as_slice(), &[(a, "memo")]);

    // Churn: leaving and re-arriving must not redeliver.
    r.make_invisible(a.into(), nest, None).unwrap();
    r.make_visible(a.into(), vec![path("w")], nest, None, &mut sink)
        .unwrap();
    assert_eq!(log.borrow().len(), 1);

    // A second, later arrival still catches up.
    let b = r.create_actor(nest, None).unwrap();
    r.make_visible(b.into(), vec![path("v")], nest, None, &mut sink)
        .unwrap();
    assert_eq!(log.borrow().as_slice(), &[(a, "memo"), (b, "memo")]);

    // Cancelling clears the table; a third arrival gets nothing.
    assert_eq!(r.cancel_persistent(top, None).unwrap(), 1);
    let c = r.create_actor(nest, None).unwrap();
    r.make_visible(c.into(), vec![path("w")], nest, None, &mut sink)
        .unwrap();
    assert_eq!(log.borrow().len(), 2);
}

/// E12 exact-prefix index accounting, per space, over a known lookup
/// sequence. Literal patterns consult the index (hit when non-empty, miss
/// when empty); wildcard patterns never touch the counters.
#[test]
fn index_hit_miss_counters_follow_known_sequence() {
    // Discard policy so misses don't park state that later ops would wake
    // (wakes would re-resolve and perturb the counts under test).
    let r: ShardedRegistry<&str> = ShardedRegistry::new(policy(UnmatchedPolicy::Discard));
    let (_, mut sink) = collector();

    let s1 = r.create_space(None);
    let s2 = r.create_space(None);
    let a = r.create_actor(s1, None).unwrap();
    r.make_visible(a.into(), vec![path("w")], s1, None, &mut sink)
        .unwrap();

    // Known sequence: literal hit, literal miss, wildcard (uncounted),
    // literal miss in the other space, literal broadcast hit.
    assert_eq!(
        r.send(&pattern("w"), s1, "1", &mut sink).unwrap(),
        Disposition::Delivered(1)
    ); // s1 hits = 1
    assert_eq!(
        r.send(&pattern("absent"), s1, "2", &mut sink).unwrap(),
        Disposition::Discarded
    ); // s1 misses = 1
    assert_eq!(
        r.send(&pattern("*"), s1, "3", &mut sink).unwrap(),
        Disposition::Delivered(1)
    ); // wildcard: no index traffic
    assert_eq!(
        r.send(&pattern("w"), s2, "4", &mut sink).unwrap(),
        Disposition::Discarded
    ); // s2 misses = 1
    assert_eq!(
        r.broadcast(&pattern("w"), s1, "5", &mut sink).unwrap(),
        Disposition::Delivered(1)
    ); // s1 hits = 2

    let snap = r.obs().snapshot();
    assert_eq!(
        snap.counter_for_space(names::CORE_INDEX_HITS, 0, s1.0),
        Some(2)
    );
    assert_eq!(
        snap.counter_for_space(names::CORE_INDEX_MISSES, 0, s1.0),
        Some(1)
    );
    // Counters are pre-registered per shard, so an untouched one reads 0.
    assert_eq!(
        snap.counter_for_space(names::CORE_INDEX_HITS, 0, s2.0),
        Some(0)
    );
    assert_eq!(
        snap.counter_for_space(names::CORE_INDEX_MISSES, 0, s2.0),
        Some(1)
    );
    assert_eq!(
        snap.counter_for_space(names::CORE_SPACE_SENDS, 0, s1.0),
        Some(3)
    );
    assert_eq!(
        snap.counter_for_space(names::CORE_SPACE_SENDS, 0, s2.0),
        Some(1)
    );
    assert_eq!(
        snap.counter_for_space(names::CORE_SPACE_BROADCASTS, 0, s1.0),
        Some(1)
    );

    // The per-space label survives into the JSON export.
    let json = snap.to_json();
    assert!(
        json.contains(&format!("\"space\":{}", s1.0)),
        "snapshot JSON lacks per-space label: {json}"
    );
}
