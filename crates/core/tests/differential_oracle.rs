//! Differential oracle for the sharded coordinator.
//!
//! The seed's single-lock [`Registry`] is the executable specification of
//! the ActorSpace model; [`ShardedRegistry`] reimplements it behind
//! per-space shard locks. This test replays random operation sequences —
//! create/destroy, visibility churn (§5.7), sends and broadcasts with the
//! §5.6 unmatched-message policies — against *both* coordinators built
//! with the same deterministic selection seed, and asserts they agree on:
//!
//! * per-operation results (`Disposition`s and errors),
//! * the delivery multiset produced by each operation (the sharded wake
//!   sweep visits spaces in ascending-id order while the reference sweeps
//!   a hash set, so cross-space interleaving may differ — but the set of
//!   deliveries, with multiplicity, must not),
//! * the suspended-message set and persistent-broadcast table of every
//!   space, including each broadcast's exactly-once `delivered` set,
//! * `SpaceInfo`, membership containers, id tables, and resolution
//!   results for a panel of literal and wildcard patterns,
//! * acyclicity of the visibility relation.
//!
//! Sequences are seeded and shrinkable: a failure minimises to the
//! shortest divergent op list.

use std::collections::BTreeSet;

use actorspace_atoms::{path, Path};
use actorspace_core::{
    policy::{ManagerPolicy, UnmatchedPolicy},
    ActorId, Disposition, GcReport, MemberId, Registry, Result, Route, ShardedRegistry, SpaceId,
    SpaceInfo, ROOT_SPACE,
};
use actorspace_pattern::{pattern, Pattern};
use proptest::prelude::*;

type Msg = u64;
/// One operation's deliveries, compared as a multiset (sorted).
type Deliveries = Vec<(ActorId, Msg)>;

fn policy(unmatched: UnmatchedPolicy) -> ManagerPolicy {
    ManagerPolicy {
        unmatched_send: unmatched,
        unmatched_broadcast: unmatched,
        selection_seed: Some(7),
        ..ManagerPolicy::default()
    }
}

fn attrs(i: usize) -> Vec<Path> {
    match i % 4 {
        0 => vec![path("w")],
        1 => vec![path("srv/fib")],
        2 => vec![path("srv/fact"), path("w")],
        _ => vec![path("pool/deep/worker")],
    }
}

fn pat(i: usize) -> Pattern {
    match i % 6 {
        0 => pattern("w"),                           // literal, index fast path
        1 => pattern("srv/fib"),                     // literal
        2 => pattern("absent/path"),                 // literal miss → suspends
        3 => pattern("srv/*"),                       // one-level wildcard
        4 => pattern("**"),                          // everything
        _ => pattern("{srv/fib, pool/deep/worker}"), // alternation
    }
}

#[derive(Debug, Clone)]
enum Op {
    CreateSpace,
    CreateActor {
        host: usize,
    },
    MakeActorVisible {
        actor: usize,
        space: usize,
        attr: usize,
    },
    MakeSpaceVisible {
        child: usize,
        parent: usize,
        attr: usize,
    },
    MakeActorInvisible {
        actor: usize,
        space: usize,
    },
    MakeSpaceInvisible {
        child: usize,
        parent: usize,
    },
    ChangeAttr {
        actor: usize,
        space: usize,
        attr: usize,
    },
    DestroySpace {
        space: usize,
    },
    Send {
        pat: usize,
        scope: usize,
        msg: Msg,
    },
    Broadcast {
        pat: usize,
        scope: usize,
        msg: Msg,
    },
    CancelPersistent {
        space: usize,
    },
    Collect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::CreateSpace),
        (0usize..8).prop_map(|host| Op::CreateActor { host }),
        (0usize..8, 0usize..8, 0usize..4).prop_map(|(actor, space, attr)| Op::MakeActorVisible {
            actor,
            space,
            attr
        }),
        (0usize..8, 0usize..8, 0usize..4).prop_map(|(child, parent, attr)| Op::MakeSpaceVisible {
            child,
            parent,
            attr
        }),
        (0usize..8, 0usize..8).prop_map(|(actor, space)| Op::MakeActorInvisible { actor, space }),
        (0usize..8, 0usize..8).prop_map(|(child, parent)| Op::MakeSpaceInvisible { child, parent }),
        (0usize..8, 0usize..8, 0usize..4).prop_map(|(actor, space, attr)| Op::ChangeAttr {
            actor,
            space,
            attr
        }),
        (1usize..8).prop_map(|space| Op::DestroySpace { space }),
        (0usize..6, 0usize..8, 0u64..1000).prop_map(|(pat, scope, msg)| Op::Send {
            pat,
            scope,
            msg
        }),
        (0usize..6, 0usize..8, 1000u64..2000).prop_map(|(pat, scope, msg)| Op::Broadcast {
            pat,
            scope,
            msg
        }),
        (0usize..8).prop_map(|space| Op::CancelPersistent { space }),
        Just(Op::Collect),
    ]
}

/// The common surface the differential test drives. Both coordinators
/// implement the same model API; the trait just papers over `&mut self`
/// (single-lock) vs `&self` (sharded) receivers.
trait Coordinator {
    fn create_space(&mut self) -> SpaceId;
    fn create_actor(&mut self, host: SpaceId) -> Result<ActorId>;
    fn make_visible(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()>;
    fn make_invisible(&mut self, member: MemberId, space: SpaceId) -> Result<()>;
    fn change_attributes(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()>;
    fn destroy_space(&mut self, space: SpaceId) -> Result<()>;
    fn send(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition>;
    fn broadcast(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition>;
    fn cancel_persistent(&mut self, space: SpaceId) -> Result<usize>;
    fn collect(&mut self) -> GcReport;

    fn space_ids(&self) -> Vec<SpaceId>;
    fn actor_ids(&self) -> Vec<ActorId>;
    fn info(&self, space: SpaceId) -> Option<SpaceInfo>;
    /// Suspended messages of a space as a sorted set of
    /// (pattern text, payload, is-broadcast) triples.
    fn pending_set(&self, space: SpaceId) -> Vec<(String, Msg, bool)>;
    /// Persistent broadcasts of a space as a sorted set of
    /// (pattern text, payload, delivered-to) triples.
    fn persistent_set(&self, space: SpaceId) -> Vec<(String, Msg, Vec<ActorId>)>;
    fn containers_of(&self, member: MemberId) -> Vec<SpaceId>;
    fn resolve(&self, pattern: &Pattern, scope: SpaceId) -> Result<Vec<ActorId>>;
}

fn pending_of<M: Clone + Ord>(sp: &actorspace_core::Space<M>) -> Vec<(String, M, bool)> {
    let mut v: Vec<(String, M, bool)> = sp
        .pending()
        .iter()
        .map(|p| {
            (
                p.pattern.text().to_string(),
                p.msg.clone(),
                matches!(p.kind, actorspace_core::DeliveryKind::Broadcast),
            )
        })
        .collect();
    v.sort();
    v
}

fn persistent_of<M: Clone + Ord>(sp: &actorspace_core::Space<M>) -> Vec<(String, M, Vec<ActorId>)> {
    let mut v: Vec<(String, M, Vec<ActorId>)> = sp
        .persistent()
        .iter()
        .map(|pb| {
            let mut d: Vec<ActorId> = pb.delivered.iter().copied().collect();
            d.sort();
            (pb.pattern.text().to_string(), pb.msg.clone(), d)
        })
        .collect();
    v.sort();
    v
}

impl Coordinator for Registry<Msg> {
    fn create_space(&mut self) -> SpaceId {
        Registry::create_space(self, None)
    }
    fn create_actor(&mut self, host: SpaceId) -> Result<ActorId> {
        Registry::create_actor(self, host, None)
    }
    fn make_visible(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        Registry::make_visible(self, member, attrs, space, None, &mut sink)
    }
    fn make_invisible(&mut self, member: MemberId, space: SpaceId) -> Result<()> {
        Registry::make_invisible(self, member, space, None)
    }
    fn change_attributes(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        Registry::change_attributes(self, member, attrs, space, None, &mut sink)
    }
    fn destroy_space(&mut self, space: SpaceId) -> Result<()> {
        Registry::destroy_space(self, space, None)
    }
    fn send(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        Registry::send(self, pattern, scope, msg, &mut sink)
    }
    fn broadcast(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        Registry::broadcast(self, pattern, scope, msg, &mut sink)
    }
    fn cancel_persistent(&mut self, space: SpaceId) -> Result<usize> {
        Registry::cancel_persistent(self, space, None)
    }
    fn collect(&mut self) -> GcReport {
        Registry::collect_garbage(self, &|_| Vec::new())
    }
    fn space_ids(&self) -> Vec<SpaceId> {
        let mut v: Vec<SpaceId> = Registry::space_ids(self).collect();
        v.sort();
        v
    }
    fn actor_ids(&self) -> Vec<ActorId> {
        let mut v: Vec<ActorId> = Registry::actor_ids(self).collect();
        v.sort();
        v
    }
    fn info(&self, space: SpaceId) -> Option<SpaceInfo> {
        Registry::space_info(self, space).ok()
    }
    fn pending_set(&self, space: SpaceId) -> Vec<(String, Msg, bool)> {
        self.space(space).map(pending_of).unwrap_or_default()
    }
    fn persistent_set(&self, space: SpaceId) -> Vec<(String, Msg, Vec<ActorId>)> {
        self.space(space).map(persistent_of).unwrap_or_default()
    }
    fn containers_of(&self, member: MemberId) -> Vec<SpaceId> {
        let mut v: Vec<SpaceId> = Registry::containers_of(self, member).collect();
        v.sort();
        v
    }
    fn resolve(&self, pattern: &Pattern, scope: SpaceId) -> Result<Vec<ActorId>> {
        Registry::resolve(self, pattern, scope).map(|mut v| {
            v.sort();
            v
        })
    }
}

impl Coordinator for ShardedRegistry<Msg> {
    fn create_space(&mut self) -> SpaceId {
        ShardedRegistry::create_space(self, None)
    }
    fn create_actor(&mut self, host: SpaceId) -> Result<ActorId> {
        ShardedRegistry::create_actor(self, host, None)
    }
    fn make_visible(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        ShardedRegistry::make_visible(self, member, attrs, space, None, &mut sink)
    }
    fn make_invisible(&mut self, member: MemberId, space: SpaceId) -> Result<()> {
        ShardedRegistry::make_invisible(self, member, space, None)
    }
    fn change_attributes(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        out: &mut Deliveries,
    ) -> Result<()> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        ShardedRegistry::change_attributes(self, member, attrs, space, None, &mut sink)
    }
    fn destroy_space(&mut self, space: SpaceId) -> Result<()> {
        ShardedRegistry::destroy_space(self, space, None)
    }
    fn send(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        ShardedRegistry::send(self, pattern, scope, msg, &mut sink)
    }
    fn broadcast(
        &mut self,
        pattern: &Pattern,
        scope: SpaceId,
        msg: Msg,
        out: &mut Deliveries,
    ) -> Result<Disposition> {
        let mut sink = |a: ActorId, m: Msg, _: Option<&Route>| out.push((a, m));
        ShardedRegistry::broadcast(self, pattern, scope, msg, &mut sink)
    }
    fn cancel_persistent(&mut self, space: SpaceId) -> Result<usize> {
        ShardedRegistry::cancel_persistent(self, space, None)
    }
    fn collect(&mut self) -> GcReport {
        ShardedRegistry::collect_garbage(self, &|_| Vec::new())
    }
    fn space_ids(&self) -> Vec<SpaceId> {
        ShardedRegistry::space_ids(self)
    }
    fn actor_ids(&self) -> Vec<ActorId> {
        ShardedRegistry::actor_ids(self)
    }
    fn info(&self, space: SpaceId) -> Option<SpaceInfo> {
        ShardedRegistry::space_info(self, space).ok()
    }
    fn pending_set(&self, space: SpaceId) -> Vec<(String, Msg, bool)> {
        self.with_space(space, pending_of).unwrap_or_default()
    }
    fn persistent_set(&self, space: SpaceId) -> Vec<(String, Msg, Vec<ActorId>)> {
        self.with_space(space, persistent_of).unwrap_or_default()
    }
    fn containers_of(&self, member: MemberId) -> Vec<SpaceId> {
        ShardedRegistry::containers_of(self, member)
    }
    fn resolve(&self, pattern: &Pattern, scope: SpaceId) -> Result<Vec<ActorId>> {
        ShardedRegistry::resolve(self, pattern, scope).map(|mut v| {
            v.sort();
            v
        })
    }
}

/// Applies one op to a coordinator. Returns a comparable outcome string
/// plus the sorted delivery multiset the op produced.
fn apply(
    c: &mut dyn Coordinator,
    op: &Op,
    spaces: &mut Vec<SpaceId>,
    actors: &mut Vec<ActorId>,
    record_ids: bool,
) -> (String, Deliveries) {
    fn idx<T: Copy>(v: &[T], i: usize) -> T {
        v[i % v.len()]
    }
    let mut out = Deliveries::new();
    let outcome = match *op {
        Op::CreateSpace => {
            let id = c.create_space();
            if record_ids {
                spaces.push(id);
            }
            format!("space {id:?}")
        }
        Op::CreateActor { host } => match c.create_actor(idx(spaces, host)) {
            Ok(id) => {
                if record_ids {
                    actors.push(id);
                }
                format!("actor {id:?}")
            }
            Err(e) => format!("{e:?}"),
        },
        Op::MakeActorVisible { actor, space, attr } => format!(
            "{:?}",
            c.make_visible(
                idx(actors, actor).into(),
                attrs(attr),
                idx(spaces, space),
                &mut out
            )
        ),
        Op::MakeSpaceVisible {
            child,
            parent,
            attr,
        } => format!(
            "{:?}",
            c.make_visible(
                idx(spaces, child).into(),
                attrs(attr),
                idx(spaces, parent),
                &mut out
            )
        ),
        Op::MakeActorInvisible { actor, space } => format!(
            "{:?}",
            c.make_invisible(idx(actors, actor).into(), idx(spaces, space))
        ),
        Op::MakeSpaceInvisible { child, parent } => format!(
            "{:?}",
            c.make_invisible(idx(spaces, child).into(), idx(spaces, parent))
        ),
        Op::ChangeAttr { actor, space, attr } => format!(
            "{:?}",
            c.change_attributes(
                idx(actors, actor).into(),
                attrs(attr),
                idx(spaces, space),
                &mut out
            )
        ),
        Op::DestroySpace { space } => {
            format!("{:?}", c.destroy_space(idx(spaces, space)))
        }
        Op::Send { pat: p, scope, msg } => {
            format!("{:?}", c.send(&pat(p), idx(spaces, scope), msg, &mut out))
        }
        Op::Broadcast { pat: p, scope, msg } => {
            format!(
                "{:?}",
                c.broadcast(&pat(p), idx(spaces, scope), msg, &mut out)
            )
        }
        Op::CancelPersistent { space } => {
            format!("{:?}", c.cancel_persistent(idx(spaces, space)))
        }
        Op::Collect => {
            let r = c.collect();
            format!(
                "gc spaces={:?} actors={:?}",
                r.collected_spaces, r.collected_actors
            )
        }
    };
    out.sort();
    (outcome, out)
}

/// Runs a sequence against both coordinators and asserts observational
/// equivalence per op and on the final state.
fn run_differential(ops: &[Op], unmatched: UnmatchedPolicy) {
    let mut reference: Registry<Msg> = Registry::new(policy(unmatched));
    let mut sharded: ShardedRegistry<Msg> = ShardedRegistry::new(policy(unmatched));

    // Seed both with the same starting universe.
    let mut spaces = vec![ROOT_SPACE];
    let mut actors = Vec::new();
    for _ in 0..3 {
        let a = reference.create_space(None);
        let b = sharded.create_space(None);
        assert_eq!(a, b, "space id streams diverged at birth");
        spaces.push(a);
    }
    for _ in 0..4 {
        let a = Registry::create_actor(&mut reference, ROOT_SPACE, None).unwrap();
        let b = ShardedRegistry::create_actor(&sharded, ROOT_SPACE, None).unwrap();
        assert_eq!(a, b, "actor id streams diverged at birth");
        actors.push(a);
    }

    for (i, op) in ops.iter().enumerate() {
        let mut s2 = spaces.clone();
        let mut a2 = actors.clone();
        let (ref_out, ref_del) = apply(&mut reference, op, &mut spaces, &mut actors, true);
        let (sh_out, sh_del) = apply(&mut sharded, op, &mut s2, &mut a2, false);
        assert_eq!(ref_out, sh_out, "op {i} {op:?}: outcomes diverged");
        assert_eq!(
            ref_del, sh_del,
            "op {i} {op:?}: delivery multisets diverged"
        );
    }

    // Final-state agreement.
    let ref_spaces = Coordinator::space_ids(&reference);
    let sh_spaces = Coordinator::space_ids(&sharded);
    assert_eq!(ref_spaces, sh_spaces, "space tables diverged");
    assert_eq!(
        Coordinator::actor_ids(&reference),
        Coordinator::actor_ids(&sharded),
        "actor tables diverged"
    );
    assert!(sharded.is_dag(), "sharded visibility relation has a cycle");

    for &s in &ref_spaces {
        assert_eq!(
            Coordinator::info(&reference, s),
            Coordinator::info(&sharded, s),
            "SpaceInfo diverged for {s:?}"
        );
        assert_eq!(
            Coordinator::pending_set(&reference, s),
            Coordinator::pending_set(&sharded, s),
            "suspended-message sets diverged for {s:?}"
        );
        assert_eq!(
            Coordinator::persistent_set(&reference, s),
            Coordinator::persistent_set(&sharded, s),
            "persistent-broadcast tables diverged for {s:?}"
        );
        assert_eq!(
            Coordinator::containers_of(&reference, s.into()),
            Coordinator::containers_of(&sharded, s.into()),
            "containers diverged for {s:?}"
        );
        for p in 0..6 {
            assert_eq!(
                Coordinator::resolve(&reference, &pat(p), s),
                Coordinator::resolve(&sharded, &pat(p), s),
                "resolve({}) diverged in {s:?}",
                pat(p)
            );
        }
    }
    for a in Coordinator::actor_ids(&reference) {
        assert_eq!(
            Coordinator::containers_of(&reference, a.into()),
            Coordinator::containers_of(&sharded, a.into()),
            "actor containers diverged for {a:?}"
        );
    }

    // Dead spaces answer identically too (NoSuchSpace on both sides).
    let live: BTreeSet<SpaceId> = ref_spaces.iter().copied().collect();
    for s in spaces.iter().filter(|s| !live.contains(s)) {
        assert!(Coordinator::info(&reference, *s).is_none());
        assert!(Coordinator::info(&sharded, *s).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Suspend-policy runs: unmatched messages park in the scope space and
    /// wake as visibility changes — the richest cross-shard path.
    #[test]
    fn sharded_equals_reference_suspend(ops in proptest::collection::vec(arb_op(), 0..70)) {
        run_differential(&ops, UnmatchedPolicy::Suspend);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Persistent-policy runs: broadcasts register exactly-once tables that
    /// must replay identically across shards.
    #[test]
    fn sharded_equals_reference_persistent(ops in proptest::collection::vec(arb_op(), 0..70)) {
        run_differential(&ops, UnmatchedPolicy::Persistent);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Discard and Error policies: the degenerate §5.6 modes must degrade
    /// the same way on both coordinators.
    #[test]
    fn sharded_equals_reference_discard(ops in proptest::collection::vec(arb_op(), 0..70)) {
        run_differential(&ops, UnmatchedPolicy::Discard);
    }

    #[test]
    fn sharded_equals_reference_error(ops in proptest::collection::vec(arb_op(), 0..70)) {
        run_differential(&ops, UnmatchedPolicy::Error);
    }
}
