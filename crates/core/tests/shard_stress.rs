//! Concurrency stress for the sharded coordinator.
//!
//! The seed registry sat behind one `Mutex`, so these interleavings could
//! not happen by construction. [`ShardedRegistry`] takes `&self` and locks
//! per-space shards in ascending-id order; this test hammers it from many
//! threads and checks the model's delivery guarantees survive real
//! parallelism:
//!
//! * **No lost or duplicated deliveries** — each thread owns a disjoint
//!   space whose actor stays visible, so every send must land exactly
//!   once; on the shared space, the sum of `Disposition::Delivered`
//!   counts returned to broadcasters must equal the deliveries observed.
//! * **Per-sender order** — sends from one thread into its own space
//!   arrive in send order (delivery happens under the shard lock).
//! * **No deadlock** — threads issue `make_visible` with opposing
//!   child/parent orientations, destroy and recreate spaces, and run GC,
//!   all while sends are in flight; the test completing is the assertion.
//!   A watchdog panics if the run wedges.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_core::{
    policy::{ManagerPolicy, UnmatchedPolicy},
    ActorId, Disposition, Route, ShardedRegistry, SpaceId,
};
use actorspace_pattern::pattern;

const THREADS: u64 = 8;
const ITERS: u64 = 300;

fn policy(unmatched: UnmatchedPolicy) -> ManagerPolicy {
    ManagerPolicy {
        unmatched_send: unmatched,
        unmatched_broadcast: unmatched,
        selection_seed: Some(7),
        ..ManagerPolicy::default()
    }
}

/// Message encoding: sender thread in the high digits, sequence in the low.
fn msg(t: u64, seq: u64) -> u64 {
    t * 1_000_000 + seq
}

#[test]
fn parallel_sends_lose_and_duplicate_nothing() {
    // Suspend policy on private spaces (nothing ever suspends there — the
    // actor stays visible); Discard on the shared space so broadcasts
    // against churning membership report exactly what they delivered.
    let reg: Arc<ShardedRegistry<u64>> =
        Arc::new(ShardedRegistry::new(policy(UnmatchedPolicy::Suspend)));

    let shared = reg.create_space(None);
    reg.set_space_policy(shared, policy(UnmatchedPolicy::Discard), None)
        .unwrap();

    // One private space + resident actor per thread; each actor is also
    // visible in the shared space. Everything hangs off ROOT_SPACE so the
    // mid-run GC passes never reap live state.
    let mut privates = Vec::new();
    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
    reg.make_visible(
        shared.into(),
        vec![path("shared")],
        actorspace_core::ROOT_SPACE,
        None,
        &mut sink,
    )
    .unwrap();
    for _ in 0..THREADS {
        let s = reg.create_space(None);
        let a = reg.create_actor(s, None).unwrap();
        reg.make_visible(
            s.into(),
            vec![path("pool")],
            actorspace_core::ROOT_SPACE,
            None,
            &mut sink,
        )
        .unwrap();
        reg.make_visible(a.into(), vec![path("worker")], s, None, &mut sink)
            .unwrap();
        reg.make_visible(
            a.into(),
            vec![path("shared/worker")],
            shared,
            None,
            &mut sink,
        )
        .unwrap();
        privates.push((s, a));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let stop = stop.clone();
        thread::spawn(move || {
            for _ in 0..600 {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(100));
            }
            panic!("stress test wedged: suspected deadlock in ShardedRegistry");
        })
    };

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let reg = Arc::clone(&reg);
        let privates = privates.clone();
        handles.push(thread::spawn(move || {
            let (own_space, own_actor) = privates[t as usize];
            let mut log: Vec<(ActorId, u64)> = Vec::new();
            let mut shared_delivered_claim = 0u64;
            for seq in 0..ITERS {
                {
                    let mut sink = |to: ActorId, m: u64, _: Option<&Route>| log.push((to, m));
                    // Private-space send: must deliver to own actor, now.
                    let d = reg
                        .send(&pattern("worker"), own_space, msg(t, seq), &mut sink)
                        .unwrap();
                    assert_eq!(d, Disposition::Delivered(1), "thread {t} seq {seq}");
                }

                // Shared-space churn: flip a *different* thread's actor in
                // and out of the shared space, so membership writes and
                // broadcasts race across shards.
                let victim = privates[((t + 1) % THREADS) as usize].1;
                let mut sink = |to: ActorId, m: u64, _: Option<&Route>| log.push((to, m));
                if seq % 3 == 0 {
                    let _ = reg.make_visible(
                        victim.into(),
                        vec![path("shared/worker")],
                        shared,
                        None,
                        &mut sink,
                    );
                } else if seq % 3 == 1 {
                    let _ = reg.make_invisible(victim.into(), shared, None);
                }
                if seq % 5 == 0 {
                    let d = reg
                        .broadcast(
                            &pattern("shared/*"),
                            shared,
                            msg(t, seq) + 500_000,
                            &mut sink,
                        )
                        .unwrap();
                    if let Disposition::Delivered(n) = d {
                        shared_delivered_claim += n as u64;
                    }
                }

                // Lock-order inversion attempt: even threads link low→high,
                // odd threads high→low. The coordinator sorts lock sets by
                // SpaceId, so both orders must be safe; one of the two
                // directions is refused as a cycle, which is fine.
                if seq % 7 == 0 {
                    let lo = privates[(t as usize).min((t as usize + 1) % THREADS as usize)].0;
                    let hi = privates[(t as usize).max((t as usize + 1) % THREADS as usize)].0;
                    let (child, parent) = if t % 2 == 0 { (lo, hi) } else { (hi, lo) };
                    let _ =
                        reg.make_visible(child.into(), vec![path("peer")], parent, None, &mut sink);
                    let _ = reg.make_invisible(child.into(), parent, None);
                }

                // Shard lifecycle churn: a transient space is created, made
                // visible in the shared scope, then destroyed while other
                // threads may be resolving through it.
                if seq % 11 == 0 {
                    let tmp = reg.create_space(None);
                    let _ =
                        reg.make_visible(tmp.into(), vec![path("tmp")], shared, None, &mut sink);
                    let _ = reg.destroy_space(tmp, None);
                }
                if seq % 97 == 0 {
                    let _ = reg.collect_garbage(&|_| Vec::new());
                }
            }
            let _ = own_actor;
            (log, shared_delivered_claim)
        }));
    }

    let mut all: Vec<(u64, Vec<(ActorId, u64)>)> = Vec::new();
    let mut claimed_shared = 0u64;
    for (t, h) in handles.into_iter().enumerate() {
        let (log, claim) = h.join().expect("stress thread panicked");
        claimed_shared += claim;
        all.push((t as u64, log));
    }
    stop.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();

    // Per-thread private sends: exactly once each, in send order.
    for (t, log) in &all {
        let own_actor = privates[*t as usize].1;
        let own: Vec<u64> = log
            .iter()
            .filter(|(to, m)| *to == own_actor && m / 1_000_000 == *t && m % 1_000_000 < 500_000)
            .map(|(_, m)| m % 1_000_000)
            .collect();
        let expect: Vec<u64> = (0..ITERS).collect();
        assert_eq!(
            own, expect,
            "thread {t}: private deliveries lost, duplicated, or reordered"
        );
    }

    // Shared-space broadcasts: every delivery the coordinator claimed is
    // observed exactly once in some sender's log, and nothing extra.
    let mut observed_shared: HashMap<u64, u64> = HashMap::new();
    let mut observed_total = 0u64;
    for (_, log) in &all {
        for (_, m) in log {
            if m % 1_000_000 >= 500_000 {
                *observed_shared.entry(*m).or_insert(0) += 1;
                observed_total += 1;
            }
        }
    }
    assert_eq!(
        observed_total, claimed_shared,
        "shared-space broadcast deliveries lost or duplicated"
    );

    // The registry is still coherent: DAG intact, private actors resolvable.
    assert!(reg.is_dag());
    for (s, a) in &privates {
        assert_eq!(reg.resolve(&pattern("worker"), *s).unwrap(), vec![*a]);
    }
}

/// Opposing multi-shard writers only: no sends, maximum lock-set overlap.
/// Every thread links and unlinks spaces across the whole universe in a
/// direction chosen by parity; completion proves the ascending-SpaceId
/// lock protocol admits no cyclic wait.
#[test]
fn opposing_visibility_writers_do_not_deadlock() {
    let reg: Arc<ShardedRegistry<u64>> =
        Arc::new(ShardedRegistry::new(policy(UnmatchedPolicy::Suspend)));
    let spaces: Vec<SpaceId> = (0..12).map(|_| reg.create_space(None)).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let stop = stop.clone();
        thread::spawn(move || {
            for _ in 0..600 {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(100));
            }
            panic!("visibility writers wedged: suspected deadlock");
        })
    };

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let reg = Arc::clone(&reg);
        let spaces = spaces.clone();
        handles.push(thread::spawn(move || {
            let n = spaces.len();
            for i in 0..ITERS as usize {
                let a = spaces[(t as usize + i) % n];
                let b = spaces[(t as usize + i * 5 + 1) % n];
                if a == b {
                    continue;
                }
                let (child, parent) = if t % 2 == 0 { (a, b) } else { (b, a) };
                let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                let _ = reg.make_visible(child.into(), vec![path("x")], parent, None, &mut sink);
                let _ = reg.make_invisible(child.into(), parent, None);
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();

    assert!(reg.is_dag());
}
