//! Seeded re-entrancy violation against the *real* sharded coordinator: a
//! delivery sink that calls back into the registry is reported by name —
//! before any lock is touched, so the test panics instead of deadlocking.
//!
//! Compiled out without `--features lockcheck`.
#![cfg(feature = "lockcheck")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use actorspace_atoms::path;
use actorspace_core::{ManagerPolicy, ShardedRegistry};
use actorspace_pattern::pattern;

#[test]
fn sink_reentering_coordinator_is_reported() {
    let r: ShardedRegistry<&'static str> = ShardedRegistry::new(ManagerPolicy::default());
    let s = r.create_space(None);
    let a = r.create_actor(s, None).unwrap();
    let mut ok_sink = |_to, _msg, _route: Option<&_>| {};
    r.make_visible(a.into(), vec![path("w")], s, None, &mut ok_sink)
        .unwrap();

    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut reentrant = |_to, _msg, _route: Option<&_>| {
            // Sinks run with meta + shard locks held; re-entering the
            // coordinator from here would self-deadlock on a real mutex.
            let _ = r.space_exists(s);
        };
        r.send(&pattern("w"), s, "job", &mut reentrant)
    }))
    .expect_err("re-entrant sink must be reported");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("lockcheck panics carry a string report");
    assert!(msg.contains("re-entrancy violation"), "got: {msg}");
    // Both sides are named: the coordinator op the sink tried to enter and
    // the callback section it was invoked from, each with its site.
    assert!(
        msg.contains("ShardedRegistry::space_exists"),
        "re-entered op named: {msg}"
    );
    assert!(msg.contains("`sink`"), "callback label named: {msg}");
    assert!(
        msg.contains("shard.rs"),
        "acquisition sites point into the coordinator: {msg}"
    );
}
