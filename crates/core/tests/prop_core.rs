//! Property tests for the core registry: the visibility DAG invariant under
//! random operation sequences, matching against a naive oracle, persistent
//! exactly-once delivery, and GC safety.

use std::collections::{HashMap, HashSet};

use actorspace_atoms::{path, Path};
use actorspace_core::{
    policy::{ManagerPolicy, UnmatchedPolicy},
    ActorId, Disposition, MemberId, Registry, SpaceId, ROOT_SPACE,
};
use actorspace_pattern::{pattern, Pattern};
use proptest::prelude::*;

type Reg = Registry<u64>;

fn policy(unmatched: UnmatchedPolicy) -> ManagerPolicy {
    ManagerPolicy {
        unmatched_send: unmatched,
        unmatched_broadcast: unmatched,
        selection_seed: Some(11),
        ..ManagerPolicy::default()
    }
}

/// A random visibility op over a small universe of spaces and actors.
#[derive(Debug, Clone)]
enum Op {
    MakeActorVisible {
        actor: usize,
        space: usize,
        attr: usize,
    },
    MakeActorInvisible {
        actor: usize,
        space: usize,
    },
    MakeSpaceVisible {
        child: usize,
        parent: usize,
        attr: usize,
    },
    MakeSpaceInvisible {
        child: usize,
        parent: usize,
    },
    ChangeAttr {
        actor: usize,
        space: usize,
        attr: usize,
    },
    DestroySpace {
        space: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6, 0usize..5, 0usize..4).prop_map(|(actor, space, attr)| Op::MakeActorVisible {
            actor,
            space,
            attr
        }),
        (0usize..6, 0usize..5).prop_map(|(actor, space)| Op::MakeActorInvisible { actor, space }),
        (0usize..5, 0usize..5, 0usize..4).prop_map(|(child, parent, attr)| Op::MakeSpaceVisible {
            child,
            parent,
            attr
        }),
        (0usize..5, 0usize..5).prop_map(|(child, parent)| Op::MakeSpaceInvisible { child, parent }),
        (0usize..6, 0usize..5, 0usize..4).prop_map(|(actor, space, attr)| Op::ChangeAttr {
            actor,
            space,
            attr
        }),
        (1usize..5).prop_map(|space| Op::DestroySpace { space }),
    ]
}

fn attrs(i: usize) -> Vec<Path> {
    match i {
        0 => vec![path("w")],
        1 => vec![path("srv/fib")],
        2 => vec![path("srv/fact"), path("w")],
        _ => vec![path("pool/deep/worker")],
    }
}

/// Applies ops, ignoring expected errors (cycles, missing targets), and
/// returns the registry plus which spaces/actors still exist.
fn run_ops(ops: &[Op]) -> (Reg, Vec<SpaceId>, Vec<ActorId>) {
    let mut r: Reg = Registry::new(policy(UnmatchedPolicy::Discard));
    let spaces: Vec<SpaceId> = std::iter::once(ROOT_SPACE)
        .chain((0..4).map(|_| r.create_space(None)))
        .collect();
    let actors: Vec<ActorId> = (0..6)
        .map(|_| r.create_actor(ROOT_SPACE, None).unwrap())
        .collect();
    let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
    for op in ops {
        match *op {
            Op::MakeActorVisible { actor, space, attr } => {
                let _ = r.make_visible(
                    actors[actor].into(),
                    attrs(attr),
                    spaces[space],
                    None,
                    &mut sink,
                );
            }
            Op::MakeActorInvisible { actor, space } => {
                let _ = r.make_invisible(actors[actor].into(), spaces[space], None);
            }
            Op::MakeSpaceVisible {
                child,
                parent,
                attr,
            } => {
                let _ = r.make_visible(
                    spaces[child].into(),
                    attrs(attr),
                    spaces[parent],
                    None,
                    &mut sink,
                );
            }
            Op::MakeSpaceInvisible { child, parent } => {
                let _ = r.make_invisible(spaces[child].into(), spaces[parent], None);
            }
            Op::ChangeAttr { actor, space, attr } => {
                let _ = r.change_attributes(
                    actors[actor].into(),
                    attrs(attr),
                    spaces[space],
                    None,
                    &mut sink,
                );
            }
            Op::DestroySpace { space } => {
                let _ = r.destroy_space(spaces[space], None);
            }
        }
    }
    (r, spaces, actors)
}

/// Naive resolve oracle: enumerate every joined attribute path by explicit
/// recursion and match each with the Pattern API directly.
fn oracle_resolve(r: &Reg, pat: &Pattern, space: SpaceId, depth: usize) -> HashSet<ActorId> {
    fn joined_paths(
        r: &Reg,
        space: SpaceId,
        prefix: &Path,
        depth: usize,
        out: &mut Vec<(ActorId, Path)>,
    ) {
        let Ok(sp) = r.space(space) else { return };
        for (member, attrs) in sp.members() {
            for a in attrs {
                let full = prefix.join(a);
                match *member {
                    MemberId::Actor(id) => out.push((id, full)),
                    MemberId::Space(sub) => {
                        if depth > 0 {
                            joined_paths(r, sub, &full, depth - 1, out);
                        }
                    }
                }
            }
        }
    }
    let mut all = Vec::new();
    joined_paths(r, space, &Path::empty(), depth, &mut all);
    all.into_iter()
        .filter(|(_, p)| pat.matches(p))
        .map(|(id, _)| id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The visibility relation stays a DAG no matter what sequence of
    /// operations is attempted (§5.7).
    #[test]
    fn visibility_stays_acyclic(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let (r, spaces, _) = run_ops(&ops);
        // Reconstruct the space graph and Kahn-check it.
        let mut edges: HashMap<SpaceId, Vec<SpaceId>> = HashMap::new();
        for &s in &spaces {
            if let Ok(sp) = r.space(s) {
                for m in sp.members().keys() {
                    if let MemberId::Space(sub) = m {
                        edges.entry(s).or_default().push(*sub);
                    }
                }
            }
        }
        // DFS cycle check.
        fn has_cycle(
            edges: &HashMap<SpaceId, Vec<SpaceId>>,
            node: SpaceId,
            visiting: &mut HashSet<SpaceId>,
            done: &mut HashSet<SpaceId>,
        ) -> bool {
            if done.contains(&node) { return false; }
            if !visiting.insert(node) { return true; }
            for &next in edges.get(&node).into_iter().flatten() {
                if has_cycle(edges, next, visiting, done) { return true; }
            }
            visiting.remove(&node);
            done.insert(node);
            false
        }
        let mut done = HashSet::new();
        for &s in &spaces {
            let mut visiting = HashSet::new();
            prop_assert!(!has_cycle(&edges, s, &mut visiting, &mut done));
        }
    }

    /// `resolve` agrees with the enumerate-all-joined-paths oracle after any
    /// operation sequence, for several pattern shapes.
    #[test]
    fn resolve_matches_oracle(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let (r, spaces, _) = run_ops(&ops);
        let patterns = [
            pattern("w"),
            pattern("srv/*"),
            pattern("**"),
            pattern("**/worker"),
            pattern("{srv/fib, pool/deep/worker}"),
        ];
        for &s in &spaces {
            if !r.space_exists(s) { continue; }
            for pat in &patterns {
                let got: HashSet<ActorId> =
                    r.resolve(pat, s).unwrap().into_iter().collect();
                let want = oracle_resolve(&r, pat, s, 64);
                prop_assert_eq!(&got, &want,
                    "pattern {} in {:?}: got {:?} want {:?}", pat, s, got, want);
            }
        }
    }

    /// Persistent broadcasts deliver exactly once to every actor that ever
    /// matches, however visibility churns.
    #[test]
    fn persistent_broadcast_is_exactly_once(
        arrivals in proptest::collection::vec((0usize..6, any::<bool>()), 1..40)
    ) {
        let mut r: Reg = Registry::new(policy(UnmatchedPolicy::Persistent));
        let s = r.create_space(None);
        let actors: Vec<ActorId> =
            (0..6).map(|_| r.create_actor(s, None).unwrap()).collect();

        let mut received: HashMap<ActorId, u32> = HashMap::new();
        {
            let mut sink = |a: ActorId, _m: u64, _: Option<&actorspace_core::Route>| { *received.entry(a).or_insert(0) += 1; };
            let d = r.broadcast(&pattern("node"), s, 42, &mut sink).unwrap();
            prop_assert_eq!(d, Disposition::Persistent(0));
            for &(idx, arrive) in &arrivals {
                if arrive {
                    let _ = r.make_visible(
                        actors[idx].into(), vec![path("node")], s, None, &mut sink);
                } else {
                    let _ = r.make_invisible(actors[idx].into(), s, None);
                }
            }
        }
        // Every actor that was ever made visible got the message exactly once.
        let ever_visible: HashSet<usize> =
            arrivals.iter().filter(|&&(_, arr)| arr).map(|&(i, _)| i).collect();
        for (i, a) in actors.iter().enumerate() {
            let n = received.get(a).copied().unwrap_or(0);
            if ever_visible.contains(&i) {
                prop_assert_eq!(n, 1, "actor {} received {} times", i, n);
            } else {
                prop_assert_eq!(n, 0);
            }
        }
    }

    /// Literal-pattern resolution via the inverted index agrees with the
    /// NFA walk after any operation sequence (the E12 fast path changes
    /// performance, never semantics).
    #[test]
    fn literal_index_matches_nfa_walk(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let (r, spaces, _) = run_ops(&ops);
        // Indexed registry is `r` (default policy has the index on);
        // compare against a policy with the index disabled by rebuilding
        // the same state. Cheaper: compare fast path vs oracle directly.
        let literals = [
            pattern("w"),
            pattern("srv/fib"),
            pattern("pool/deep/worker"),
            pattern("absent/path"),
        ];
        for &s in &spaces {
            if !r.space_exists(s) { continue; }
            for pat in &literals {
                let got: HashSet<ActorId> =
                    r.resolve(pat, s).unwrap().into_iter().collect();
                let want = oracle_resolve(&r, pat, s, 64);
                prop_assert_eq!(&got, &want, "literal {} in {:?}", pat, s);
            }
        }
    }

    /// GC never collects anything reachable, and a second pass right after
    /// the first collects nothing (fixpoint).
    #[test]
    fn gc_is_safe_and_idempotent(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let (mut r, _, actors) = run_ops(&ops);
        // Root half the actors.
        for a in actors.iter().take(3) {
            if r.actor_exists(*a) {
                r.add_root(*a);
            }
        }
        let before_live: HashSet<ActorId> = r.actor_ids().collect();
        let report = r.collect_garbage(&|_| Vec::new());
        // Rooted actors survive.
        for a in actors.iter().take(3) {
            if before_live.contains(a) {
                prop_assert!(r.actor_exists(*a), "rooted actor collected");
            }
        }
        // Actors visible in the root space survive.
        // (Check via resolve: anything matchable from the root is alive.)
        for id in r.resolve(&pattern("**"), ROOT_SPACE).unwrap() {
            prop_assert!(r.actor_exists(id));
        }
        // Second pass is a no-op.
        let again = r.collect_garbage(&|_| Vec::new());
        prop_assert!(again.collected_actors.is_empty(), "{:?}", again);
        prop_assert!(again.collected_spaces.is_empty());
        let _ = report;
    }
}
