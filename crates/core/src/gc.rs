//! Garbage collection of actors and actorSpaces (§5.5).
//!
//! "As long as an actor (or actorSpace) is visible in an actorSpace, it may
//! be potentially reachable and thus cannot be garbage collected until the
//! container actorSpace has been garbage collected. … when an actorSpace is
//! garbage collected, the actors contained in that actorSpace themselves
//! are not deleted. … since actorSpaces are viewed as passive containers,
//! garbage collecting them is simpler than actors: inverse reachability
//! need not be considered."
//!
//! The collector is a stop-the-world mark/sweep over two kinds of edges:
//!
//! * **space → member**: a live space keeps its visible members
//!   potentially-reachable (a pattern can still select them);
//! * **actor → acquaintance**: a live actor keeps alive every mail address
//!   it knows. The registry cannot see inside behaviors, so the runtime
//!   supplies acquaintances through a callback.
//!
//! Roots are the automatically-created root space (globally visible, §7.1)
//! and actors with live external handles.

use std::collections::HashSet;

use crate::ids::{ActorId, MemberId, SpaceId, ROOT_SPACE};
use crate::registry::Registry;

/// What a collection pass found and freed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Actors freed this pass (sorted).
    pub collected_actors: Vec<ActorId>,
    /// Spaces freed this pass (sorted).
    pub collected_spaces: Vec<SpaceId>,
    /// Actors surviving.
    pub live_actors: usize,
    /// Spaces surviving (including the root).
    pub live_spaces: usize,
}

impl<M: Clone> Registry<M> {
    /// Runs a mark/sweep collection. `acquaintances` reports, for a live
    /// actor, every mail address its current behavior holds; pass
    /// `|_| Vec::new()` when behaviors hold no addresses (or when the
    /// caller only wants visibility-reachability, as in the paper's
    /// simplified discussion).
    pub fn collect_garbage(
        &mut self,
        acquaintances: &dyn Fn(ActorId) -> Vec<MemberId>,
    ) -> GcReport {
        let mut live_actors: HashSet<ActorId> = HashSet::new();
        let mut live_spaces: HashSet<SpaceId> = HashSet::new();

        let mut work: Vec<MemberId> = Vec::new();
        work.push(MemberId::Space(ROOT_SPACE));
        for &a in self.roots() {
            work.push(MemberId::Actor(a));
        }

        while let Some(m) = work.pop() {
            match m {
                MemberId::Actor(a) => {
                    if !self.actor_exists(a) || !live_actors.insert(a) {
                        continue;
                    }
                    work.extend(acquaintances(a));
                }
                MemberId::Space(s) => {
                    if !live_spaces.insert(s) {
                        continue;
                    }
                    let Ok(space) = self.space(s) else { continue };
                    // A live space keeps its visible members reachable.
                    work.extend(space.members().keys().copied());
                }
            }
        }

        let mut collected_actors: Vec<ActorId> = self
            .actor_ids()
            .filter(|a| !live_actors.contains(a))
            .collect();
        let mut collected_spaces: Vec<SpaceId> = self
            .space_ids()
            .filter(|s| !live_spaces.contains(s))
            .collect();
        collected_actors.sort_unstable();
        collected_spaces.sort_unstable();

        // Sweep spaces first (membership removal is cheaper once gone), then
        // actors.
        for &s in &collected_spaces {
            self.remove_space_internal(s);
        }
        for &a in &collected_actors {
            self.remove_actor_internal(a);
        }

        GcReport {
            collected_actors,
            collected_spaces,
            live_actors: self.actor_count(),
            live_spaces: self.space_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ManagerPolicy;
    use actorspace_atoms::path;

    type Reg = Registry<u32>;

    fn reg() -> Reg {
        Registry::new(ManagerPolicy::default())
    }

    fn no_acq(_: ActorId) -> Vec<MemberId> {
        Vec::new()
    }

    fn sink() -> impl FnMut(ActorId, u32, Option<&crate::delivery::Route>) {
        |_, _, _| {}
    }

    #[test]
    fn unreferenced_invisible_actor_is_collected() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let report = r.collect_garbage(&no_acq);
        assert_eq!(report.collected_actors, vec![a]);
        assert!(!r.actor_exists(a));
    }

    #[test]
    fn rooted_actor_survives() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        r.add_root(a);
        let report = r.collect_garbage(&no_acq);
        assert!(report.collected_actors.is_empty());
        assert!(r.actor_exists(a));
        // Dropping the handle frees it on the next pass.
        r.remove_root(a);
        let report = r.collect_garbage(&no_acq);
        assert_eq!(report.collected_actors, vec![a]);
    }

    #[test]
    fn visible_actor_in_reachable_space_survives() {
        // §5.5: visibility implies potential reachability.
        let mut r = reg();
        let s = r.create_space(None);
        let holder = r.create_actor(s, None).unwrap();
        r.add_root(holder);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        // `holder` knows the space; the space keeps `a` alive.
        let acq = move |x: ActorId| {
            if x == holder {
                vec![MemberId::Space(s)]
            } else {
                Vec::new()
            }
        };
        let report = r.collect_garbage(&acq);
        assert!(report.collected_actors.is_empty());
        assert!(r.actor_exists(a));
        assert!(r.space_exists(s));
    }

    #[test]
    fn actor_visible_only_in_dead_space_is_collected_with_it() {
        let mut r = reg();
        let s = r.create_space(None); // nobody references s
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        let report = r.collect_garbage(&no_acq);
        assert_eq!(report.collected_spaces, vec![s]);
        assert_eq!(report.collected_actors, vec![a]);
    }

    #[test]
    fn actor_in_root_space_survives_forever() {
        let mut r = reg();
        let a = r.create_actor(ROOT_SPACE, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], ROOT_SPACE, None, &mut k)
            .unwrap();
        let report = r.collect_garbage(&no_acq);
        assert!(report.collected_actors.is_empty());
        assert!(r.space_exists(ROOT_SPACE));
    }

    #[test]
    fn root_space_is_never_collected() {
        let mut r = reg();
        let report = r.collect_garbage(&no_acq);
        assert!(report.collected_spaces.is_empty());
        assert_eq!(report.live_spaces, 1);
    }

    #[test]
    fn acquaintance_chains_keep_actors_alive() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        let c = r.create_actor(s, None).unwrap();
        let dead = r.create_actor(s, None).unwrap();
        r.add_root(a);
        // a → b → c; `dead` is unreachable.
        let acq = move |x: ActorId| {
            if x == a {
                vec![MemberId::Actor(b)]
            } else if x == b {
                vec![MemberId::Actor(c)]
            } else {
                Vec::new()
            }
        };
        let report = r.collect_garbage(&acq);
        assert_eq!(report.collected_actors, vec![dead]);
        assert!(r.actor_exists(a) && r.actor_exists(b) && r.actor_exists(c));
    }

    #[test]
    fn space_reachable_only_through_nesting_survives() {
        // inner visible in outer; outer visible in root ⇒ both live.
        let mut r = reg();
        let outer = r.create_space(None);
        let inner = r.create_space(None);
        let mut k = sink();
        r.make_visible(inner.into(), vec![path("i")], outer, None, &mut k)
            .unwrap();
        r.make_visible(outer.into(), vec![path("o")], ROOT_SPACE, None, &mut k)
            .unwrap();
        let report = r.collect_garbage(&no_acq);
        assert!(report.collected_spaces.is_empty());
        assert!(r.space_exists(outer) && r.space_exists(inner));
    }

    #[test]
    fn collecting_space_does_not_collect_its_rooted_members() {
        // §5.5: "the actors contained in that actorSpace themselves are not
        // deleted" — when otherwise reachable.
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.add_root(a);
        let report = r.collect_garbage(&no_acq);
        assert_eq!(report.collected_spaces, vec![s]);
        assert!(report.collected_actors.is_empty());
        assert!(r.actor_exists(a));
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut r = reg();
        let s = r.create_space(None);
        for _ in 0..10 {
            r.create_actor(s, None).unwrap();
        }
        let keep = r.create_actor(s, None).unwrap();
        r.add_root(keep);
        let report = r.collect_garbage(&no_acq);
        assert_eq!(report.collected_actors.len(), 10);
        assert_eq!(report.live_actors, 1);
        assert_eq!(report.live_spaces, 1); // root only; s was unreachable
    }
}
