//! Pattern resolution: mapping `pattern @ space` to actor mail addresses.
//!
//! "Abstractly, each actorSpace maps a pattern to a set of actor mail
//! addresses by matching on its list of registered attributes of visible
//! actors" (§5.1). With nested spaces, attributes combine with `/` into
//! *structured attributes* (§7.1): an actor registered as `fib` inside a
//! space registered as `srv` is reachable from the outer space by the
//! pattern `srv/fib`.
//!
//! Rather than materializing every joined attribute path (exponential in
//! the worst case), resolution walks the membership tree carrying the
//! pattern NFA's live [`StateSet`]: each attribute advances the state set
//! atom by atom, actor members are collected when the set accepts, and
//! space members are descended into with the post-prefix state set. Dead
//! state sets prune whole subtrees. The visibility relation is a DAG
//! (§5.7), so the walk terminates; a depth limit additionally bounds work.

use std::collections::HashSet;

use actorspace_pattern::{Pattern, StateSet};

use crate::error::{Error, Result};
use crate::ids::{ActorId, MemberId, SpaceId};
use crate::registry::Registry;
use crate::space::Space;

/// Read access to spaces during a resolution walk. Implemented both by the
/// single-lock [`Registry`]'s space map and by the sharded registry's
/// ordered set of locked shards, so one walk serves both coordinators.
pub(crate) trait SpaceStore<M> {
    /// The space, if it exists in this view.
    fn get_space(&self, id: SpaceId) -> Option<&Space<M>>;
}

impl<M> SpaceStore<M> for std::collections::HashMap<SpaceId, Space<M>> {
    fn get_space(&self, id: SpaceId) -> Option<&Space<M>> {
        self.get(&id)
    }
}

/// Resolves `pattern` in `space` to the set of matching visible actors,
/// descending through visible sub-spaces per the structured-attribute
/// rule. The result is deduplicated and sorted (an actor visible via
/// several attribute paths is returned once).
pub(crate) fn resolve_actors<M>(
    store: &impl SpaceStore<M>,
    pattern: &Pattern,
    space: SpaceId,
) -> Result<Vec<ActorId>> {
    let root = store.get_space(space).ok_or(Error::NoSuchSpace(space))?;
    let max_depth = root.policy().max_match_depth;
    let mut out: HashSet<ActorId> = HashSet::new();
    // Fast path: a literal pattern matches exactly one attribute path,
    // so the per-space inverted index answers it without an NFA walk.
    // Attributes are always literal, so this is complete, including
    // through nested spaces (prefix-stripping recursion).
    if root.policy().use_literal_index {
        if let Some(lit) = pattern.as_literal() {
            let mut visited = HashSet::new();
            walk_literal(
                store,
                pattern,
                &lit,
                space,
                0,
                max_depth,
                &mut visited,
                &mut |a| {
                    out.insert(a);
                },
            )?;
            let mut v: Vec<ActorId> = out.into_iter().collect();
            v.sort_unstable();
            return Ok(v);
        }
    }
    let mut visited = HashSet::new();
    walk(
        store,
        pattern,
        space,
        pattern.start(),
        0,
        max_depth,
        &mut visited,
        &mut |a| {
            out.insert(a);
        },
    )?;
    let mut v: Vec<ActorId> = out.into_iter().collect();
    v.sort_unstable();
    Ok(v)
}

/// Resolves `pattern` to matching *spaces* (see
/// [`Registry::resolve_spaces`]).
pub(crate) fn resolve_spaces_in<M>(
    store: &impl SpaceStore<M>,
    pattern: &Pattern,
    space: SpaceId,
) -> Result<Vec<SpaceId>> {
    let root = store.get_space(space).ok_or(Error::NoSuchSpace(space))?;
    let max_depth = root.policy().max_match_depth;
    let mut out: HashSet<SpaceId> = HashSet::new();
    let mut visited = HashSet::new();
    walk_spaces(
        store,
        pattern,
        space,
        pattern.start(),
        0,
        max_depth,
        &mut visited,
        &mut |s| {
            out.insert(s);
        },
    )?;
    let mut v: Vec<SpaceId> = out.into_iter().collect();
    v.sort_unstable();
    Ok(v)
}

/// Literal resolution: exact index hit for direct actors, plus recursion
/// into sub-spaces whose (literal) attribute prefixes the target path.
#[allow(clippy::too_many_arguments)] // internal recursion carries its full context
fn walk_literal<M>(
    store: &impl SpaceStore<M>,
    original: &Pattern,
    target: &actorspace_atoms::Path,
    space: SpaceId,
    depth: usize,
    max_depth: usize,
    visited: &mut HashSet<(SpaceId, actorspace_atoms::Path)>,
    found: &mut impl FnMut(ActorId),
) -> Result<()> {
    // Visited-state dedup: terminates cyclic visibility graphs (§5.7's
    // tagging alternative) and prunes diamond re-walks.
    if !visited.insert((space, target.clone())) {
        return Ok(());
    }
    let sp = store.get_space(space).ok_or(Error::NoSuchSpace(space))?;
    for member in sp.members_with_attr(target) {
        if let MemberId::Actor(a) = member {
            // Index hits have local attribute == remaining target, so a
            // custom matching rule sees the same (pattern, member, attr)
            // triple the NFA path would give it.
            let admitted = sp
                .match_filter()
                .map(|f| f(original, *member, target))
                .unwrap_or(true);
            if admitted {
                found(*a);
            }
        }
    }
    if depth >= max_depth {
        return Ok(());
    }
    for sub in sp.space_members() {
        if store.get_space(sub).is_none() {
            continue;
        }
        let Some(attrs) = sp.members().get(&MemberId::Space(sub)) else {
            continue;
        };
        for attr in attrs {
            if let Some(rest) = target.strip_prefix(attr) {
                walk_literal(
                    store,
                    original,
                    &rest,
                    sub,
                    depth + 1,
                    max_depth,
                    visited,
                    found,
                )?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal recursion carries its full context
fn walk<M>(
    store: &impl SpaceStore<M>,
    pattern: &Pattern,
    space: SpaceId,
    states: StateSet,
    depth: usize,
    max_depth: usize,
    visited: &mut HashSet<(SpaceId, StateSet)>,
    found: &mut impl FnMut(ActorId),
) -> Result<()> {
    // Visited-state dedup (see `walk_literal`).
    if !visited.insert((space, states.clone())) {
        return Ok(());
    }
    let sp = store.get_space(space).ok_or(Error::NoSuchSpace(space))?;
    for (member, attrs) in sp.members() {
        for attr in attrs {
            // Advance the NFA through this attribute's atoms.
            let mut st = states.clone();
            let mut dead = false;
            for atom in attr.iter() {
                st = st.advance(pattern.nfa(), atom);
                if st.is_dead() {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            match *member {
                MemberId::Actor(a) => {
                    if st.is_accepting(pattern.nfa()) {
                        let admitted = sp
                            .match_filter()
                            .map(|f| f(pattern, *member, attr))
                            .unwrap_or(true);
                        if admitted {
                            found(a);
                        }
                    }
                }
                MemberId::Space(sub) => {
                    if depth < max_depth {
                        // Structured attribute: continue matching inside
                        // the sub-space with the advanced state set.
                        // Missing sub-spaces (e.g. remote stubs) are
                        // skipped rather than failing the whole resolve.
                        if store.get_space(sub).is_some() {
                            walk(
                                store,
                                pattern,
                                sub,
                                st,
                                depth + 1,
                                max_depth,
                                visited,
                                found,
                            )?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal recursion carries its full context
fn walk_spaces<M>(
    store: &impl SpaceStore<M>,
    pattern: &Pattern,
    space: SpaceId,
    states: StateSet,
    depth: usize,
    max_depth: usize,
    visited: &mut HashSet<(SpaceId, StateSet)>,
    found: &mut impl FnMut(SpaceId),
) -> Result<()> {
    if !visited.insert((space, states.clone())) {
        return Ok(());
    }
    let sp = store.get_space(space).ok_or(Error::NoSuchSpace(space))?;
    for (member, attrs) in sp.members() {
        let MemberId::Space(sub) = *member else {
            continue;
        };
        for attr in attrs {
            let mut st = states.clone();
            let mut dead = false;
            for atom in attr.iter() {
                st = st.advance(pattern.nfa(), atom);
                if st.is_dead() {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            if st.is_accepting(pattern.nfa()) {
                found(sub);
            }
            if depth < max_depth && store.get_space(sub).is_some() {
                walk_spaces(
                    store,
                    pattern,
                    sub,
                    st,
                    depth + 1,
                    max_depth,
                    visited,
                    found,
                )?;
            }
        }
    }
    Ok(())
}

impl<M: Clone> Registry<M> {
    /// Resolves `pattern` in `space` to the set of matching visible actors,
    /// descending through visible sub-spaces per the structured-attribute
    /// rule. The result is deduplicated and sorted (an actor visible via
    /// several attribute paths is returned once).
    pub fn resolve(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<ActorId>> {
        resolve_actors(self.spaces_map(), pattern, space)
    }

    /// Resolves `pattern` to matching *spaces* — §5.3: "the actorSpace
    /// specification … may itself be pattern based." The search scope is
    /// `space`, descending as for actors.
    pub fn resolve_spaces(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<SpaceId>> {
        resolve_spaces_in(self.spaces_map(), pattern, space)
    }

    /// Resolves a pattern-addressed space to exactly one space id, erroring
    /// when nothing matches. When several spaces match, the lowest id is
    /// chosen (deterministic).
    pub fn resolve_space_pattern(&self, pattern: &Pattern, scope: SpaceId) -> Result<SpaceId> {
        let spaces = self.resolve_spaces(pattern, scope)?;
        spaces.into_iter().next().ok_or_else(|| Error::NoMatch {
            pattern: pattern.text().to_owned(),
            space: scope,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ROOT_SPACE;
    use crate::policy::ManagerPolicy;
    use actorspace_atoms::path;
    use actorspace_pattern::pattern;

    fn reg() -> Registry<u32> {
        Registry::new(ManagerPolicy::default())
    }

    fn sink() -> impl FnMut(ActorId, u32, Option<&crate::delivery::Route>) {
        |_, _, _| {}
    }

    #[test]
    fn resolve_by_exact_attribute() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("fib")], s, None, &mut k)
            .unwrap();
        r.make_visible(b.into(), vec![path("fact")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("fib"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("fact"), s).unwrap(), vec![b]);
        assert_eq!(r.resolve(&pattern("sqrt"), s).unwrap(), vec![]);
    }

    #[test]
    fn star_matches_all_single_attribute_actors() {
        // The paper's `send(*@ProcPool, job, self)`.
        let mut r = reg();
        let pool = r.create_space(None);
        let mut k = sink();
        let mut all = Vec::new();
        for i in 0..5 {
            let w = r.create_actor(pool, None).unwrap();
            r.make_visible(
                w.into(),
                vec![path(&format!("worker-{i}"))],
                pool,
                None,
                &mut k,
            )
            .unwrap();
            all.push(w);
        }
        all.sort_unstable();
        assert_eq!(r.resolve(&pattern("*"), pool).unwrap(), all);
        assert_eq!(r.resolve(&Pattern::any(), pool).unwrap(), all);
    }

    #[test]
    fn matching_is_scoped_to_the_space() {
        // §5.2: patterns match only against attributes visible in the
        // *specified* actorSpace.
        let mut r = reg();
        let s1 = r.create_space(None);
        let s2 = r.create_space(None);
        let a = r.create_actor(s1, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], s1, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("w"), s1).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("w"), s2).unwrap(), vec![]);
        assert_eq!(r.resolve(&pattern("w"), ROOT_SPACE).unwrap(), vec![]);
    }

    #[test]
    fn structured_attributes_descend_into_subspaces() {
        // Actor `fib` in space T; T visible as `srv` in S ⇒ `srv/fib` from S.
        let mut r = reg();
        let s = r.create_space(None);
        let t = r.create_space(None);
        let a = r.create_actor(t, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("fib")], t, None, &mut k)
            .unwrap();
        r.make_visible(t.into(), vec![path("srv")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("srv/fib"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("srv/*"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("**"), s).unwrap(), vec![a]);
        // Bare `fib` does not match from S (prefix required)...
        assert_eq!(r.resolve(&pattern("fib"), s).unwrap(), vec![]);
        // ...but does from T.
        assert_eq!(r.resolve(&pattern("fib"), t).unwrap(), vec![a]);
    }

    #[test]
    fn multi_level_nesting() {
        // wan ⊃ lan ⊃ host: actor reachable as wan-pattern from the top.
        let mut r = reg();
        let wan = r.create_space(None);
        let lan = r.create_space(None);
        let host = r.create_space(None);
        let a = r.create_actor(host, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("cpu")], host, None, &mut k)
            .unwrap();
        r.make_visible(host.into(), vec![path("host1")], lan, None, &mut k)
            .unwrap();
        r.make_visible(lan.into(), vec![path("lan-a")], wan, None, &mut k)
            .unwrap();
        assert_eq!(
            r.resolve(&pattern("lan-a/host1/cpu"), wan).unwrap(),
            vec![a]
        );
        assert_eq!(r.resolve(&pattern("**/cpu"), wan).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("lan-a/**"), wan).unwrap(), vec![a]);
    }

    #[test]
    fn empty_attribute_makes_nesting_transparent() {
        // A sub-space registered under the empty path contributes no prefix:
        // its members match as if they were direct members.
        let mut r = reg();
        let outer = r.create_space(None);
        let inner = r.create_space(None);
        let a = r.create_actor(inner, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], inner, None, &mut k)
            .unwrap();
        r.make_visible(
            inner.into(),
            vec![actorspace_atoms::Path::empty()],
            outer,
            None,
            &mut k,
        )
        .unwrap();
        assert_eq!(r.resolve(&pattern("w"), outer).unwrap(), vec![a]);
    }

    #[test]
    fn actor_visible_via_multiple_paths_is_returned_once() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("x/y"), path("x/z")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("x/*"), s).unwrap(), vec![a]);
    }

    #[test]
    fn diamond_overlap_deduplicates() {
        // inner visible in two mid spaces, both visible in top.
        let mut r = reg();
        let top = r.create_space(None);
        let m1 = r.create_space(None);
        let m2 = r.create_space(None);
        let inner = r.create_space(None);
        let a = r.create_actor(inner, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], inner, None, &mut k)
            .unwrap();
        r.make_visible(inner.into(), vec![path("i")], m1, None, &mut k)
            .unwrap();
        r.make_visible(inner.into(), vec![path("i")], m2, None, &mut k)
            .unwrap();
        r.make_visible(m1.into(), vec![path("m")], top, None, &mut k)
            .unwrap();
        r.make_visible(m2.into(), vec![path("m")], top, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("m/i/w"), top).unwrap(), vec![a]);
    }

    #[test]
    fn depth_limit_bounds_descent() {
        let policy = ManagerPolicy {
            max_match_depth: 1,
            ..Default::default()
        };
        let mut r: Registry<u32> = Registry::new(policy);
        let top = r.create_space(None);
        let mid = r.create_space(None);
        let bot = r.create_space(None);
        let a = r.create_actor(bot, None).unwrap();
        let mut k = |_: ActorId, _: u32, _: Option<&crate::delivery::Route>| {};
        r.make_visible(a.into(), vec![path("w")], bot, None, &mut k)
            .unwrap();
        r.make_visible(bot.into(), vec![path("b")], mid, None, &mut k)
            .unwrap();
        r.make_visible(mid.into(), vec![path("m")], top, None, &mut k)
            .unwrap();
        // Depth 1 allows top → mid but not mid → bot.
        assert_eq!(r.resolve(&pattern("m/b/w"), top).unwrap(), vec![]);
        // From mid, bot is at depth 1 — reachable.
        assert_eq!(r.resolve(&pattern("b/w"), mid).unwrap(), vec![a]);
    }

    #[test]
    fn resolve_spaces_finds_spaces_by_pattern() {
        let mut r = reg();
        let s = r.create_space(None);
        let t1 = r.create_space(None);
        let t2 = r.create_space(None);
        let mut k = sink();
        r.make_visible(t1.into(), vec![path("pool/alpha")], s, None, &mut k)
            .unwrap();
        r.make_visible(t2.into(), vec![path("pool/beta")], s, None, &mut k)
            .unwrap();
        let mut want = vec![t1, t2];
        want.sort_unstable();
        assert_eq!(r.resolve_spaces(&pattern("pool/*"), s).unwrap(), want);
        assert_eq!(
            r.resolve_spaces(&pattern("pool/beta"), s).unwrap(),
            vec![t2]
        );
        assert_eq!(
            r.resolve_space_pattern(&pattern("pool/beta"), s).unwrap(),
            t2
        );
        assert!(r.resolve_space_pattern(&pattern("nope"), s).is_err());
    }

    #[test]
    fn resolve_on_missing_space_errors() {
        let r = reg();
        assert!(matches!(
            r.resolve(&pattern("x"), SpaceId(404)),
            Err(Error::NoSuchSpace(_))
        ));
    }

    #[test]
    fn literal_fast_path_descends_nested_spaces() {
        let mut r = reg();
        let outer = r.create_space(None);
        let inner = r.create_space(None);
        let a = r.create_actor(inner, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("fib")], inner, None, &mut k)
            .unwrap();
        r.make_visible(inner.into(), vec![path("srv")], outer, None, &mut k)
            .unwrap();
        // `srv/fib` is literal → index path; must match the nested actor.
        assert!(pattern("srv/fib").as_literal().is_some());
        assert_eq!(r.resolve(&pattern("srv/fib"), outer).unwrap(), vec![a]);
        // An empty-attribute (transparent) nesting also works literally.
        let ghost = r.create_space(None);
        let b = r.create_actor(ghost, None).unwrap();
        r.make_visible(b.into(), vec![path("srv/fib")], ghost, None, &mut k)
            .unwrap();
        r.make_visible(
            ghost.into(),
            vec![actorspace_atoms::Path::empty()],
            outer,
            None,
            &mut k,
        )
        .unwrap();
        let mut want = vec![a, b];
        want.sort_unstable();
        assert_eq!(r.resolve(&pattern("srv/fib"), outer).unwrap(), want);
    }

    #[test]
    fn literal_index_tracks_attribute_changes() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("old")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("old"), s).unwrap(), vec![a]);
        r.change_attributes(a.into(), vec![path("new")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("old"), s).unwrap(), vec![]);
        assert_eq!(r.resolve(&pattern("new"), s).unwrap(), vec![a]);
        r.make_invisible(a.into(), s, None).unwrap();
        assert_eq!(r.resolve(&pattern("new"), s).unwrap(), vec![]);
    }

    #[test]
    fn disabling_the_index_gives_identical_results() {
        let policy = ManagerPolicy {
            use_literal_index: false,
            ..Default::default()
        };
        let mut r: Registry<u32> = Registry::new(policy);
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = |_: ActorId, _: u32, _: Option<&crate::delivery::Route>| {};
        r.make_visible(a.into(), vec![path("x/y")], s, None, &mut k)
            .unwrap();
        assert_eq!(r.resolve(&pattern("x/y"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("x/z"), s).unwrap(), vec![]);
    }

    #[test]
    fn tolerated_cycles_resolve_to_finite_sets() {
        // §5.7's alternative strategy: allow the cycle, dedup during
        // resolution. Even a self-visible space yields each actor once.
        use crate::policy::CyclePolicy;
        let policy = ManagerPolicy {
            cycles: CyclePolicy::TolerateWithDedup,
            ..Default::default()
        };
        let mut r: Registry<u32> = Registry::new(policy);
        let s = r.create_space(None);
        let t = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = |_: ActorId, _: u32, _: Option<&crate::delivery::Route>| {};
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        // Mutual visibility — would be rejected under Forbid.
        r.make_visible(s.into(), vec![path("peer")], t, None, &mut k)
            .unwrap();
        r.make_visible(t.into(), vec![path("peer")], s, None, &mut k)
            .unwrap();
        // Self-visibility too.
        r.make_visible(s.into(), vec![path("me")], s, None, &mut k)
            .unwrap();

        // The paper's catastrophe scenario: a broadcast matching through
        // the cycle. Resolution terminates and returns `a` exactly once.
        assert_eq!(r.resolve(&pattern("**/w"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("w"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("peer/w"), t).unwrap(), vec![a]);
        // Deep literal through the self-loop.
        assert_eq!(r.resolve(&pattern("me/me/me/w"), s).unwrap(), vec![a]);

        // Delivery counts once per recipient.
        let mut delivered = 0u32;
        let mut sink = |_: ActorId, _: u32, _: Option<&crate::delivery::Route>| delivered += 1;
        r.broadcast(&pattern("**/w"), s, 1, &mut sink).unwrap();
        assert_eq!(delivered, 1);
    }

    #[test]
    fn match_filter_customizes_matching_rules() {
        use std::sync::Arc;
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("svc/stable")], s, None, &mut k)
            .unwrap();
        r.make_visible(b.into(), vec![path("svc/deprecated")], s, None, &mut k)
            .unwrap();
        // Without a filter, both match the wildcard.
        assert_eq!(r.resolve(&pattern("svc/*"), s).unwrap().len(), 2);
        // A rule hiding `deprecated` attributes from wildcard queries while
        // still answering exact requests — a matching-rule customization no
        // plain pattern can express.
        let filter: crate::space::MatchFilter = Arc::new(|pat, _member, attr| {
            let is_deprecated = attr
                .iter()
                .any(|at| at == actorspace_atoms::atom("deprecated"));
            !is_deprecated || pat.as_literal().is_some()
        });
        r.set_match_filter(s, Some(filter), None).unwrap();
        assert_eq!(r.resolve(&pattern("svc/*"), s).unwrap(), vec![a]);
        assert_eq!(r.resolve(&pattern("svc/deprecated"), s).unwrap(), vec![b]);
        // Clearing restores default matching.
        r.set_match_filter(s, None, None).unwrap();
        assert_eq!(r.resolve(&pattern("svc/*"), s).unwrap().len(), 2);
    }

    #[test]
    fn match_filter_applies_on_the_literal_fast_path() {
        use std::sync::Arc;
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("hidden/one")], s, None, &mut k)
            .unwrap();
        let filter: crate::space::MatchFilter = Arc::new(|_pat, _member, attr| {
            attr.iter().next() != Some(actorspace_atoms::atom("hidden"))
        });
        r.set_match_filter(s, Some(filter), None).unwrap();
        // Literal pattern (index path) must also respect the rule.
        assert!(pattern("hidden/one").as_literal().is_some());
        assert_eq!(r.resolve(&pattern("hidden/one"), s).unwrap(), vec![]);
    }

    #[test]
    fn report_load_steers_least_loaded_selection() {
        use crate::policy::SelectionPolicy;
        let policy = ManagerPolicy {
            selection: SelectionPolicy::LeastLoaded,
            ..Default::default()
        };
        let mut r: Registry<u32> = Registry::new(policy);
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        let mut k = |_: ActorId, _: u32, _: Option<&crate::delivery::Route>| {};
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.make_visible(b.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.report_load(s, a, 100).unwrap();
        r.report_load(s, b, 1).unwrap();
        let mut picks = Vec::new();
        for _ in 0..3 {
            let mut sink = |to: ActorId, _: u32, _: Option<&crate::delivery::Route>| picks.push(to);
            r.send(&pattern("w"), s, 1, &mut sink).unwrap();
        }
        assert!(picks.iter().all(|&p| p == b), "{picks:?}");
        r.report_load(s, b, 1000).unwrap();
        let mut sink2 = |to: ActorId, _: u32, _: Option<&crate::delivery::Route>| picks.push(to);
        r.send(&pattern("w"), s, 1, &mut sink2).unwrap();
        assert_eq!(*picks.last().unwrap(), a);
    }

    #[test]
    fn forbid_policy_still_rejects_cycles() {
        let mut r = reg(); // default Forbid
        let s = r.create_space(None);
        let mut k = sink();
        assert!(matches!(
            r.make_visible(s.into(), vec![path("me")], s, None, &mut k),
            Err(Error::WouldCycle { .. })
        ));
    }

    #[test]
    fn invisible_actor_never_matches() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = sink();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.make_invisible(a.into(), s, None).unwrap();
        assert_eq!(r.resolve(&pattern("**"), s).unwrap(), vec![]);
    }
}
