//! The registry: every actor, every actorSpace, and the visibility relation
//! between them.
//!
//! One [`Registry`] is the authoritative ActorSpace state of a node — the
//! paper's Coordinator "maintains coherence of the state of ActorSpace.
//! This state includes 'live' actors and actorSpaces as well as visibility
//! of actors" (§7.3). The registry is deliberately runtime-agnostic: it is
//! generic over the message payload `M` and performs deliveries through a
//! caller-supplied sink, so the same type backs the single-node runtime,
//! the simulated cluster, and plain in-test use.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use actorspace_atoms::Path;
use actorspace_capability::{Capability, Guard, Rights};
use actorspace_obs::{names, Counter, Histogram, Obs, ObsConfig};

use crate::error::{Error, Result};
use crate::ids::{ActorId, IdGen, MemberId, SpaceId, ROOT_SPACE};
use crate::manager::Manager;
use crate::policy::ManagerPolicy;
use crate::space::Space;
use crate::visibility;

/// Per-actor bookkeeping.
#[derive(Debug, Clone)]
pub struct ActorRecord {
    /// The capability guard protecting this actor's visibility/attributes.
    pub guard: Guard,
    /// The space the actor was created in (§7.1: its "host" space). Used as
    /// the default pattern-resolution scope; does *not* imply visibility.
    pub host: SpaceId,
}

/// A sink receiving `(recipient, message, route)` triples as the registry
/// decides deliveries. The runtime's sink enqueues into mailboxes; tests
/// collect into vectors. The [`Route`](crate::delivery::Route) is present
/// for pattern-resolved deliveries and lets distribution layers re-resolve
/// a message whose recipient has since become unreachable.
pub type Sink<'a, M> = &'a mut dyn FnMut(ActorId, M, Option<&crate::delivery::Route>);

/// Observability snapshot of one actorSpace (see [`Registry::space_info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceInfo {
    /// The space.
    pub id: SpaceId,
    /// Visible actor members.
    pub actor_members: usize,
    /// Visible sub-space members.
    pub space_members: usize,
    /// Suspended messages waiting for a match (§5.6).
    pub pending_messages: usize,
    /// Registered persistent broadcasts (§5.6).
    pub persistent_broadcasts: usize,
    /// True when a capability guards the space.
    pub guarded: bool,
}

/// Pre-resolved metric handles for the delivery hot paths, so sends touch
/// only relaxed atomics, never the registry mutex inside `Obs`.
pub(crate) struct CoreMetrics {
    pub sends: Arc<Counter>,
    pub broadcasts: Arc<Counter>,
    pub matched: Arc<Counter>,
    pub suspended: Arc<Counter>,
    pub woken: Arc<Counter>,
    pub discarded: Arc<Counter>,
    pub match_ns: Arc<Histogram>,
    pub dwell_ns: Arc<Histogram>,
}

impl CoreMetrics {
    pub(crate) fn resolve(obs: &Obs, node: u16) -> CoreMetrics {
        CoreMetrics {
            sends: obs.metrics.counter(names::CORE_SENDS, node),
            broadcasts: obs.metrics.counter(names::CORE_BROADCASTS, node),
            matched: obs.metrics.counter(names::CORE_MATCHED, node),
            suspended: obs.metrics.counter(names::CORE_SUSPENDED, node),
            woken: obs.metrics.counter(names::CORE_WOKEN, node),
            discarded: obs.metrics.counter(names::CORE_DISCARDED, node),
            match_ns: obs.metrics.histogram(names::CORE_MATCH_NS, node),
            dwell_ns: obs.metrics.histogram(names::CORE_DWELL_NS, node),
        }
    }
}

/// The ActorSpace universe for one node.
pub struct Registry<M> {
    ids: IdGen,
    spaces: HashMap<SpaceId, Space<M>>,
    actors: HashMap<ActorId, ActorRecord>,
    /// Reverse visibility: member → spaces it is visible in. Kept in exact
    /// correspondence with each space's membership table.
    containers: HashMap<MemberId, HashSet<SpaceId>>,
    /// Actors with live external handles — garbage-collection roots.
    roots: HashSet<ActorId>,
    /// Policy template applied to newly created spaces.
    default_policy: ManagerPolicy,
    /// The observer receiving this registry's metrics and trace events.
    /// Private by default; [`Registry::set_obs`] shares one across layers
    /// (and, in the cluster, across node incarnations).
    pub(crate) obs: Arc<Obs>,
    /// Node label stamped on metrics and trace events (0 standalone).
    pub(crate) node: u16,
    pub(crate) m: CoreMetrics,
}

impl<M: Clone> Registry<M> {
    /// Creates a registry whose root space (§7.1) uses `default_policy`,
    /// reporting to a private default observer (see [`Registry::set_obs`]).
    pub fn new(default_policy: ManagerPolicy) -> Registry<M> {
        let mut spaces = HashMap::new();
        spaces.insert(
            ROOT_SPACE,
            Space::new(ROOT_SPACE, Guard::Open, default_policy.clone()),
        );
        let obs = Obs::shared(ObsConfig::default());
        let m = CoreMetrics::resolve(&obs, 0);
        Registry {
            ids: IdGen::default(),
            spaces,
            actors: HashMap::new(),
            containers: HashMap::new(),
            roots: HashSet::new(),
            default_policy,
            obs,
            node: 0,
            m,
        }
    }

    /// Redirects this registry's metrics and trace events to `obs`, stamped
    /// with `node` — how the runtime and cluster layers share one observer
    /// across the whole stack (and across node restarts).
    pub fn set_obs(&mut self, obs: Arc<Obs>, node: u16) {
        self.m = CoreMetrics::resolve(&obs, node);
        self.obs = obs;
        self.node = node;
    }

    /// The observer receiving this registry's telemetry.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The node label stamped on this registry's telemetry.
    pub fn node_label(&self) -> u16 {
        self.node
    }

    /// Creates a registry whose id generator starts at `base` — used by the
    /// cluster layer to give each node a disjoint address range.
    pub fn with_id_base(default_policy: ManagerPolicy, base: u64) -> Registry<M> {
        let mut r = Registry::new(default_policy);
        r.ids = IdGen::new(base.max(1));
        r
    }

    // ------------------------------------------------------------------
    // Creation and destruction
    // ------------------------------------------------------------------

    /// `create_actorSpace(capability)` (§5.2): returns a fresh actorSpace
    /// mail address. The capability, if given, guards later visibility
    /// operations *on this space as a member* and manage operations on it.
    pub fn create_space(&mut self, cap: Option<&Capability>) -> SpaceId {
        let id = self.ids.next_space();
        let space = Space::new(id, Guard::from_creation(cap), self.default_policy.clone());
        self.spaces.insert(id, space);
        id
    }

    /// Registers a new actor created in `host` (§7.1: "actors are actually
    /// created inside an actorSpace (their host space), although they are
    /// not visible in this actorSpace unless explicitly made so").
    pub fn create_actor(&mut self, host: SpaceId, cap: Option<&Capability>) -> Result<ActorId> {
        if !self.spaces.contains_key(&host) {
            return Err(Error::NoSuchSpace(host));
        }
        let id = self.ids.next_actor();
        self.actors.insert(
            id,
            ActorRecord {
                guard: Guard::from_creation(cap),
                host,
            },
        );
        Ok(id)
    }

    /// Allocates a fresh actor id without creating a record — cluster
    /// nodes allocate first, then replicate the creation via the ordered
    /// bus (§7.3).
    pub fn allocate_actor_id(&mut self) -> ActorId {
        self.ids.next_actor()
    }

    /// Allocates a fresh space id without creating a record.
    pub fn allocate_space_id(&mut self) -> SpaceId {
        self.ids.next_space()
    }

    /// Inserts an actor record with a caller-chosen id — used by cluster
    /// nodes applying a remotely-originated create event to their replica
    /// of the ActorSpace state (§7.3). Returns false if the id was already
    /// present (duplicate bus delivery).
    pub fn insert_actor_record(&mut self, id: ActorId, host: SpaceId, guard: Guard) -> bool {
        if self.actors.contains_key(&id) {
            return false;
        }
        self.actors.insert(id, ActorRecord { guard, host });
        true
    }

    /// Inserts a space record with a caller-chosen id — the replica-side
    /// counterpart of [`Registry::create_space`]. Returns false if present.
    pub fn insert_space_record(&mut self, id: SpaceId, guard: Guard) -> bool {
        if self.spaces.contains_key(&id) {
            return false;
        }
        self.spaces
            .insert(id, Space::new(id, guard, self.default_policy.clone()));
        true
    }

    /// Removes an actor (death / remote destroy event).
    pub fn remove_actor(&mut self, id: ActorId) {
        self.remove_actor_internal(id);
    }

    /// Removes every actor whose raw id lies in `[lo, hi)` — records,
    /// visibility memberships, and roots. This is the failover sweep for a
    /// crashed node: its id range is purged from every replica so pattern
    /// resolution falls back to surviving matches and suspended messages
    /// stop waiting on the dead. Returns how many actors were purged.
    pub fn purge_actor_range(&mut self, lo: u64, hi: u64) -> usize {
        let doomed: Vec<ActorId> = self
            .actors
            .keys()
            .filter(|a| (lo..hi).contains(&a.0))
            .copied()
            .collect();
        for &a in &doomed {
            self.remove_actor_internal(a);
        }
        doomed.len()
    }

    /// Raises the id allocator so future ids are minted past `raw`. Applied
    /// when replaying remotely-ordered creation events into a freshly
    /// restarted node, whose allocator would otherwise re-mint ids its
    /// previous incarnation already used.
    pub fn ensure_id_floor(&mut self, raw: u64) {
        self.ids.ensure_floor(raw);
    }

    /// Destroys a space (§7.1 provides explicit destruction because the
    /// globally visible root makes automatic collection of reachable spaces
    /// infeasible). Requires `Rights::MANAGE` if the space is guarded. The
    /// space's members survive; they are simply no longer visible through
    /// it. Pending and persistent messages addressed to the space are
    /// dropped.
    pub fn destroy_space(&mut self, id: SpaceId, cap: Option<&Capability>) -> Result<()> {
        if id == ROOT_SPACE {
            return Err(Error::RootImmortal);
        }
        let space = self.spaces.get(&id).ok_or(Error::NoSuchSpace(id))?;
        space.guard().check(cap, Rights::MANAGE)?;
        self.remove_space_internal(id);
        Ok(())
    }

    pub(crate) fn remove_space_internal(&mut self, id: SpaceId) {
        if let Some(space) = self.spaces.remove(&id) {
            // Drop reverse edges of its members.
            for member in space.members().keys() {
                if let Some(set) = self.containers.get_mut(member) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.containers.remove(member);
                    }
                }
            }
        }
        // Remove the space from any space it was visible in.
        let as_member = MemberId::Space(id);
        if let Some(parents) = self.containers.remove(&as_member) {
            for p in parents {
                if let Some(ps) = self.spaces.get_mut(&p) {
                    ps.remove_member(as_member);
                }
            }
        }
        // Actors hosted in the destroyed space are re-hosted to the root so
        // later sends from them still have a resolution scope.
        for rec in self.actors.values_mut() {
            if rec.host == id {
                rec.host = ROOT_SPACE;
            }
        }
    }

    /// Removes an actor entirely (death). Its memberships disappear.
    pub(crate) fn remove_actor_internal(&mut self, id: ActorId) {
        self.actors.remove(&id);
        let as_member = MemberId::Actor(id);
        if let Some(parents) = self.containers.remove(&as_member) {
            for p in parents {
                if let Some(ps) = self.spaces.get_mut(&p) {
                    ps.remove_member(as_member);
                }
            }
        }
        self.roots.remove(&id);
    }

    // ------------------------------------------------------------------
    // Visibility (§5.4)
    // ------------------------------------------------------------------

    /// `make_visible(a, attributes @ space, capability)`: subjects `member`
    /// to pattern matching inside `space`, registering `attrs` as its
    /// attributes there. Returns the deliveries triggered by waking
    /// suspended and persistent messages through `sink`.
    ///
    /// Fails if the member's guard rejects the capability, if the space's
    /// manager vetoes the request, or — for space members — if visibility
    /// would create a cycle (§5.7).
    pub fn make_visible(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
        sink: Sink<'_, M>,
    ) -> Result<()> {
        self.member_guard(member)?.check(cap, Rights::VISIBILITY)?;
        if !self.spaces.contains_key(&space) {
            return Err(Error::NoSuchSpace(space));
        }
        // §5.7: reject cycles in the visibility DAG *before* inserting —
        // unless the space's manager tolerates cycles (the tagging
        // alternative; resolution then dedups visited states).
        if let MemberId::Space(child) = member {
            let forbid = self
                .spaces
                .get(&space)
                .is_some_and(|sp| sp.policy().cycles == crate::policy::CyclePolicy::Forbid);
            if forbid && visibility::would_cycle(&self.spaces, child, space) {
                return Err(Error::WouldCycle {
                    child,
                    parent: space,
                });
            }
        }
        let sp = self.spaces.get_mut(&space).expect("checked above");
        if !sp.manager_mut().authorize_visibility(member, &attrs) {
            return Err(Error::Denied(actorspace_capability::GuardError::Missing));
        }
        sp.add_member(member, attrs);
        sp.manager_mut().on_change(member);
        self.containers.entry(member).or_default().insert(space);
        self.wake_after_change(space, sink);
        Ok(())
    }

    /// `make_invisible(actor, space, capability)`: removes the member from
    /// the space "and thus any other enclosing actorSpace" — enclosing
    /// spaces reach members only *through* this space, so removal here is
    /// sufficient.
    pub fn make_invisible(
        &mut self,
        member: MemberId,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.member_guard(member)?.check(cap, Rights::VISIBILITY)?;
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        if !sp.remove_member(member) {
            return Err(Error::NotVisible { member, space });
        }
        sp.manager_mut().on_change(member);
        if let Some(set) = self.containers.get_mut(&member) {
            set.remove(&space);
            if set.is_empty() {
                self.containers.remove(&member);
            }
        }
        Ok(())
    }

    /// `change_attributes(member, attrs @ space, capability)` (§5.4): the
    /// member's attributes, as viewed by `space`, are replaced. May wake
    /// suspended messages whose patterns now match.
    pub fn change_attributes(
        &mut self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
        sink: Sink<'_, M>,
    ) -> Result<()> {
        self.member_guard(member)?.check(cap, Rights::ATTRIBUTES)?;
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        if !sp.manager_mut().authorize_visibility(member, &attrs) {
            return Err(Error::Denied(actorspace_capability::GuardError::Missing));
        }
        if !sp.set_attributes(member, attrs) {
            return Err(Error::NotVisible { member, space });
        }
        sp.manager_mut().on_change(member);
        self.wake_after_change(space, sink);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Manager customization (§8)
    // ------------------------------------------------------------------

    /// Replaces a space's policy table. Requires `Rights::MANAGE`.
    pub fn set_space_policy(
        &mut self,
        space: SpaceId,
        policy: ManagerPolicy,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        sp.guard().check(cap, Rights::MANAGE)?;
        sp.set_policy(policy);
        Ok(())
    }

    /// Installs a custom manager on a space. Requires `Rights::MANAGE`.
    pub fn set_space_manager(
        &mut self,
        space: SpaceId,
        manager: Box<dyn Manager>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        sp.guard().check(cap, Rights::MANAGE)?;
        sp.set_manager(manager);
        Ok(())
    }

    /// Installs (or clears) a custom matching rule on a space — the §5
    /// "customization of matching rules" managers inherit from first-class
    /// tuple spaces. Requires `Rights::MANAGE`.
    pub fn set_match_filter(
        &mut self,
        space: SpaceId,
        filter: Option<crate::space::MatchFilter>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        sp.guard().check(cap, Rights::MANAGE)?;
        sp.set_match_filter(filter);
        Ok(())
    }

    /// Reports an actor's load for
    /// [`SelectionPolicy::LeastLoaded`](crate::policy::SelectionPolicy::LeastLoaded)
    /// arbitration in `space`. Actors self-report; no capability needed.
    pub fn report_load(&mut self, space: SpaceId, actor: ActorId, load: u64) -> Result<()> {
        let sp = self
            .spaces
            .get_mut(&space)
            .ok_or(Error::NoSuchSpace(space))?;
        sp.selector_mut().set_load(actor, load);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Roots (external handles) — GC anchoring
    // ------------------------------------------------------------------

    /// Marks an actor as externally referenced (a live handle exists).
    pub fn add_root(&mut self, a: ActorId) {
        self.roots.insert(a);
    }

    /// Clears the external-reference mark.
    pub fn remove_root(&mut self, a: ActorId) {
        self.roots.remove(&a);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Does this space exist?
    pub fn space_exists(&self, id: SpaceId) -> bool {
        self.spaces.contains_key(&id)
    }

    /// Does this actor exist?
    pub fn actor_exists(&self, id: ActorId) -> bool {
        self.actors.contains_key(&id)
    }

    /// The actor's record.
    pub fn actor(&self, id: ActorId) -> Result<&ActorRecord> {
        self.actors.get(&id).ok_or(Error::NoSuchActor(id))
    }

    /// The space, for inspection.
    pub fn space(&self, id: SpaceId) -> Result<&Space<M>> {
        self.spaces.get(&id).ok_or(Error::NoSuchSpace(id))
    }

    /// The space, mutably (used by the delivery engine and tests).
    pub fn space_mut(&mut self, id: SpaceId) -> Result<&mut Space<M>> {
        self.spaces.get_mut(&id).ok_or(Error::NoSuchSpace(id))
    }

    /// All spaces a member is directly visible in.
    pub fn containers_of(&self, member: MemberId) -> impl Iterator<Item = SpaceId> + '_ {
        self.containers.get(&member).into_iter().flatten().copied()
    }

    /// Number of live actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of live spaces (including the root).
    pub fn space_count(&self) -> usize {
        self.spaces.len()
    }

    /// Iterates over live actor ids.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> + '_ {
        self.actors.keys().copied()
    }

    /// Iterates over live space ids.
    pub fn space_ids(&self) -> impl Iterator<Item = SpaceId> + '_ {
        self.spaces.keys().copied()
    }

    /// An observability snapshot of one space.
    pub fn space_info(&self, id: SpaceId) -> Result<SpaceInfo> {
        let sp = self.spaces.get(&id).ok_or(Error::NoSuchSpace(id))?;
        let mut actor_members = 0usize;
        let mut space_members = 0usize;
        for m in sp.members().keys() {
            match m {
                MemberId::Actor(_) => actor_members += 1,
                MemberId::Space(_) => space_members += 1,
            }
        }
        Ok(SpaceInfo {
            id,
            actor_members,
            space_members,
            pending_messages: sp.pending().len(),
            persistent_broadcasts: sp.persistent().len(),
            guarded: !sp.guard().is_open(),
        })
    }

    pub(crate) fn roots(&self) -> &HashSet<ActorId> {
        &self.roots
    }

    pub(crate) fn spaces_map(&self) -> &HashMap<SpaceId, Space<M>> {
        &self.spaces
    }

    pub(crate) fn containers(&self) -> &HashMap<MemberId, HashSet<SpaceId>> {
        &self.containers
    }

    pub(crate) fn member_guard(&self, member: MemberId) -> Result<&Guard> {
        match member {
            MemberId::Actor(a) => Ok(&self.actors.get(&a).ok_or(Error::NoSuchActor(a))?.guard),
            MemberId::Space(s) => Ok(self.spaces.get(&s).ok_or(Error::NoSuchSpace(s))?.guard()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::path;
    use actorspace_capability::CapMinter;

    fn reg() -> Registry<u32> {
        Registry::new(ManagerPolicy::default())
    }

    /// A sink that drops deliveries (these tests target structure only).
    fn null_sink() -> impl FnMut(ActorId, u32, Option<&crate::delivery::Route>) {
        |_, _, _| {}
    }

    #[test]
    fn root_space_exists_at_birth() {
        let r = reg();
        assert!(r.space_exists(ROOT_SPACE));
        assert_eq!(r.space_count(), 1);
    }

    #[test]
    fn create_space_and_actor() {
        let mut r = reg();
        let s = r.create_space(None);
        assert!(r.space_exists(s));
        let a = r.create_actor(s, None).unwrap();
        assert!(r.actor_exists(a));
        assert_eq!(r.actor(a).unwrap().host, s);
    }

    #[test]
    fn create_actor_in_missing_space_fails() {
        let mut r = reg();
        let err = r.create_actor(SpaceId(999), None).unwrap_err();
        assert_eq!(err, Error::NoSuchSpace(SpaceId(999)));
    }

    #[test]
    fn make_visible_then_invisible() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let m = MemberId::Actor(a);
        let mut sink = null_sink();
        r.make_visible(m, vec![path("w")], s, None, &mut sink)
            .unwrap();
        assert!(r.space(s).unwrap().contains(m));
        assert_eq!(r.containers_of(m).collect::<Vec<_>>(), vec![s]);
        r.make_invisible(m, s, None).unwrap();
        assert!(!r.space(s).unwrap().contains(m));
        assert_eq!(r.containers_of(m).count(), 0);
    }

    #[test]
    fn make_invisible_when_not_visible_errors() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let err = r.make_invisible(MemberId::Actor(a), s, None).unwrap_err();
        assert!(matches!(err, Error::NotVisible { .. }));
    }

    #[test]
    fn actors_are_not_visible_by_default() {
        // §5.4: "When an actor or an actorSpace is created, it is not
        // automatically placed in an actorSpace."
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        assert!(!r.space(s).unwrap().contains(MemberId::Actor(a)));
        assert!(!r.space(ROOT_SPACE).unwrap().contains(MemberId::Actor(a)));
    }

    #[test]
    fn capability_guards_visibility() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let wrong = mint.new_capability();
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, Some(&cap)).unwrap();
        let m = MemberId::Actor(a);
        let mut sink = null_sink();
        // No capability → denied.
        assert!(matches!(
            r.make_visible(m, vec![path("w")], s, None, &mut sink),
            Err(Error::Denied(_))
        ));
        // Wrong capability → denied.
        assert!(matches!(
            r.make_visible(m, vec![path("w")], s, Some(&wrong), &mut sink),
            Err(Error::Denied(_))
        ));
        // Right capability → ok.
        r.make_visible(m, vec![path("w")], s, Some(&cap), &mut sink)
            .unwrap();
        // Restricted capability lacking VISIBILITY → denied for invisibility.
        let weak = cap.restrict(Rights::ATTRIBUTES);
        assert!(matches!(
            r.make_invisible(m, s, Some(&weak)),
            Err(Error::Denied(_))
        ));
        r.make_invisible(m, s, Some(&cap)).unwrap();
    }

    #[test]
    fn change_attributes_requires_visibility_and_right() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, Some(&cap)).unwrap();
        let m = MemberId::Actor(a);
        let mut sink = null_sink();
        // Not visible yet.
        assert!(matches!(
            r.change_attributes(m, vec![path("x")], s, Some(&cap), &mut sink),
            Err(Error::NotVisible { .. })
        ));
        r.make_visible(m, vec![path("w")], s, Some(&cap), &mut sink)
            .unwrap();
        r.change_attributes(m, vec![path("x")], s, Some(&cap), &mut sink)
            .unwrap();
        assert_eq!(r.space(s).unwrap().members()[&m], vec![path("x")]);
        // VISIBILITY-only capability cannot change attributes.
        let weak = cap.restrict(Rights::VISIBILITY);
        assert!(matches!(
            r.change_attributes(m, vec![path("y")], s, Some(&weak), &mut sink),
            Err(Error::Denied(_))
        ));
    }

    #[test]
    fn self_visibility_is_rejected() {
        // §5.7: "we do not allow an actorSpace to be made visible in itself".
        let mut r = reg();
        let s = r.create_space(None);
        let mut sink = null_sink();
        let err = r
            .make_visible(MemberId::Space(s), vec![path("me")], s, None, &mut sink)
            .unwrap_err();
        assert_eq!(
            err,
            Error::WouldCycle {
                child: s,
                parent: s
            }
        );
    }

    #[test]
    fn indirect_cycles_are_rejected() {
        // a visible in b, b visible in c ⇒ c cannot become visible in a.
        let mut r = reg();
        let a = r.create_space(None);
        let b = r.create_space(None);
        let c = r.create_space(None);
        let mut sink = null_sink();
        r.make_visible(MemberId::Space(a), vec![path("a")], b, None, &mut sink)
            .unwrap();
        r.make_visible(MemberId::Space(b), vec![path("b")], c, None, &mut sink)
            .unwrap();
        let err = r
            .make_visible(MemberId::Space(c), vec![path("c")], a, None, &mut sink)
            .unwrap_err();
        assert_eq!(
            err,
            Error::WouldCycle {
                child: c,
                parent: a
            }
        );
        // The non-cyclic direction still works: a may also be visible in c.
        r.make_visible(MemberId::Space(a), vec![path("a2")], c, None, &mut sink)
            .unwrap();
    }

    #[test]
    fn overlap_is_allowed() {
        // §3: "actorSpaces may overlap arbitrarily" — one actor in many
        // spaces, with different attributes in each.
        let mut r = reg();
        let s1 = r.create_space(None);
        let s2 = r.create_space(None);
        let a = r.create_actor(s1, None).unwrap();
        let m = MemberId::Actor(a);
        let mut sink = null_sink();
        r.make_visible(m, vec![path("red")], s1, None, &mut sink)
            .unwrap();
        r.make_visible(m, vec![path("blue")], s2, None, &mut sink)
            .unwrap();
        assert_eq!(r.space(s1).unwrap().members()[&m], vec![path("red")]);
        assert_eq!(r.space(s2).unwrap().members()[&m], vec![path("blue")]);
        let mut parents: Vec<SpaceId> = r.containers_of(m).collect();
        parents.sort_unstable();
        let mut want = vec![s1, s2];
        want.sort_unstable();
        assert_eq!(parents, want);
    }

    #[test]
    fn destroy_space_spares_members() {
        // §5.5: "when an actorSpace is garbage collected, the actors
        // contained in that actorSpace themselves are not deleted."
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let m = MemberId::Actor(a);
        let mut sink = null_sink();
        r.make_visible(m, vec![path("w")], s, None, &mut sink)
            .unwrap();
        r.destroy_space(s, None).unwrap();
        assert!(!r.space_exists(s));
        assert!(r.actor_exists(a));
        assert_eq!(r.containers_of(m).count(), 0);
        // The orphaned actor is re-hosted to the root.
        assert_eq!(r.actor(a).unwrap().host, ROOT_SPACE);
    }

    #[test]
    fn destroy_space_detaches_from_parents() {
        let mut r = reg();
        let parent = r.create_space(None);
        let child = r.create_space(None);
        let mut sink = null_sink();
        r.make_visible(
            MemberId::Space(child),
            vec![path("c")],
            parent,
            None,
            &mut sink,
        )
        .unwrap();
        r.destroy_space(child, None).unwrap();
        assert!(!r.space(parent).unwrap().contains(MemberId::Space(child)));
    }

    #[test]
    fn destroy_root_fails() {
        let mut r = reg();
        assert_eq!(
            r.destroy_space(ROOT_SPACE, None).unwrap_err(),
            Error::RootImmortal
        );
    }

    #[test]
    fn destroy_guarded_space_needs_manage_right() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let mut r = reg();
        let s = r.create_space(Some(&cap));
        assert!(matches!(r.destroy_space(s, None), Err(Error::Denied(_))));
        let weak = cap.restrict(Rights::VISIBILITY);
        assert!(matches!(
            r.destroy_space(s, Some(&weak)),
            Err(Error::Denied(_))
        ));
        r.destroy_space(s, Some(&cap)).unwrap();
    }

    #[test]
    fn space_info_snapshots_membership_and_queues() {
        use actorspace_pattern::pattern;
        let mut r = reg();
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let s = r.create_space(Some(&cap));
        let sub = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = null_sink();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.make_visible(sub.into(), vec![path("sub")], s, None, &mut k)
            .unwrap();
        // One suspended message.
        r.send(&pattern("ghost"), s, 1, &mut k).unwrap();
        let info = r.space_info(s).unwrap();
        assert_eq!(info.actor_members, 1);
        assert_eq!(info.space_members, 1);
        assert_eq!(info.pending_messages, 1);
        assert_eq!(info.persistent_broadcasts, 0);
        assert!(info.guarded);
        let sub_info = r.space_info(sub).unwrap();
        assert!(!sub_info.guarded);
        assert_eq!(sub_info.actor_members, 0);
        assert!(r.space_info(SpaceId(404)).is_err());
    }

    #[test]
    fn manager_can_veto_visibility() {
        use crate::manager::Manager;
        struct Veto;
        impl Manager for Veto {
            fn authorize_visibility(&mut self, _m: MemberId, attrs: &[Path]) -> bool {
                !attrs.iter().any(|p| p.to_string().starts_with("secret"))
            }
        }
        let mut r = reg();
        let s = r.create_space(None);
        r.set_space_manager(s, Box::new(Veto), None).unwrap();
        let a = r.create_actor(s, None).unwrap();
        let mut sink = null_sink();
        assert!(r
            .make_visible(
                MemberId::Actor(a),
                vec![path("secret/x")],
                s,
                None,
                &mut sink
            )
            .is_err());
        r.make_visible(MemberId::Actor(a), vec![path("open/x")], s, None, &mut sink)
            .unwrap();
    }
}
