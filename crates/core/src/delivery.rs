//! The communication primitives: `send` and `broadcast` (§5.3), plus the
//! suspended-message machinery of §5.6.
//!
//! * `send(pattern@space, msg)` — "a single target actor is
//!   non-deterministically chosen out of the group of potential receivers",
//!   giving automatic load balancing over replicated services.
//! * `broadcast(pattern@space, msg)` — "all of the actors whose attributes
//!   match the pattern receive the message."
//!
//! When a pattern matches nothing, the space's manager policy decides:
//! suspend until a matching actor appears (the paper's default), discard,
//! error, or — for broadcasts — persist with exactly-once delivery to every
//! future matching actor.
//!
//! Deliveries are emitted through a caller-supplied [`Sink`]; the registry
//! itself never touches mailboxes, which keeps ordering concerns
//! (deliberately unspecified for broadcasts, §5.3) in the runtime layer.

use actorspace_obs::{Stage, TraceId};
use actorspace_pattern::Pattern;

use crate::error::{Error, Result};
use crate::ids::{ActorId, SpaceId};
use crate::policy::UnmatchedPolicy;
use crate::registry::{Registry, Sink};
use crate::space::{DeliveryKind, Pending, PersistentBroadcast};
use crate::visibility;

/// What became of a send/broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Delivered immediately to this many recipients (1 for `send`).
    Delivered(usize),
    /// No match; suspended until a matching actor appears (§5.6).
    Suspended,
    /// No match; dropped per policy.
    Discarded,
    /// Registered as a persistent broadcast; delivered immediately to this
    /// many current matches, and exactly once to each future match.
    Persistent(usize),
}

impl Disposition {
    /// Recipients reached immediately.
    pub fn delivered_now(&self) -> usize {
        match self {
            Disposition::Delivered(n) | Disposition::Persistent(n) => *n,
            _ => 0,
        }
    }
}

/// The pattern resolution that produced a delivery.
///
/// Every sink invocation that came from a `send`/`broadcast` (rather than a
/// point-to-point delivery) carries the originating pattern and space. A
/// distribution layer can use it to *re-resolve* the message when the chosen
/// recipient turns out to be unreachable — the failover path for node
/// crashes: pattern-addressed messages are retargetable by construction,
/// exactly because §5.3 never promised a particular recipient.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The destination pattern of the originating communication.
    pub pattern: Pattern,
    /// The space the pattern was resolved against.
    pub space: SpaceId,
    /// Send (re-resolvable to one new recipient) or broadcast (not
    /// re-resolvable: the surviving matches already have their copies).
    pub kind: DeliveryKind,
    /// Lifecycle trace of the originating communication
    /// ([`TraceId::NONE`] when unsampled). Rides with the message through
    /// routing, suspension, and failover so every later stage lands in the
    /// same trace.
    pub trace: TraceId,
}

impl<M: Clone> Registry<M> {
    /// `send(pattern@space, message)` — deliver to one non-deterministically
    /// chosen matching actor (§5.3).
    pub fn send(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
    ) -> Result<Disposition> {
        let trace = self.obs.tracer.begin();
        self.m.sends.inc();
        self.obs
            .tracer
            .record(trace, self.node, Stage::Submitted { broadcast: false });
        self.send_with_trace(pattern, space, msg, sink, trace)
    }

    /// The body of `send`, with the trace already allocated — shared with
    /// the failover path ([`Registry::resend`]), which must *continue* an
    /// existing trace rather than mint a new one.
    fn send_with_trace(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
        trace: TraceId,
    ) -> Result<Disposition> {
        // Match latency is sampled with the trace: the extra clock reads
        // stay off the unsampled hot path.
        let t0 = if trace.is_some() {
            self.obs.now_nanos()
        } else {
            0
        };
        let candidates = self.resolve(pattern, space)?;
        if !candidates.is_empty() {
            self.m.matched.inc();
            if trace.is_some() {
                self.m
                    .match_ns
                    .record(self.obs.now_nanos().saturating_sub(t0));
                self.obs.tracer.record(
                    trace,
                    self.node,
                    Stage::Matched {
                        candidates: candidates.len() as u32,
                    },
                );
            }
            let pick = self.pick(space, &candidates)?;
            let route = Route {
                pattern: pattern.clone(),
                space,
                kind: DeliveryKind::Send,
                trace,
            };
            sink(pick, msg, Some(&route));
            return Ok(Disposition::Delivered(1));
        }
        let policy = {
            let sp = self.space_mut(space)?;
            sp.manager_mut()
                .unmatched_send()
                .unwrap_or(sp.policy().unmatched_send)
        };
        match policy {
            // Persistent degenerates to Suspend for point-to-point sends:
            // the message still goes to exactly one recipient, just later.
            UnmatchedPolicy::Suspend | UnmatchedPolicy::Persistent => {
                self.m.suspended.inc();
                self.obs.tracer.record(trace, self.node, Stage::Suspended);
                let since_nanos = self.obs.now_nanos();
                self.space_mut(space)?.push_pending(Pending {
                    pattern: pattern.clone(),
                    msg,
                    kind: DeliveryKind::Send,
                    trace,
                    since_nanos,
                });
                Ok(Disposition::Suspended)
            }
            UnmatchedPolicy::Discard => {
                self.m.discarded.inc();
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Ok(Disposition::Discarded)
            }
            UnmatchedPolicy::Error => {
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Err(Error::NoMatch {
                    pattern: pattern.text().to_owned(),
                    space,
                })
            }
        }
    }

    /// `broadcast(pattern@space, message)` — deliver to all matching actors
    /// (§5.3). Under [`UnmatchedPolicy::Persistent`], also guarantee
    /// exactly-once delivery to every *future* matching actor (§5.6).
    pub fn broadcast(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
    ) -> Result<Disposition> {
        let trace = self.obs.tracer.begin();
        self.m.broadcasts.inc();
        self.obs
            .tracer
            .record(trace, self.node, Stage::Submitted { broadcast: true });
        self.broadcast_with_trace(pattern, space, msg, sink, trace)
    }

    fn broadcast_with_trace(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
        trace: TraceId,
    ) -> Result<Disposition> {
        let t0 = if trace.is_some() {
            self.obs.now_nanos()
        } else {
            0
        };
        let candidates = self.resolve(pattern, space)?;
        let policy = {
            let sp = self.space_mut(space)?;
            sp.manager_mut()
                .unmatched_broadcast()
                .unwrap_or(sp.policy().unmatched_broadcast)
        };
        if !candidates.is_empty() {
            self.m.matched.add(candidates.len() as u64);
            if trace.is_some() {
                self.m
                    .match_ns
                    .record(self.obs.now_nanos().saturating_sub(t0));
                self.obs.tracer.record(
                    trace,
                    self.node,
                    Stage::Matched {
                        candidates: candidates.len() as u32,
                    },
                );
            }
        }
        let route = Route {
            pattern: pattern.clone(),
            space,
            kind: DeliveryKind::Broadcast,
            trace,
        };
        if policy == UnmatchedPolicy::Persistent {
            for &c in &candidates {
                sink(c, msg.clone(), Some(&route));
            }
            let n = candidates.len();
            self.space_mut(space)?.push_persistent(PersistentBroadcast {
                pattern: pattern.clone(),
                msg,
                delivered: candidates.into_iter().collect(),
            });
            return Ok(Disposition::Persistent(n));
        }
        if !candidates.is_empty() {
            let n = candidates.len();
            for c in candidates {
                sink(c, msg.clone(), Some(&route));
            }
            return Ok(Disposition::Delivered(n));
        }
        match policy {
            UnmatchedPolicy::Suspend => {
                self.m.suspended.inc();
                self.obs.tracer.record(trace, self.node, Stage::Suspended);
                let since_nanos = self.obs.now_nanos();
                self.space_mut(space)?.push_pending(Pending {
                    pattern: pattern.clone(),
                    msg,
                    kind: DeliveryKind::Broadcast,
                    trace,
                    since_nanos,
                });
                Ok(Disposition::Suspended)
            }
            UnmatchedPolicy::Discard => {
                self.m.discarded.inc();
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Ok(Disposition::Discarded)
            }
            UnmatchedPolicy::Error => {
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Err(Error::NoMatch {
                    pattern: pattern.text().to_owned(),
                    space,
                })
            }
            UnmatchedPolicy::Persistent => unreachable!("handled above"),
        }
    }

    /// Re-resolves a previously routed message against the current registry
    /// state — the failover path after its original recipient (or the node
    /// holding it) died. Semantics match a fresh `send`/`broadcast` under
    /// the space's unmatched policy, but the message's existing lifecycle
    /// trace is *continued*: no new trace is begun and no `submitted` stage
    /// is emitted, so the export shows one unbroken
    /// `submitted → … → failed_over → … → delivered` history.
    pub fn resend(&mut self, route: &Route, msg: M, sink: Sink<'_, M>) -> Result<Disposition> {
        match route.kind {
            DeliveryKind::Send => {
                self.send_with_trace(&route.pattern, route.space, msg, sink, route.trace)
            }
            DeliveryKind::Broadcast => {
                self.broadcast_with_trace(&route.pattern, route.space, msg, sink, route.trace)
            }
        }
    }

    /// Cancels every persistent broadcast registered on `space`, returning
    /// how many were dropped. Requires `Rights::MANAGE` when guarded.
    pub fn cancel_persistent(
        &mut self,
        space: SpaceId,
        cap: Option<&actorspace_capability::Capability>,
    ) -> Result<usize> {
        let sp = self.space_mut(space)?;
        sp.guard()
            .check(cap, actorspace_capability::Rights::MANAGE)?;
        Ok(sp.clear_persistent())
    }

    /// One arbitration step: the custom manager first, then the policy
    /// selector (§8).
    fn pick(&mut self, space: SpaceId, candidates: &[ActorId]) -> Result<ActorId> {
        let sp = self.space_mut(space)?;
        if let Some(choice) = sp.manager_mut().choose(candidates) {
            return Ok(choice);
        }
        Ok(sp.selector_mut().select(candidates))
    }

    /// Retries suspended and persistent messages after a visibility or
    /// attribute change in `changed`. A change is observable from `changed`
    /// itself and from every space that can reach it through the visibility
    /// DAG, so all of those queues are swept.
    pub(crate) fn wake_after_change(&mut self, changed: SpaceId, sink: Sink<'_, M>) {
        let affected = visibility::ancestors(self.containers(), changed);
        for s in affected {
            self.retry_space(s, sink);
        }
    }

    fn retry_space(&mut self, space: SpaceId, sink: Sink<'_, M>) {
        // --- Suspended messages (§5.6) ---
        let pending = match self.space_mut(space) {
            Ok(sp) if !sp.pending().is_empty() => sp.take_pending(),
            _ => Vec::new(),
        };
        let mut still_waiting = Vec::new();
        for p in pending {
            let candidates = self.resolve(&p.pattern, space).unwrap_or_default();
            if candidates.is_empty() {
                still_waiting.push(p);
                continue;
            }
            self.m.woken.inc();
            self.m
                .dwell_ns
                .record(self.obs.now_nanos().saturating_sub(p.since_nanos));
            self.obs.tracer.record(p.trace, self.node, Stage::Woken);
            let route = Route {
                pattern: p.pattern.clone(),
                space,
                kind: p.kind,
                trace: p.trace,
            };
            match p.kind {
                DeliveryKind::Send => {
                    if let Ok(pick) = self.pick(space, &candidates) {
                        sink(pick, p.msg, Some(&route));
                    }
                }
                DeliveryKind::Broadcast => {
                    for c in candidates {
                        sink(c, p.msg.clone(), Some(&route));
                    }
                }
            }
        }
        if !still_waiting.is_empty() {
            if let Ok(sp) = self.space_mut(space) {
                for p in still_waiting {
                    sp.push_pending(p);
                }
            }
        }

        // --- Persistent broadcasts: exactly-once to new matches (§5.6) ---
        let mut persistent = match self.space_mut(space) {
            Ok(sp) if !sp.persistent().is_empty() => std::mem::take(sp.persistent_mut()),
            _ => return,
        };
        for pb in &mut persistent {
            let candidates = self.resolve(&pb.pattern, space).unwrap_or_default();
            // Late persistent deliveries are not tied back to the original
            // broadcast's trace: it may have terminated long ago, and an
            // open-ended stream of `delivered` events would make "exactly
            // one terminal stage" meaningless.
            let route = Route {
                pattern: pb.pattern.clone(),
                space,
                kind: DeliveryKind::Broadcast,
                trace: TraceId::NONE,
            };
            for c in candidates {
                if pb.delivered.insert(c) {
                    sink(c, pb.msg.clone(), Some(&route));
                }
            }
        }
        if let Ok(sp) = self.space_mut(space) {
            let mut merged = persistent;
            // New persistent broadcasts cannot have been registered while we
            // held the list (sinks do not re-enter the registry), but be
            // defensive and keep any that were.
            merged.extend(std::mem::take(sp.persistent_mut()));
            *sp.persistent_mut() = merged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ManagerPolicy, SelectionPolicy, UnmatchedPolicy};
    use actorspace_atoms::path;
    use actorspace_pattern::pattern;

    type Reg = Registry<&'static str>;

    fn reg() -> Reg {
        let p = ManagerPolicy {
            selection_seed: Some(7),
            ..Default::default()
        };
        Registry::new(p)
    }

    fn reg_with(unmatched: UnmatchedPolicy) -> Reg {
        let p = ManagerPolicy {
            unmatched_send: unmatched,
            unmatched_broadcast: unmatched,
            selection_seed: Some(7),
            ..Default::default()
        };
        Registry::new(p)
    }

    /// Collects deliveries into a vec for assertions.
    struct Collect(std::rc::Rc<std::cell::RefCell<Vec<(ActorId, &'static str)>>>);
    fn collector() -> (Collect, impl FnMut(ActorId, &'static str, Option<&Route>)) {
        let v = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let v2 = v.clone();
        (Collect(v), move |a, m, _| v2.borrow_mut().push((a, m)))
    }

    impl Collect {
        fn take(&self) -> Vec<(ActorId, &'static str)> {
            std::mem::take(&mut self.0.borrow_mut())
        }
        fn len(&self) -> usize {
            self.0.borrow().len()
        }
    }

    fn setup_workers(r: &mut Reg, n: usize) -> (SpaceId, Vec<ActorId>) {
        let s = r.create_space(None);
        let mut workers = Vec::new();
        let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
        for _ in 0..n {
            let a = r.create_actor(s, None).unwrap();
            r.make_visible(a.into(), vec![path("worker")], s, None, &mut k)
                .unwrap();
            workers.push(a);
        }
        (s, workers)
    }

    #[test]
    fn send_reaches_exactly_one_matching_actor() {
        let mut r = reg();
        let (s, workers) = setup_workers(&mut r, 4);
        let (got, mut sink) = collector();
        let d = r.send(&pattern("worker"), s, "job", &mut sink).unwrap();
        assert_eq!(d, Disposition::Delivered(1));
        let deliveries = got.take();
        assert_eq!(deliveries.len(), 1);
        assert!(workers.contains(&deliveries[0].0));
        assert_eq!(deliveries[0].1, "job");
    }

    #[test]
    fn send_balances_load_across_replicas() {
        // §5.3: "the load may be balanced automatically by an
        // implementation, and none of the clients need to know the exact
        // number of potential receivers."
        let mut r = reg();
        let (s, workers) = setup_workers(&mut r, 4);
        let mut counts: std::collections::HashMap<ActorId, u32> = Default::default();
        for _ in 0..400 {
            let (got, mut sink) = collector();
            r.send(&pattern("worker"), s, "j", &mut sink).unwrap();
            for (a, _) in got.take() {
                *counts.entry(a).or_insert(0) += 1;
            }
        }
        assert_eq!(
            counts.len(),
            workers.len(),
            "every replica should be exercised"
        );
        for (_, c) in counts {
            assert!((40..200).contains(&c), "grossly unbalanced: {c}");
        }
    }

    #[test]
    fn broadcast_reaches_all_matching_actors() {
        let mut r = reg();
        let (s, workers) = setup_workers(&mut r, 8);
        let (got, mut sink) = collector();
        let d = r
            .broadcast(&pattern("worker"), s, "bound=17", &mut sink)
            .unwrap();
        assert_eq!(d, Disposition::Delivered(8));
        let mut who: Vec<ActorId> = got.take().into_iter().map(|(a, _)| a).collect();
        who.sort_unstable();
        let mut want = workers.clone();
        want.sort_unstable();
        assert_eq!(who, want);
    }

    #[test]
    fn broadcast_respects_pattern() {
        let mut r = reg();
        let s = r.create_space(None);
        let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("srv/fib")], s, None, &mut k)
            .unwrap();
        r.make_visible(b.into(), vec![path("cli/fib")], s, None, &mut k)
            .unwrap();
        let (got, mut sink) = collector();
        r.broadcast(&pattern("srv/**"), s, "x", &mut sink).unwrap();
        assert_eq!(got.take(), vec![(a, "x")]);
    }

    #[test]
    fn suspend_policy_holds_message_until_match_appears() {
        // §5.6: "send and broadcast messages are suspended until at least
        // one actor arrives whose attribute matches the pattern."
        let mut r = reg(); // default = Suspend
        let s = r.create_space(None);
        let (got, mut sink) = collector();
        let d = r
            .send(&pattern("late/worker"), s, "early-job", &mut sink)
            .unwrap();
        assert_eq!(d, Disposition::Suspended);
        assert_eq!(got.len(), 0);
        assert_eq!(r.space(s).unwrap().pending().len(), 1);

        // The matching actor arrives; the suspended message is released.
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("late/worker")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.take(), vec![(a, "early-job")]);
        assert!(r.space(s).unwrap().pending().is_empty());
    }

    #[test]
    fn suspended_broadcast_wakes_to_all_present_matches() {
        let mut r = reg();
        let s = r.create_space(None);
        let (got, mut sink) = collector();
        r.broadcast(&pattern("w/*"), s, "b", &mut sink).unwrap();
        assert_eq!(got.len(), 0);
        // Two actors arrive before the wake trigger... the first
        // make_visible wakes the broadcast with only one present.
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("w/1")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.take(), vec![(a, "b")]);
        // Later arrivals do NOT receive the already-released broadcast.
        let b = r.create_actor(s, None).unwrap();
        r.make_visible(b.into(), vec![path("w/2")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn attribute_change_can_wake_suspended_message() {
        let mut r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
        r.make_visible(a.into(), vec![path("idle")], s, None, &mut k)
            .unwrap();
        let (got, mut sink) = collector();
        r.send(&pattern("ready"), s, "m", &mut sink).unwrap();
        assert_eq!(got.len(), 0);
        r.change_attributes(a.into(), vec![path("ready")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.take(), vec![(a, "m")]);
    }

    #[test]
    fn discard_policy_drops() {
        let mut r = reg_with(UnmatchedPolicy::Discard);
        let s = r.create_space(None);
        let (got, mut sink) = collector();
        assert_eq!(
            r.send(&pattern("none"), s, "x", &mut sink).unwrap(),
            Disposition::Discarded
        );
        assert_eq!(
            r.broadcast(&pattern("none"), s, "x", &mut sink).unwrap(),
            Disposition::Discarded
        );
        assert_eq!(got.len(), 0);
        assert!(r.space(s).unwrap().pending().is_empty());
    }

    #[test]
    fn error_policy_reports_no_match() {
        let mut r = reg_with(UnmatchedPolicy::Error);
        let s = r.create_space(None);
        let (_, mut sink) = collector();
        assert!(matches!(
            r.send(&pattern("none"), s, "x", &mut sink),
            Err(Error::NoMatch { .. })
        ));
        assert!(matches!(
            r.broadcast(&pattern("none"), s, "x", &mut sink),
            Err(Error::NoMatch { .. })
        ));
    }

    #[test]
    fn persistent_broadcast_delivers_exactly_once_to_every_future_match() {
        // §5.6: "broadcasting could be persistent, so that any actor
        // (existing or created in the future) whose attributes match the
        // pattern will receive the broadcast message exactly once."
        let mut r = reg_with(UnmatchedPolicy::Persistent);
        let s = r.create_space(None);
        let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("node")], s, None, &mut k)
            .unwrap();

        let (got, mut sink) = collector();
        let d = r
            .broadcast(&pattern("node"), s, "protocol-v2", &mut sink)
            .unwrap();
        assert_eq!(d, Disposition::Persistent(1));
        assert_eq!(got.take(), vec![(a, "protocol-v2")]);

        // A future arrival gets it exactly once.
        let b = r.create_actor(s, None).unwrap();
        r.make_visible(b.into(), vec![path("node")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.take(), vec![(b, "protocol-v2")]);

        // Repeated attribute churn does not re-deliver.
        r.change_attributes(b.into(), vec![path("node")], s, None, &mut sink)
            .unwrap();
        r.change_attributes(a.into(), vec![path("node")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.len(), 0);

        // An actor leaving and re-arriving still does not get a duplicate.
        r.make_invisible(a.into(), s, None).unwrap();
        r.make_visible(a.into(), vec![path("node")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn cancel_persistent_stops_future_deliveries() {
        let mut r = reg_with(UnmatchedPolicy::Persistent);
        let s = r.create_space(None);
        let (got, mut sink) = collector();
        r.broadcast(&pattern("node"), s, "hello", &mut sink)
            .unwrap();
        assert_eq!(r.cancel_persistent(s, None).unwrap(), 1);
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("node")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn wake_propagates_to_ancestor_spaces() {
        // A message suspended in the OUTER space must wake when a matching
        // actor appears in a nested space (the join makes it matchable).
        let mut r = reg();
        let outer = r.create_space(None);
        let inner = r.create_space(None);
        let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
        r.make_visible(inner.into(), vec![path("pool")], outer, None, &mut k)
            .unwrap();

        let (got, mut sink) = collector();
        r.send(&pattern("pool/worker"), outer, "job", &mut sink)
            .unwrap();
        assert_eq!(got.len(), 0);

        let a = r.create_actor(inner, None).unwrap();
        r.make_visible(a.into(), vec![path("worker")], inner, None, &mut sink)
            .unwrap();
        assert_eq!(got.take(), vec![(a, "job")]);
    }

    #[test]
    fn round_robin_selection_policy() {
        let p = ManagerPolicy {
            selection: SelectionPolicy::RoundRobin,
            ..Default::default()
        };
        let mut r: Registry<&'static str> = Registry::new(p);
        let (s, mut workers) = {
            let s = r.create_space(None);
            let mut v = Vec::new();
            let mut k = |_: ActorId, _: &'static str, _: Option<&Route>| {};
            for _ in 0..3 {
                let a = r.create_actor(s, None).unwrap();
                r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
                    .unwrap();
                v.push(a);
            }
            (s, v)
        };
        workers.sort_unstable();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let (got, mut sink) = collector();
            r.send(&pattern("w"), s, "j", &mut sink).unwrap();
            picks.push(got.take()[0].0);
        }
        assert_eq!(picks[0..3], workers[..]);
        assert_eq!(picks[3..6], workers[..]);
    }

    #[test]
    fn custom_manager_arbitration_wins() {
        use crate::manager::Manager;
        struct AlwaysMax;
        impl Manager for AlwaysMax {
            fn choose(&mut self, c: &[ActorId]) -> Option<ActorId> {
                c.iter().max().copied()
            }
        }
        let mut r = reg();
        let (s, workers) = setup_workers(&mut r, 5);
        r.set_space_manager(s, Box::new(AlwaysMax), None).unwrap();
        let top = *workers.iter().max().unwrap();
        for _ in 0..10 {
            let (got, mut sink) = collector();
            r.send(&pattern("worker"), s, "j", &mut sink).unwrap();
            assert_eq!(got.take()[0].0, top);
        }
    }

    #[test]
    fn send_to_missing_space_errors() {
        let mut r = reg();
        let (_, mut sink) = collector();
        assert!(matches!(
            r.send(&pattern("x"), SpaceId(404), "m", &mut sink),
            Err(Error::NoSuchSpace(_))
        ));
    }
}
