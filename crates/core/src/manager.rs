//! Programmable actorSpace managers (§2, §8).
//!
//! "Corresponding to each actorSpace is a manager who validates
//! capabilities and enforces visibility changes. Although we describe
//! default policies for actorSpaces, further customization may be obtained
//! by manipulating managers."
//!
//! The default manager is wholly described by
//! [`ManagerPolicy`](crate::policy::ManagerPolicy). A [`Manager`]
//! implementation installed on a space can override each decision point;
//! returning `None` from a hook falls through to the configured policy, so
//! managers compose with, rather than replace, the policy table.

use actorspace_atoms::Path;

use crate::ids::{ActorId, MemberId};
use crate::policy::UnmatchedPolicy;

/// Decision hooks for one actorSpace. All hooks have pass-through defaults.
pub trait Manager: Send {
    /// Custom arbitration: pick the recipient of a pattern-directed `send`
    /// from the (non-empty, deduplicated) matching group. `None` delegates
    /// to the space's [`SelectionPolicy`](crate::policy::SelectionPolicy).
    ///
    /// This is §8's "arbitration mechanisms which may be used instead of
    /// the current indeterminate choice".
    fn choose(&mut self, candidates: &[ActorId]) -> Option<ActorId> {
        let _ = candidates;
        None
    }

    /// Custom unmatched-send handling; `None` uses the policy table.
    fn unmatched_send(&mut self) -> Option<UnmatchedPolicy> {
        None
    }

    /// Custom unmatched-broadcast handling; `None` uses the policy table.
    fn unmatched_broadcast(&mut self) -> Option<UnmatchedPolicy> {
        None
    }

    /// Additional validation of a visibility request *after* the capability
    /// check passes — e.g. a daemon enforcing coordination constraints on
    /// attribute shapes. Returning `false` denies the request.
    fn authorize_visibility(&mut self, member: MemberId, attrs: &[Path]) -> bool {
        let _ = (member, attrs);
        true
    }

    /// Observation hook: called after any visibility or attribute change in
    /// the space, with the member affected. §8: "more powerful managers
    /// could use daemons to monitor actors in an actorSpace and update
    /// attributes in order to maintain specified coordination constraints."
    fn on_change(&mut self, member: MemberId) {
        let _ = member;
    }
}

/// The do-nothing manager: every decision falls through to the policy
/// table. Installed by default on every space.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultManager;

impl Manager for DefaultManager {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_manager_passes_everything_through() {
        let mut m = DefaultManager;
        assert_eq!(m.choose(&[ActorId(1)]), None);
        assert_eq!(m.unmatched_send(), None);
        assert_eq!(m.unmatched_broadcast(), None);
        assert!(m.authorize_visibility(MemberId::Actor(ActorId(1)), &[]));
    }

    struct PickFirst;
    impl Manager for PickFirst {
        fn choose(&mut self, candidates: &[ActorId]) -> Option<ActorId> {
            candidates.iter().min().copied()
        }
    }

    #[test]
    fn custom_manager_overrides_choice() {
        let mut m = PickFirst;
        assert_eq!(
            m.choose(&[ActorId(9), ActorId(3), ActorId(5)]),
            Some(ActorId(3))
        );
    }

    struct NoSecrets;
    impl Manager for NoSecrets {
        fn authorize_visibility(&mut self, _member: MemberId, attrs: &[Path]) -> bool {
            use actorspace_atoms::atom;
            !attrs
                .iter()
                .any(|p| p.atoms().first() == Some(&atom("secret")))
        }
    }

    #[test]
    fn custom_manager_can_veto_visibility() {
        use actorspace_atoms::path;
        let mut m = NoSecrets;
        let a = MemberId::Actor(ActorId(1));
        assert!(m.authorize_visibility(a, &[path("public/x")]));
        assert!(!m.authorize_visibility(a, &[path("secret/x")]));
    }
}
