//! Identifiers: actor and actorSpace mail addresses.
//!
//! "Each actor has a unique mail address determined at the time of its
//! creation" (§4); actorSpaces likewise get "a unique actorSpace mail
//! address" from `create_actorSpace` (§5.2). §5.7 notes that "type
//! information must be maintained to determine whether a mail address
//! refers to an actor or an actorSpace" — that type information is
//! [`MemberId`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// An actor mail address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub u64);

/// An actorSpace mail address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpaceId(pub u64);

/// A mail address together with its kind — what can be made visible in an
/// actorSpace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemberId {
    /// An actor.
    Actor(ActorId),
    /// A (nested) actorSpace.
    Space(SpaceId),
}

impl MemberId {
    /// The actor id, if this is an actor.
    pub fn as_actor(self) -> Option<ActorId> {
        match self {
            MemberId::Actor(a) => Some(a),
            MemberId::Space(_) => None,
        }
    }

    /// The space id, if this is a space.
    pub fn as_space(self) -> Option<SpaceId> {
        match self {
            MemberId::Space(s) => Some(s),
            MemberId::Actor(_) => None,
        }
    }
}

impl From<ActorId> for MemberId {
    fn from(a: ActorId) -> Self {
        MemberId::Actor(a)
    }
}

impl From<SpaceId> for MemberId {
    fn from(s: SpaceId) -> Self {
        MemberId::Space(s)
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor:{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor:{}", self.0)
    }
}

impl fmt::Debug for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space:{}", self.0)
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space:{}", self.0)
    }
}

impl fmt::Debug for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberId::Actor(a) => write!(f, "{a:?}"),
            MemberId::Space(s) => write!(f, "{s:?}"),
        }
    }
}

/// Allocates unique ids. In a distributed deployment each node's generator
/// is seeded with a disjoint range (`node_id << 48`) so addresses stay
/// globally unique without coordination — the Actor locality property
/// depends on "mail addresses of new actors are unique" (§3).
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// A generator starting at `base`. Node `n` in a cluster uses
    /// `IdGen::new((n as u64) << 48)`.
    pub fn new(base: u64) -> IdGen {
        IdGen {
            next: AtomicU64::new(base),
        }
    }

    /// The next unique raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Raises the generator so future ids are allocated strictly past
    /// `taken`. No-op when the generator is already beyond it.
    pub fn ensure_floor(&self, taken: u64) {
        self.next.fetch_max(taken + 1, Ordering::Relaxed);
    }

    /// The next actor id.
    pub fn next_actor(&self) -> ActorId {
        ActorId(self.next())
    }

    /// The next space id.
    pub fn next_space(&self) -> SpaceId {
        SpaceId(self.next())
    }
}

impl Default for IdGen {
    fn default() -> Self {
        IdGen::new(1) // id 0 is reserved for the root space
    }
}

/// The automatically-created root actorSpace (§7.1): "a globally visible
/// actorSpace which is the 'root' of the tree of actorSpaces, is created
/// automatically by the run-time system."
pub const ROOT_SPACE: SpaceId = SpaceId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_monotonic_and_unique() {
        let g = IdGen::default();
        let a = g.next_actor();
        let b = g.next_actor();
        let s = g.next_space();
        assert_ne!(a, b);
        assert_ne!(a.0, s.0);
        assert!(b.0 > a.0);
    }

    #[test]
    fn idgen_never_yields_root() {
        let g = IdGen::default();
        for _ in 0..100 {
            assert_ne!(g.next_space(), ROOT_SPACE);
        }
    }

    #[test]
    fn node_bases_do_not_collide() {
        let g0 = IdGen::new(1);
        let g1 = IdGen::new(1 << 48);
        for _ in 0..1000 {
            let a = g0.next();
            let b = g1.next();
            assert_ne!(a, b);
            assert!(a < (1 << 48));
            assert!(b >= (1 << 48));
        }
    }

    #[test]
    fn member_id_kind_accessors() {
        let a = MemberId::Actor(ActorId(7));
        let s = MemberId::Space(SpaceId(9));
        assert_eq!(a.as_actor(), Some(ActorId(7)));
        assert_eq!(a.as_space(), None);
        assert_eq!(s.as_space(), Some(SpaceId(9)));
        assert_eq!(s.as_actor(), None);
    }

    #[test]
    fn concurrent_generation_is_unique() {
        let g = std::sync::Arc::new(IdGen::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
