//! Per-actorSpace manager policies.
//!
//! The paper deliberately leaves several semantic choices open and assigns
//! them to *customizable managers* (§5.6, §5.7, §8): what happens to a
//! message whose pattern matches no visible actor, and how one recipient is
//! chosen from a matching group. These enums are the concrete, swappable
//! policy knobs; the [`Manager`](crate::manager::Manager) trait allows
//! fully programmable replacements.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::ActorId;

/// How to handle would-be cycles in the visibility relation (§5.7).
///
/// The paper's default is to reject them at `make_visible` time. "An
/// alternate strategy is to tag messages and compare tags with those of
/// previously sent messages" — this implementation's equivalent tags
/// *resolution states*: the matcher tracks visited `(space, NFA-state)`
/// pairs, so even a cyclic visibility graph yields a finite recipient set
/// and the §5.7 infinite-message catastrophe cannot occur. "We believe no
/// single strategy will provide a universally desirable solution. The
/// problem is probably best addressed by customizing actorSpace managers"
/// — hence a policy knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CyclePolicy {
    /// Reject `make_visible` calls that would create a cycle (the paper's
    /// chosen semantics; keeps the relation a DAG).
    #[default]
    Forbid,
    /// Allow cyclic visibility; resolution stays finite via visited-state
    /// deduplication (the paper's tagging alternative).
    TolerateWithDedup,
}

/// What to do when a pattern matches no visible actor (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnmatchedPolicy {
    /// Suspend the message "until at least one actor appears whose
    /// attribute is matched by the pattern" — the paper's implementation
    /// choice: "the cheapest option that avoids repeated synchronization".
    #[default]
    Suspend,
    /// Drop the message silently.
    Discard,
    /// Treat the unmatched message as an error, "forcing additional
    /// synchronization".
    Error,
    /// For broadcasts: remember the message forever and deliver it to every
    /// actor — existing or created in the future — whose attributes match,
    /// exactly once. "The last case may be useful in enforcing a protocol
    /// or assuming some other common knowledge in a group." For sends this
    /// behaves like [`UnmatchedPolicy::Suspend`].
    Persistent,
}

/// How `send(pattern@space, msg)` picks one recipient out of the matching
/// group. The paper specifies a "non-deterministic" choice and proposes
/// experimenting with "arbitration mechanisms … instead of the current
/// indeterminate choice" (§8).
#[derive(Debug, Clone, Default)]
pub enum SelectionPolicy {
    /// Uniformly random — the default; gives the automatic load balancing
    /// of §5.3 ("the load may be balanced automatically by an
    /// implementation").
    #[default]
    Random,
    /// Cycle through recipients in address order.
    RoundRobin,
    /// Pick the recipient with the lowest reported load; ties broken by
    /// address. Loads are reported via [`Selector::set_load`].
    LeastLoaded,
}

/// The runtime state behind a [`SelectionPolicy`] (RNG, round-robin cursor,
/// load table). One per actorSpace.
#[derive(Debug)]
pub struct Selector {
    policy: SelectionPolicy,
    rng: SmallRng,
    cursor: usize,
    loads: std::collections::HashMap<ActorId, u64>,
}

impl Selector {
    /// Creates a selector. A deterministic seed may be supplied for
    /// reproducible tests; `None` seeds from the OS.
    pub fn new(policy: SelectionPolicy, seed: Option<u64>) -> Selector {
        let rng = match seed {
            Some(s) => SmallRng::seed_from_u64(s),
            None => SmallRng::from_entropy(),
        };
        Selector {
            policy,
            rng,
            cursor: 0,
            loads: Default::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SelectionPolicy {
        &self.policy
    }

    /// Replaces the policy (manager customization, §8).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.policy = policy;
    }

    /// Reports an actor's current load for [`SelectionPolicy::LeastLoaded`].
    pub fn set_load(&mut self, actor: ActorId, load: u64) {
        self.loads.insert(actor, load);
    }

    /// Chooses one recipient from a non-empty candidate list. Candidates
    /// must be deduplicated by the caller; order does not matter for
    /// `Random`, and is normalized internally for the deterministic
    /// policies.
    pub fn select(&mut self, candidates: &[ActorId]) -> ActorId {
        assert!(
            !candidates.is_empty(),
            "select() requires at least one candidate"
        );
        match self.policy {
            SelectionPolicy::Random => candidates[self.rng.gen_range(0..candidates.len())],
            SelectionPolicy::RoundRobin => {
                let mut sorted: Vec<ActorId> = candidates.to_vec();
                sorted.sort_unstable();
                let pick = sorted[self.cursor % sorted.len()];
                self.cursor = self.cursor.wrapping_add(1);
                pick
            }
            SelectionPolicy::LeastLoaded => {
                let mut sorted: Vec<ActorId> = candidates.to_vec();
                sorted.sort_unstable();
                *sorted
                    .iter()
                    .min_by_key(|a| (self.loads.get(a).copied().unwrap_or(0), a.0))
                    .expect("non-empty")
            }
        }
    }
}

/// Full per-space manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerPolicy {
    /// Unmatched-message handling for `send`.
    pub unmatched_send: UnmatchedPolicy,
    /// Unmatched-message handling for `broadcast`.
    pub unmatched_broadcast: UnmatchedPolicy,
    /// Recipient selection for `send`.
    pub selection: SelectionPolicy,
    /// Maximum nesting depth pattern resolution descends through visible
    /// sub-spaces. The visibility relation is a DAG so resolution always
    /// terminates; the limit bounds work on deep hierarchies.
    pub max_match_depth: usize,
    /// Deterministic RNG seed for selection (tests); `None` = OS entropy.
    pub selection_seed: Option<u64>,
    /// Resolve *literal* patterns through the per-space inverted attribute
    /// index instead of the NFA walk — O(1) in the number of visible
    /// actors. Semantics are identical (attributes are always literal
    /// paths, so the index is complete); the flag exists for the E12
    /// ablation benchmark.
    pub use_literal_index: bool,
    /// Cycle handling for `make_visible` on space members (§5.7).
    pub cycles: CyclePolicy,
}

impl Default for ManagerPolicy {
    fn default() -> Self {
        ManagerPolicy {
            unmatched_send: UnmatchedPolicy::Suspend,
            unmatched_broadcast: UnmatchedPolicy::Suspend,
            selection: SelectionPolicy::Random,
            max_match_depth: 64,
            selection_seed: None,
            use_literal_index: true,
            cycles: CyclePolicy::Forbid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<ActorId> {
        v.iter().map(|&i| ActorId(i)).collect()
    }

    #[test]
    fn random_selection_covers_all_candidates() {
        let mut s = Selector::new(SelectionPolicy::Random, Some(42));
        let cands = ids(&[1, 2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.select(&cands));
        }
        assert_eq!(
            seen.len(),
            4,
            "random selection should eventually hit every candidate"
        );
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut s = Selector::new(SelectionPolicy::Random, Some(7));
        let cands = ids(&[1, 2, 3, 4]);
        let mut counts = std::collections::HashMap::new();
        let n = 4000;
        for _ in 0..n {
            *counts.entry(s.select(&cands)).or_insert(0u32) += 1;
        }
        for (_, c) in counts {
            // Expected 1000 each; allow generous slack.
            assert!((700..1300).contains(&c), "count {c} badly non-uniform");
        }
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut s = Selector::new(SelectionPolicy::RoundRobin, Some(0));
        let cands = ids(&[30, 10, 20]);
        let picks: Vec<u64> = (0..6).map(|_| s.select(&cands).0).collect();
        assert_eq!(picks, [10, 20, 30, 10, 20, 30]);
    }

    #[test]
    fn least_loaded_prefers_low_load() {
        let mut s = Selector::new(SelectionPolicy::LeastLoaded, Some(0));
        let cands = ids(&[1, 2, 3]);
        s.set_load(ActorId(1), 10);
        s.set_load(ActorId(2), 3);
        s.set_load(ActorId(3), 7);
        assert_eq!(s.select(&cands), ActorId(2));
        s.set_load(ActorId(2), 99);
        assert_eq!(s.select(&cands), ActorId(3));
    }

    #[test]
    fn least_loaded_defaults_unknown_to_zero() {
        let mut s = Selector::new(SelectionPolicy::LeastLoaded, Some(0));
        s.set_load(ActorId(1), 5);
        // Actor 2 never reported → load 0 → wins.
        assert_eq!(s.select(&ids(&[1, 2])), ActorId(2));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn select_on_empty_panics() {
        let mut s = Selector::new(SelectionPolicy::Random, Some(0));
        s.select(&[]);
    }

    #[test]
    fn seeded_selectors_are_reproducible() {
        let cands = ids(&[1, 2, 3, 4, 5]);
        let runs: Vec<Vec<ActorId>> = (0..2)
            .map(|_| {
                let mut s = Selector::new(SelectionPolicy::Random, Some(123));
                (0..50).map(|_| s.select(&cands)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = ManagerPolicy::default();
        assert_eq!(p.unmatched_send, UnmatchedPolicy::Suspend);
        assert_eq!(p.unmatched_broadcast, UnmatchedPolicy::Suspend);
        assert!(matches!(p.selection, SelectionPolicy::Random));
    }
}
