//! Ready-made manager customizations (§8).
//!
//! "We intend to develop customizable managers to allow experimentation
//! with different coordination and scheduling mechanisms. … More powerful
//! managers could use daemons to monitor actors in an actorSpace and
//! update attributes in order to maintain specified coordination
//! constraints."
//!
//! These are concrete [`Manager`] implementations exercising each hook:
//! admission control ([`QuotaManager`]), attribute-shape constraints
//! ([`NamespaceManager`]), custom arbitration ([`StickyManager`]), and a
//! monitoring daemon ([`AuditDaemon`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use actorspace_atoms::Path;

use crate::ids::{ActorId, MemberId};
use crate::manager::Manager;

/// Admission control: caps how many members may ever be admitted to the
/// space (visibility requests beyond the quota are refused).
pub struct QuotaManager {
    limit: u64,
    admitted: AtomicU64,
}

impl QuotaManager {
    /// A manager admitting at most `limit` visibility grants.
    pub fn new(limit: u64) -> QuotaManager {
        QuotaManager {
            limit,
            admitted: AtomicU64::new(0),
        }
    }
}

impl Manager for QuotaManager {
    fn authorize_visibility(&mut self, _member: MemberId, _attrs: &[Path]) -> bool {
        // fetch_add then check: refusals give the slot back.
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if n >= self.limit {
            self.admitted.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

/// Attribute-shape constraint: every attribute registered in the space
/// must begin with a fixed namespace prefix — the kind of "coordination
/// constraint" a §8 daemon maintains, enforced at admission instead.
pub struct NamespaceManager {
    prefix: Path,
}

impl NamespaceManager {
    /// Requires every attribute to start with `prefix`.
    pub fn new(prefix: Path) -> NamespaceManager {
        NamespaceManager { prefix }
    }
}

impl Manager for NamespaceManager {
    fn authorize_visibility(&mut self, _member: MemberId, attrs: &[Path]) -> bool {
        attrs.iter().all(|a| a.starts_with(&self.prefix))
    }
}

/// Sticky arbitration: `send` keeps choosing the same recipient until that
/// recipient leaves the candidate set — session affinity, one of the §8
/// "arbitration mechanisms which may be used instead of the current
/// indeterminate choice".
#[derive(Default)]
pub struct StickyManager {
    current: Option<ActorId>,
}

impl StickyManager {
    /// A fresh sticky arbiter.
    pub fn new() -> StickyManager {
        StickyManager::default()
    }
}

impl Manager for StickyManager {
    fn choose(&mut self, candidates: &[ActorId]) -> Option<ActorId> {
        if let Some(cur) = self.current {
            if candidates.contains(&cur) {
                return Some(cur);
            }
        }
        let pick = candidates.iter().min().copied();
        self.current = pick;
        pick
    }

    fn on_change(&mut self, member: MemberId) {
        // If the sticky target's visibility changed, re-arbitrate next time.
        if member.as_actor() == self.current {
            self.current = None;
        }
    }
}

/// A monitoring daemon (§8): counts every visibility/attribute change in
/// the space, observable from outside through the shared counter.
pub struct AuditDaemon {
    changes: Arc<AtomicU64>,
}

impl AuditDaemon {
    /// Creates the daemon and the counter it reports through.
    pub fn new() -> (AuditDaemon, Arc<AtomicU64>) {
        let counter = Arc::new(AtomicU64::new(0));
        (
            AuditDaemon {
                changes: counter.clone(),
            },
            counter,
        )
    }
}

impl Manager for AuditDaemon {
    fn on_change(&mut self, _member: MemberId) {
        self.changes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ManagerPolicy;
    use crate::registry::Registry;
    use actorspace_atoms::path;
    use actorspace_pattern::pattern;

    type Reg = Registry<u32>;

    fn reg() -> Reg {
        let p = ManagerPolicy {
            selection_seed: Some(3),
            ..Default::default()
        };
        Registry::new(p)
    }

    fn sink() -> impl FnMut(ActorId, u32, Option<&crate::delivery::Route>) {
        |_, _, _| {}
    }

    #[test]
    fn quota_manager_caps_admissions() {
        let mut r = reg();
        let s = r.create_space(None);
        r.set_space_manager(s, Box::new(QuotaManager::new(2)), None)
            .unwrap();
        let mut k = sink();
        let mut admitted = 0;
        for i in 0..5 {
            let a = r.create_actor(s, None).unwrap();
            if r.make_visible(a.into(), vec![path(&format!("w{i}"))], s, None, &mut k)
                .is_ok()
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2);
        assert_eq!(r.resolve(&pattern("**"), s).unwrap().len(), 2);
    }

    #[test]
    fn quota_refusal_returns_the_slot() {
        let mut r = reg();
        let s = r.create_space(None);
        r.set_space_manager(s, Box::new(QuotaManager::new(1)), None)
            .unwrap();
        let mut k = sink();
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        assert!(r
            .make_visible(b.into(), vec![path("w")], s, None, &mut k)
            .is_err());
        // a leaves; the quota slot is... NOT returned (admissions counter
        // is cumulative by design — the quota is an admission budget).
        r.make_invisible(a.into(), s, None).unwrap();
        assert!(r
            .make_visible(b.into(), vec![path("w")], s, None, &mut k)
            .is_err());
    }

    #[test]
    fn namespace_manager_constrains_attribute_shapes() {
        let mut r = reg();
        let s = r.create_space(None);
        r.set_space_manager(s, Box::new(NamespaceManager::new(path("public"))), None)
            .unwrap();
        let mut k = sink();
        let a = r.create_actor(s, None).unwrap();
        assert!(r
            .make_visible(a.into(), vec![path("public/svc")], s, None, &mut k)
            .is_ok());
        let b = r.create_actor(s, None).unwrap();
        assert!(r
            .make_visible(b.into(), vec![path("private/svc")], s, None, &mut k)
            .is_err());
        // Mixed lists are refused whole.
        let c = r.create_actor(s, None).unwrap();
        assert!(r
            .make_visible(
                c.into(),
                vec![path("public/x"), path("oops")],
                s,
                None,
                &mut k
            )
            .is_err());
    }

    #[test]
    fn sticky_manager_pins_a_recipient() {
        let mut r = reg();
        let s = r.create_space(None);
        r.set_space_manager(s, Box::new(StickyManager::new()), None)
            .unwrap();
        let mut k = sink();
        let mut workers = Vec::new();
        for _ in 0..3 {
            let a = r.create_actor(s, None).unwrap();
            r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
                .unwrap();
            workers.push(a);
        }
        let mut picks = Vec::new();
        for _ in 0..5 {
            let mut sink = |to: ActorId, _: u32, _: Option<&crate::delivery::Route>| picks.push(to);
            r.send(&pattern("w"), s, 1, &mut sink).unwrap();
        }
        assert!(picks.windows(2).all(|w| w[0] == w[1]), "sticky: {picks:?}");
        // The pinned worker leaves → a new one is chosen and pinned.
        let pinned = picks[0];
        r.make_invisible(pinned.into(), s, None).unwrap();
        let mut later = Vec::new();
        for _ in 0..3 {
            let mut sink = |to: ActorId, _: u32, _: Option<&crate::delivery::Route>| later.push(to);
            r.send(&pattern("w"), s, 1, &mut sink).unwrap();
        }
        assert!(later.iter().all(|&t| t != pinned));
        assert!(later.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn audit_daemon_observes_changes() {
        let mut r = reg();
        let s = r.create_space(None);
        let (daemon, counter) = AuditDaemon::new();
        r.set_space_manager(s, Box::new(daemon), None).unwrap();
        let mut k = sink();
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut k)
            .unwrap();
        r.change_attributes(a.into(), vec![path("w2")], s, None, &mut k)
            .unwrap();
        r.make_invisible(a.into(), s, None).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }
}
