//! The sharded coordinator: one lock per actorSpace instead of one lock
//! per node.
//!
//! The paper's coordinator "maintains coherence of the state of
//! ActorSpace" (§7.3), and the single-lock [`Registry`] realizes it as one
//! big critical section — every `send(pattern@space)`, broadcast, and
//! visibility change on a node serializes through it. But pattern matching
//! is already *scoped*: a resolution at `space` can only observe `space`
//! itself plus the sub-spaces transitively visible in it (§7.1), so spaces
//! whose visibility subtrees are disjoint never contend. The
//! [`ShardedRegistry`] exploits exactly that: each space — its visible
//! members, suspended sends, and persistent broadcasts (§5.6) — lives
//! behind its own mutex, and an operation locks only the shards its scope
//! can reach.
//!
//! ## Lock-ordering invariant
//!
//! Two lock levels, acquired strictly top-down:
//!
//! 1. **meta** (`RwLock`): the cross-space tables — actor records, the
//!    reverse-visibility `containers` map, the forward visibility-edge
//!    map, GC roots, and the shard directory itself. Read-locked by
//!    delivery operations, write-locked by topology changes
//!    (create/destroy/make_visible/make_invisible/purge/GC).
//! 2. **shards** (`Mutex<Space>` each): locked *while holding meta*, always
//!    in ascending [`SpaceId`] order, as one batch computed up front from
//!    the meta tables (the visibility closure of the operation's scope).
//!
//! No code path acquires meta after a shard lock, and no path acquires a
//! lower-id shard after a higher-id one, so the wait-for graph is acyclic
//! and the coordinator is deadlock-free by construction. Operations that
//! genuinely span spaces — overlapping membership, DAG edges (§5.7),
//! broadcasts traversing nested spaces, cross-space wakes — simply have
//! bigger lock sets; disjoint sends proceed fully in parallel under the
//! shared meta read lock.
//!
//! Sinks are invoked with shard locks held (exactly as [`Registry`] invokes
//! them under its single lock) and must not re-enter the coordinator.
//!
//! All of the above is *checked*, not just documented: every lock here is
//! an [`actorspace_lockcheck`] wrapper tagged `Meta` or `Shard(id)`, each
//! public operation opens a [`enter_coordinator`] section, and each sink or
//! manager callback runs inside an [`enter_callback`] section. Built with
//! `--features lockcheck`, the checker enforces meta-before-shard,
//! ascending shard order, no callback re-entry, and (per §5.7) re-verifies
//! the visibility DAG after every topology mutation. Without the feature
//! all of it compiles away.
//!
//! The single-lock [`Registry`] is deliberately kept: it is the reference
//! implementation the differential oracle property test replays random
//! operation sequences against (`tests/differential_oracle.rs`), asserting
//! both coordinators produce identical delivery multisets, suspension
//! sets, and [`SpaceInfo`] snapshots.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use actorspace_atoms::Path;
use actorspace_capability::{Capability, Guard, GuardError, Rights};
use actorspace_lockcheck::{
    enter_callback, enter_coordinator, LockClass, Mutex, MutexGuard, RwLock,
};
use actorspace_obs::{names, Counter, Obs, ObsConfig, Stage, TraceId};
use actorspace_pattern::Pattern;

use crate::delivery::{Disposition, Route};
use crate::error::{Error, Result};
use crate::gc::GcReport;
use crate::ids::{ActorId, IdGen, MemberId, SpaceId, ROOT_SPACE};
use crate::manager::Manager;
use crate::matching::{self, SpaceStore};
use crate::policy::{CyclePolicy, ManagerPolicy, UnmatchedPolicy};
use crate::registry::{ActorRecord, CoreMetrics, Sink, SpaceInfo};
use crate::space::{DeliveryKind, Pending, PersistentBroadcast, Space};
use crate::visibility;

#[cfg(doc)]
use crate::registry::Registry;

/// Pre-resolved per-space metric handles (`core.space.*`, `core.index.*`),
/// labeled with the shard's space id in [`Obs`] snapshots.
#[derive(Clone)]
struct ShardMetrics {
    sends: Arc<Counter>,
    broadcasts: Arc<Counter>,
    index_hits: Arc<Counter>,
    index_misses: Arc<Counter>,
}

impl ShardMetrics {
    fn resolve(obs: &Obs, node: u16, space: SpaceId) -> ShardMetrics {
        ShardMetrics {
            sends: obs
                .metrics
                .counter_for_space(names::CORE_SPACE_SENDS, node, space.0),
            broadcasts: obs
                .metrics
                .counter_for_space(names::CORE_SPACE_BROADCASTS, node, space.0),
            index_hits: obs
                .metrics
                .counter_for_space(names::CORE_INDEX_HITS, node, space.0),
            index_misses: obs
                .metrics
                .counter_for_space(names::CORE_INDEX_MISSES, node, space.0),
        }
    }
}

/// One shard: the space state behind its own lock, plus the data needed
/// *without* the lock — the immutable creation guard (so capability checks
/// never contend with deliveries) and the shard's metric handles.
struct ShardHandle<M> {
    space: Arc<Mutex<Space<M>>>,
    /// Duplicate of the space's guard. Guards are immutable after creation,
    /// so the copy can never diverge.
    guard: Guard,
    m: ShardMetrics,
}

/// The cross-space tables, all behind one `RwLock` (level 1 of the lock
/// order).
struct Meta<M> {
    /// Shard directory, ordered by id — iteration order *is* lock order.
    shards: BTreeMap<SpaceId, ShardHandle<M>>,
    actors: HashMap<ActorId, ActorRecord>,
    /// Reverse visibility: member → spaces it is visible in. Kept in exact
    /// correspondence with each shard's membership table.
    containers: HashMap<MemberId, HashSet<SpaceId>>,
    /// Forward visibility: space → sub-spaces visible in it. The mirror of
    /// the `MemberId::Space` entries in the shards' membership tables; kept
    /// here so lock sets and §5.7 cycle checks need no shard locks.
    edges: HashMap<SpaceId, HashSet<SpaceId>>,
    /// Actors with live external handles — garbage-collection roots.
    roots: HashSet<ActorId>,
}

/// The shard mutexes an operation holds, keyed (and therefore iterated)
/// in `SpaceId` order. Implements [`SpaceStore`] so the pattern-resolution
/// walks in [`matching`] run unchanged against a locked shard set.
type Guards<'a, M> = BTreeMap<SpaceId, MutexGuard<'a, Space<M>>>;

/// The `Arc` handles the guards borrow from; owning them locally lets the
/// meta tables stay mutable while shard locks are held.
type ShardArcs<M> = Vec<(SpaceId, Arc<Mutex<Space<M>>>)>;

impl<'a, M> SpaceStore<M> for BTreeMap<SpaceId, MutexGuard<'a, Space<M>>> {
    fn get_space(&self, id: SpaceId) -> Option<&Space<M>> {
        self.get(&id).map(|g| &**g)
    }
}

/// Mutable access to the locked shards of one delivery — what the
/// `*_locked` internals need beyond [`SpaceStore`]'s read view.
trait GuardStore<M>: SpaceStore<M> {
    fn get_space_mut(&mut self, id: SpaceId) -> Option<&mut Space<M>>;
}

impl<'a, M> GuardStore<M> for BTreeMap<SpaceId, MutexGuard<'a, Space<M>>> {
    fn get_space_mut(&mut self, id: SpaceId) -> Option<&mut Space<M>> {
        self.get_mut(&id).map(|g| &mut **g)
    }
}

/// Exactly one locked shard — the delivery fast path. A scope with no
/// visible sub-spaces (`meta.edges` empty for it) has a singleton lock
/// set, so sends and broadcasts skip the closure walk and the guard map
/// and lock the one mutex directly. The resolution walk cannot leave the
/// scope (no space members), so a one-entry store is a complete view.
struct SingleGuard<'a, M> {
    id: SpaceId,
    guard: MutexGuard<'a, Space<M>>,
}

impl<'a, M> SpaceStore<M> for SingleGuard<'a, M> {
    fn get_space(&self, id: SpaceId) -> Option<&Space<M>> {
        (id == self.id).then(|| &*self.guard)
    }
}

impl<'a, M> GuardStore<M> for SingleGuard<'a, M> {
    fn get_space_mut(&mut self, id: SpaceId) -> Option<&mut Space<M>> {
        (id == self.id).then(|| &mut *self.guard)
    }
}

/// Clones the shard `Arc`s for `ids` (missing spaces are skipped — the
/// resolution walks treat them like remote stubs), sorted ascending so a
/// subsequent [`lock_all`] respects the global lock order.
fn arcs_for<M>(meta: &Meta<M>, ids: impl IntoIterator<Item = SpaceId>) -> ShardArcs<M> {
    let set: BTreeSet<SpaceId> = ids.into_iter().collect();
    set.into_iter()
        .filter_map(|id| meta.shards.get(&id).map(|sh| (id, sh.space.clone())))
        .collect()
}

/// Locks every shard in `arcs`, in the ascending id order `arcs` is built
/// in — one of the two places shard mutexes are acquired (the other is the
/// singleton fast path in [`lock_single`]).
fn lock_all<M>(arcs: &ShardArcs<M>) -> Guards<'_, M> {
    arcs.iter().map(|(id, m)| (*id, m.lock())).collect()
}

/// Delivery fast path: when `scope` has no visible sub-spaces its lock set
/// is exactly `{scope}`, so skip the closure walk and the guard map and
/// lock the one shard in place (a singleton set trivially satisfies the
/// ascending-order protocol). Returns the shard's metric handles alongside
/// so callers bump per-space counters without a second directory lookup.
fn lock_single<'a, M>(
    meta: &'a Meta<M>,
    scope: SpaceId,
) -> Option<(SingleGuard<'a, M>, &'a ShardMetrics)> {
    if meta.edges.get(&scope).is_some_and(|subs| !subs.is_empty()) {
        return None;
    }
    let sh = meta.shards.get(&scope)?;
    Some((
        SingleGuard {
            id: scope,
            guard: sh.space.lock(),
        },
        &sh.m,
    ))
}

fn member_guard<M>(meta: &Meta<M>, member: MemberId) -> Result<&Guard> {
    match member {
        MemberId::Actor(a) => Ok(&meta.actors.get(&a).ok_or(Error::NoSuchActor(a))?.guard),
        MemberId::Space(s) => Ok(&meta.shards.get(&s).ok_or(Error::NoSuchSpace(s))?.guard),
    }
}

/// Removes a space from the meta tables and from every locked parent —
/// the sharded counterpart of `Registry::remove_space_internal`. The
/// caller must hold the space's own shard and all its parents in `guards`.
fn remove_space_locked<M>(meta: &mut Meta<M>, guards: &mut Guards<'_, M>, id: SpaceId) {
    if meta.shards.remove(&id).is_some() {
        // Drop reverse edges of its members.
        if let Some(sp) = guards.remove(&id) {
            for member in sp.members().keys() {
                if let Some(set) = meta.containers.get_mut(member) {
                    set.remove(&id);
                    if set.is_empty() {
                        meta.containers.remove(member);
                    }
                }
            }
        }
        meta.edges.remove(&id);
    }
    // Remove the space from any space it was visible in.
    let as_member = MemberId::Space(id);
    if let Some(parents) = meta.containers.remove(&as_member) {
        for p in parents {
            if let Some(ps) = guards.get_mut(&p) {
                ps.remove_member(as_member);
            }
            if let Some(e) = meta.edges.get_mut(&p) {
                e.remove(&id);
                if e.is_empty() {
                    meta.edges.remove(&p);
                }
            }
        }
    }
    // Actors hosted in the destroyed space are re-hosted to the root so
    // later sends from them still have a resolution scope.
    for rec in meta.actors.values_mut() {
        if rec.host == id {
            rec.host = ROOT_SPACE;
        }
    }
}

/// Removes an actor entirely (death) — the sharded counterpart of
/// `Registry::remove_actor_internal`. The caller must hold every space the
/// actor is visible in.
fn remove_actor_locked<M>(meta: &mut Meta<M>, guards: &mut Guards<'_, M>, id: ActorId) {
    meta.actors.remove(&id);
    let as_member = MemberId::Actor(id);
    if let Some(parents) = meta.containers.remove(&as_member) {
        for p in parents {
            if let Some(ps) = guards.get_mut(&p) {
                ps.remove_member(as_member);
            }
        }
    }
    meta.roots.remove(&id);
}

/// The ActorSpace universe for one node, sharded by space. Same observable
/// semantics as [`Registry`] (the differential oracle enforces this), but
/// every operation takes `&self` and disjoint spaces never contend.
pub struct ShardedRegistry<M> {
    ids: IdGen,
    meta: RwLock<Meta<M>>,
    /// Policy template applied to newly created spaces.
    default_policy: ManagerPolicy,
    obs: Arc<Obs>,
    node: u16,
    m: CoreMetrics,
}

impl<M: Clone> ShardedRegistry<M> {
    /// Creates a sharded coordinator whose root space (§7.1) uses
    /// `default_policy`, reporting to a private default observer (see
    /// [`ShardedRegistry::set_obs`]).
    pub fn new(default_policy: ManagerPolicy) -> ShardedRegistry<M> {
        let obs = Obs::shared(ObsConfig::default());
        let m = CoreMetrics::resolve(&obs, 0);
        let reg = ShardedRegistry {
            ids: IdGen::default(),
            meta: RwLock::new(
                LockClass::Meta,
                Meta {
                    shards: BTreeMap::new(),
                    actors: HashMap::new(),
                    containers: HashMap::new(),
                    edges: HashMap::new(),
                    roots: HashSet::new(),
                },
            ),
            default_policy,
            obs,
            node: 0,
            m,
        };
        let root = reg.mk_shard(ROOT_SPACE, Guard::Open);
        reg.meta.write().shards.insert(ROOT_SPACE, root);
        reg
    }

    /// Creates a coordinator whose id generator starts at `base` — used by
    /// the cluster layer to give each node a disjoint address range.
    pub fn with_id_base(default_policy: ManagerPolicy, base: u64) -> ShardedRegistry<M> {
        let mut r = ShardedRegistry::new(default_policy);
        r.ids = IdGen::new(base.max(1));
        r
    }

    /// Redirects metrics and trace events to `obs`, stamped with `node`,
    /// re-resolving every shard's per-space handles.
    pub fn set_obs(&mut self, obs: Arc<Obs>, node: u16) {
        self.m = CoreMetrics::resolve(&obs, node);
        {
            let mut meta = self.meta.write();
            for (&id, sh) in meta.shards.iter_mut() {
                sh.m = ShardMetrics::resolve(&obs, node, id);
            }
        }
        self.obs = obs;
        self.node = node;
    }

    /// The observer receiving this coordinator's telemetry.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The node label stamped on this coordinator's telemetry.
    pub fn node_label(&self) -> u16 {
        self.node
    }

    fn mk_shard(&self, id: SpaceId, guard: Guard) -> ShardHandle<M> {
        ShardHandle {
            space: Arc::new(Mutex::new(
                LockClass::Shard(id.0),
                Space::new(id, guard, self.default_policy.clone()),
            )),
            guard,
            m: ShardMetrics::resolve(&self.obs, self.node, id),
        }
    }

    /// §5.7 validator: under `--features lockcheck`, re-verifies the
    /// visibility relation is still acyclic after a topology mutation.
    /// Compiles to nothing otherwise (`ENABLED` is a constant false).
    fn validate_dag_after_mutation(meta: &Meta<M>, op: &str) {
        if !actorspace_lockcheck::ENABLED {
            return;
        }
        let nodes: HashSet<SpaceId> = meta.shards.keys().copied().collect();
        assert!(
            visibility::is_dag_edges(&nodes, &meta.edges),
            "lockcheck: §5.7 invariant violated: visibility relation has a cycle after `{op}`"
        );
    }

    // ------------------------------------------------------------------
    // Creation and destruction
    // ------------------------------------------------------------------

    /// `create_actorSpace(capability)` (§5.2): a fresh space, in a fresh
    /// shard.
    pub fn create_space(&self, cap: Option<&Capability>) -> SpaceId {
        let _op = enter_coordinator("ShardedRegistry::create_space");
        let id = self.ids.next_space();
        let sh = self.mk_shard(id, Guard::from_creation(cap));
        self.meta.write().shards.insert(id, sh);
        id
    }

    /// Registers a new actor created in `host` (§7.1).
    pub fn create_actor(&self, host: SpaceId, cap: Option<&Capability>) -> Result<ActorId> {
        let _op = enter_coordinator("ShardedRegistry::create_actor");
        let mut meta = self.meta.write();
        if !meta.shards.contains_key(&host) {
            return Err(Error::NoSuchSpace(host));
        }
        let id = self.ids.next_actor();
        meta.actors.insert(
            id,
            ActorRecord {
                guard: Guard::from_creation(cap),
                host,
            },
        );
        Ok(id)
    }

    /// Allocates a fresh actor id without creating a record (§7.3 replica
    /// protocol).
    pub fn allocate_actor_id(&self) -> ActorId {
        self.ids.next_actor()
    }

    /// Allocates a fresh space id without creating a record.
    pub fn allocate_space_id(&self) -> SpaceId {
        self.ids.next_space()
    }

    /// Inserts an actor record with a caller-chosen id (replica apply).
    /// Returns false if the id was already present.
    pub fn insert_actor_record(&self, id: ActorId, host: SpaceId, guard: Guard) -> bool {
        let _op = enter_coordinator("ShardedRegistry::insert_actor_record");
        let mut meta = self.meta.write();
        if meta.actors.contains_key(&id) {
            return false;
        }
        meta.actors.insert(id, ActorRecord { guard, host });
        true
    }

    /// Inserts a space record with a caller-chosen id (replica apply).
    /// Returns false if present.
    pub fn insert_space_record(&self, id: SpaceId, guard: Guard) -> bool {
        let _op = enter_coordinator("ShardedRegistry::insert_space_record");
        let mut meta = self.meta.write();
        if meta.shards.contains_key(&id) {
            return false;
        }
        let sh = self.mk_shard(id, guard);
        meta.shards.insert(id, sh);
        true
    }

    /// Removes an actor (death / remote destroy event).
    pub fn remove_actor(&self, id: ActorId) {
        let _op = enter_coordinator("ShardedRegistry::remove_actor");
        let mut meta = self.meta.write();
        let parents: BTreeSet<SpaceId> = meta
            .containers
            .get(&MemberId::Actor(id))
            .into_iter()
            .flatten()
            .copied()
            .collect();
        let arcs = arcs_for(&meta, parents);
        let mut guards = lock_all(&arcs);
        remove_actor_locked(&mut meta, &mut guards, id);
    }

    /// Purges every actor whose raw id lies in `[lo, hi)` — the failover
    /// sweep for a crashed node. Returns how many actors were purged.
    pub fn purge_actor_range(&self, lo: u64, hi: u64) -> usize {
        let _op = enter_coordinator("ShardedRegistry::purge_actor_range");
        let mut meta = self.meta.write();
        let doomed: Vec<ActorId> = meta
            .actors
            .keys()
            .filter(|a| (lo..hi).contains(&a.0))
            .copied()
            .collect();
        let mut parents: BTreeSet<SpaceId> = BTreeSet::new();
        for a in &doomed {
            parents.extend(
                meta.containers
                    .get(&MemberId::Actor(*a))
                    .into_iter()
                    .flatten()
                    .copied(),
            );
        }
        let arcs = arcs_for(&meta, parents);
        let mut guards = lock_all(&arcs);
        for &a in &doomed {
            remove_actor_locked(&mut meta, &mut guards, a);
        }
        doomed.len()
    }

    /// Raises the id allocator so future ids are minted past `raw`.
    pub fn ensure_id_floor(&self, raw: u64) {
        self.ids.ensure_floor(raw);
    }

    /// Destroys a space (§7.1). Requires `Rights::MANAGE` when guarded.
    /// Locks the doomed shard plus every parent it is visible in.
    pub fn destroy_space(&self, id: SpaceId, cap: Option<&Capability>) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::destroy_space");
        if id == ROOT_SPACE {
            return Err(Error::RootImmortal);
        }
        let mut meta = self.meta.write();
        let sh = meta.shards.get(&id).ok_or(Error::NoSuchSpace(id))?;
        sh.guard.check(cap, Rights::MANAGE)?;
        let mut set: BTreeSet<SpaceId> = BTreeSet::new();
        set.insert(id);
        if let Some(parents) = meta.containers.get(&MemberId::Space(id)) {
            set.extend(parents.iter().copied());
        }
        let arcs = arcs_for(&meta, set);
        let mut guards = lock_all(&arcs);
        remove_space_locked(&mut meta, &mut guards, id);
        Self::validate_dag_after_mutation(&meta, "destroy_space");
        Ok(())
    }

    // ------------------------------------------------------------------
    // Visibility (§5.4)
    // ------------------------------------------------------------------

    /// The lock set for an operation that changes what is matchable in
    /// `space`: every space that can observe the change (the containment
    /// ancestors of `space`, §7.1) together with everything those spaces'
    /// resolutions can descend into. Computed from the meta tables alone.
    fn wake_lock_set(meta: &Meta<M>, space: SpaceId) -> BTreeSet<SpaceId> {
        let mut set = BTreeSet::new();
        for s in visibility::ancestors(&meta.containers, space) {
            set.extend(visibility::reachable(&meta.edges, s));
        }
        set
    }

    /// `make_visible(a, attributes @ space, capability)` (§5.4). Locks the
    /// full wake closure (plus, for a space member, the child's own
    /// subtree, which becomes reachable by the insertion), runs every check
    /// under those locks, and only then mutates — so a failed check never
    /// needs rollback.
    pub fn make_visible(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
        sink: Sink<'_, M>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::make_visible");
        let mut meta = self.meta.write();
        member_guard(&meta, member)?.check(cap, Rights::VISIBILITY)?;
        if !meta.shards.contains_key(&space) {
            return Err(Error::NoSuchSpace(space));
        }
        let mut set = Self::wake_lock_set(&meta, space);
        if let MemberId::Space(child) = member {
            set.extend(visibility::reachable(&meta.edges, child));
        }
        let arcs = arcs_for(&meta, set);
        let mut guards = lock_all(&arcs);
        // §5.7: reject cycles *before* inserting — unless the space's
        // manager tolerates cycles (resolution then dedups visited states).
        if let MemberId::Space(child) = member {
            let forbid = guards
                .get(&space)
                .is_some_and(|sp| sp.policy().cycles == CyclePolicy::Forbid);
            if forbid && visibility::would_cycle_edges(&meta.edges, child, space) {
                return Err(Error::WouldCycle {
                    child,
                    parent: space,
                });
            }
        }
        {
            let sp = guards.get_mut(&space).expect("scope is in the lock set");
            let authorized = {
                let _cb = enter_callback("Manager::authorize_visibility");
                sp.manager_mut().authorize_visibility(member, &attrs)
            };
            if !authorized {
                return Err(Error::Denied(GuardError::Missing));
            }
            sp.add_member(member, attrs);
            let _cb = enter_callback("Manager::on_change");
            sp.manager_mut().on_change(member);
        }
        meta.containers.entry(member).or_default().insert(space);
        if let MemberId::Space(child) = member {
            meta.edges.entry(space).or_default().insert(child);
        }
        Self::validate_dag_after_mutation(&meta, "make_visible");
        self.wake_locked(&meta, &mut guards, space, sink);
        Ok(())
    }

    /// `make_invisible(actor, space, capability)`: removal from `space`
    /// suffices for all enclosing spaces (they reach members only through
    /// it), so only this one shard is locked.
    pub fn make_invisible(
        &self,
        member: MemberId,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::make_invisible");
        let mut meta = self.meta.write();
        member_guard(&meta, member)?.check(cap, Rights::VISIBILITY)?;
        if !meta.shards.contains_key(&space) {
            return Err(Error::NoSuchSpace(space));
        }
        let arcs = arcs_for(&meta, [space]);
        let mut guards = lock_all(&arcs);
        {
            let sp = guards.get_mut(&space).expect("existence checked above");
            if !sp.remove_member(member) {
                return Err(Error::NotVisible { member, space });
            }
            let _cb = enter_callback("Manager::on_change");
            sp.manager_mut().on_change(member);
        }
        if let Some(setm) = meta.containers.get_mut(&member) {
            setm.remove(&space);
            if setm.is_empty() {
                meta.containers.remove(&member);
            }
        }
        if let MemberId::Space(child) = member {
            if let Some(e) = meta.edges.get_mut(&space) {
                e.remove(&child);
                if e.is_empty() {
                    meta.edges.remove(&space);
                }
            }
        }
        Self::validate_dag_after_mutation(&meta, "make_invisible");
        Ok(())
    }

    /// `change_attributes(member, attrs @ space, capability)` (§5.4). The
    /// topology is unchanged, so meta is only read-locked; the wake closure
    /// of `space` is still locked because new matches may wake suspended
    /// messages in any ancestor.
    pub fn change_attributes(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
        sink: Sink<'_, M>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::change_attributes");
        let meta = self.meta.read();
        member_guard(&meta, member)?.check(cap, Rights::ATTRIBUTES)?;
        if !meta.shards.contains_key(&space) {
            return Err(Error::NoSuchSpace(space));
        }
        let set = Self::wake_lock_set(&meta, space);
        let arcs = arcs_for(&meta, set);
        let mut guards = lock_all(&arcs);
        {
            let sp = guards.get_mut(&space).expect("scope is in the lock set");
            let authorized = {
                let _cb = enter_callback("Manager::authorize_visibility");
                sp.manager_mut().authorize_visibility(member, &attrs)
            };
            if !authorized {
                return Err(Error::Denied(GuardError::Missing));
            }
            if !sp.set_attributes(member, attrs) {
                return Err(Error::NotVisible { member, space });
            }
            let _cb = enter_callback("Manager::on_change");
            sp.manager_mut().on_change(member);
        }
        self.wake_locked(&meta, &mut guards, space, sink);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Manager customization (§8)
    // ------------------------------------------------------------------

    /// Replaces a space's policy table. Requires `Rights::MANAGE`.
    pub fn set_space_policy(
        &self,
        space: SpaceId,
        policy: ManagerPolicy,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::set_space_policy");
        let meta = self.meta.read();
        let sh = meta.shards.get(&space).ok_or(Error::NoSuchSpace(space))?;
        sh.guard.check(cap, Rights::MANAGE)?;
        sh.space.lock().set_policy(policy);
        Ok(())
    }

    /// Installs a custom manager on a space. Requires `Rights::MANAGE`.
    pub fn set_space_manager(
        &self,
        space: SpaceId,
        manager: Box<dyn Manager>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::set_space_manager");
        let meta = self.meta.read();
        let sh = meta.shards.get(&space).ok_or(Error::NoSuchSpace(space))?;
        sh.guard.check(cap, Rights::MANAGE)?;
        sh.space.lock().set_manager(manager);
        Ok(())
    }

    /// Installs (or clears) a custom matching rule on a space. Requires
    /// `Rights::MANAGE`.
    pub fn set_match_filter(
        &self,
        space: SpaceId,
        filter: Option<crate::space::MatchFilter>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::set_match_filter");
        let meta = self.meta.read();
        let sh = meta.shards.get(&space).ok_or(Error::NoSuchSpace(space))?;
        sh.guard.check(cap, Rights::MANAGE)?;
        sh.space.lock().set_match_filter(filter);
        Ok(())
    }

    /// Reports an actor's load for `LeastLoaded` arbitration in `space`.
    pub fn report_load(&self, space: SpaceId, actor: ActorId, load: u64) -> Result<()> {
        let _op = enter_coordinator("ShardedRegistry::report_load");
        let meta = self.meta.read();
        let sh = meta.shards.get(&space).ok_or(Error::NoSuchSpace(space))?;
        sh.space.lock().selector_mut().set_load(actor, load);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Roots (external handles) — GC anchoring
    // ------------------------------------------------------------------

    /// Marks an actor as externally referenced (a live handle exists).
    pub fn add_root(&self, a: ActorId) {
        let _op = enter_coordinator("ShardedRegistry::add_root");
        self.meta.write().roots.insert(a);
    }

    /// Clears the external-reference mark.
    pub fn remove_root(&self, a: ActorId) {
        let _op = enter_coordinator("ShardedRegistry::remove_root");
        self.meta.write().roots.remove(&a);
    }

    // ------------------------------------------------------------------
    // Communication (§5.3, §5.6)
    // ------------------------------------------------------------------

    /// `send(pattern@space, message)` — deliver to one non-deterministically
    /// chosen matching actor (§5.3). Locks the visibility closure of
    /// `space` only.
    pub fn send(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
    ) -> Result<Disposition> {
        let _op = enter_coordinator("ShardedRegistry::send");
        let trace = self.obs.tracer.begin();
        self.m.sends.inc();
        self.obs
            .tracer
            .record(trace, self.node, Stage::Submitted { broadcast: false });
        let meta = self.meta.read();
        if let Some(single) = lock_single(&meta, space) {
            single.1.sends.inc();
            let mut single = single.0;
            return self.send_locked(&meta, &mut single, pattern, space, msg, sink, trace);
        }
        let arcs = arcs_for(&meta, visibility::reachable(&meta.edges, space));
        let mut guards = lock_all(&arcs);
        if let Some(sh) = meta.shards.get(&space) {
            sh.m.sends.inc();
        }
        self.send_locked(&meta, &mut guards, pattern, space, msg, sink, trace)
    }

    /// `broadcast(pattern@space, message)` — deliver to all matching actors
    /// (§5.3), persisting under [`UnmatchedPolicy::Persistent`] (§5.6).
    pub fn broadcast(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
    ) -> Result<Disposition> {
        let _op = enter_coordinator("ShardedRegistry::broadcast");
        let trace = self.obs.tracer.begin();
        self.m.broadcasts.inc();
        self.obs
            .tracer
            .record(trace, self.node, Stage::Submitted { broadcast: true });
        let meta = self.meta.read();
        if let Some(single) = lock_single(&meta, space) {
            single.1.broadcasts.inc();
            let mut single = single.0;
            return self.broadcast_locked(&meta, &mut single, pattern, space, msg, sink, trace);
        }
        let arcs = arcs_for(&meta, visibility::reachable(&meta.edges, space));
        let mut guards = lock_all(&arcs);
        if let Some(sh) = meta.shards.get(&space) {
            sh.m.broadcasts.inc();
        }
        self.broadcast_locked(&meta, &mut guards, pattern, space, msg, sink, trace)
    }

    /// Re-resolves a previously routed message (failover). The existing
    /// trace is continued; node- and space-level submit counters are not
    /// re-incremented (matching [`Registry::resend`]).
    pub fn resend(&self, route: &Route, msg: M, sink: Sink<'_, M>) -> Result<Disposition> {
        let _op = enter_coordinator("ShardedRegistry::resend");
        let meta = self.meta.read();
        if let Some((mut single, _)) = lock_single(&meta, route.space) {
            return match route.kind {
                DeliveryKind::Send => self.send_locked(
                    &meta,
                    &mut single,
                    &route.pattern,
                    route.space,
                    msg,
                    sink,
                    route.trace,
                ),
                DeliveryKind::Broadcast => self.broadcast_locked(
                    &meta,
                    &mut single,
                    &route.pattern,
                    route.space,
                    msg,
                    sink,
                    route.trace,
                ),
            };
        }
        let arcs = arcs_for(&meta, visibility::reachable(&meta.edges, route.space));
        let mut guards = lock_all(&arcs);
        match route.kind {
            DeliveryKind::Send => self.send_locked(
                &meta,
                &mut guards,
                &route.pattern,
                route.space,
                msg,
                sink,
                route.trace,
            ),
            DeliveryKind::Broadcast => self.broadcast_locked(
                &meta,
                &mut guards,
                &route.pattern,
                route.space,
                msg,
                sink,
                route.trace,
            ),
        }
    }

    /// Cancels every persistent broadcast registered on `space`. Requires
    /// `Rights::MANAGE` when guarded.
    pub fn cancel_persistent(&self, space: SpaceId, cap: Option<&Capability>) -> Result<usize> {
        let _op = enter_coordinator("ShardedRegistry::cancel_persistent");
        let meta = self.meta.read();
        let sh = meta.shards.get(&space).ok_or(Error::NoSuchSpace(space))?;
        sh.guard.check(cap, Rights::MANAGE)?;
        let n = sh.space.lock().clear_persistent();
        Ok(n)
    }

    /// Resolution with exact-prefix-index accounting: when the literal
    /// fast path applies (E12), the scope shard's per-space hit/miss
    /// counter is bumped by outcome.
    fn resolve_counted(
        &self,
        meta: &Meta<M>,
        guards: &impl GuardStore<M>,
        pattern: &Pattern,
        scope: SpaceId,
    ) -> Result<Vec<ActorId>> {
        let via_index = pattern.as_literal().is_some()
            && guards
                .get_space(scope)
                .is_some_and(|sp| sp.policy().use_literal_index);
        let out = matching::resolve_actors(guards, pattern, scope)?;
        if via_index {
            if let Some(sh) = meta.shards.get(&scope) {
                if out.is_empty() {
                    sh.m.index_misses.inc();
                } else {
                    sh.m.index_hits.inc();
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)] // internal delivery plumbing carries its full context
    fn send_locked(
        &self,
        meta: &Meta<M>,
        guards: &mut impl GuardStore<M>,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
        trace: TraceId,
    ) -> Result<Disposition> {
        let t0 = if trace.is_some() {
            self.obs.now_nanos()
        } else {
            0
        };
        let candidates = self.resolve_counted(meta, guards, pattern, space)?;
        if !candidates.is_empty() {
            self.m.matched.inc();
            if trace.is_some() {
                self.m
                    .match_ns
                    .record(self.obs.now_nanos().saturating_sub(t0));
                self.obs.tracer.record(
                    trace,
                    self.node,
                    Stage::Matched {
                        candidates: candidates.len() as u32,
                    },
                );
            }
            let pick = {
                let sp = guards
                    .get_space_mut(space)
                    .ok_or(Error::NoSuchSpace(space))?;
                let _cb = enter_callback("Manager::choose");
                match sp.manager_mut().choose(&candidates) {
                    Some(choice) => choice,
                    None => sp.selector_mut().select(&candidates),
                }
            };
            let route = Route {
                pattern: pattern.clone(),
                space,
                kind: DeliveryKind::Send,
                trace,
            };
            let _cb = enter_callback("sink");
            sink(pick, msg, Some(&route));
            return Ok(Disposition::Delivered(1));
        }
        let policy = {
            let sp = guards
                .get_space_mut(space)
                .ok_or(Error::NoSuchSpace(space))?;
            let _cb = enter_callback("Manager::unmatched_send");
            sp.manager_mut()
                .unmatched_send()
                .unwrap_or(sp.policy().unmatched_send)
        };
        match policy {
            UnmatchedPolicy::Suspend | UnmatchedPolicy::Persistent => {
                self.m.suspended.inc();
                self.obs.tracer.record(trace, self.node, Stage::Suspended);
                let since_nanos = self.obs.now_nanos();
                guards
                    .get_space_mut(space)
                    .ok_or(Error::NoSuchSpace(space))?
                    .push_pending(Pending {
                        pattern: pattern.clone(),
                        msg,
                        kind: DeliveryKind::Send,
                        trace,
                        since_nanos,
                    });
                Ok(Disposition::Suspended)
            }
            UnmatchedPolicy::Discard => {
                self.m.discarded.inc();
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Ok(Disposition::Discarded)
            }
            UnmatchedPolicy::Error => {
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Err(Error::NoMatch {
                    pattern: pattern.text().to_owned(),
                    space,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal delivery plumbing carries its full context
    fn broadcast_locked(
        &self,
        meta: &Meta<M>,
        guards: &mut impl GuardStore<M>,
        pattern: &Pattern,
        space: SpaceId,
        msg: M,
        sink: Sink<'_, M>,
        trace: TraceId,
    ) -> Result<Disposition> {
        let t0 = if trace.is_some() {
            self.obs.now_nanos()
        } else {
            0
        };
        let candidates = self.resolve_counted(meta, guards, pattern, space)?;
        let policy = {
            let sp = guards
                .get_space_mut(space)
                .ok_or(Error::NoSuchSpace(space))?;
            let _cb = enter_callback("Manager::unmatched_broadcast");
            sp.manager_mut()
                .unmatched_broadcast()
                .unwrap_or(sp.policy().unmatched_broadcast)
        };
        if !candidates.is_empty() {
            self.m.matched.add(candidates.len() as u64);
            if trace.is_some() {
                self.m
                    .match_ns
                    .record(self.obs.now_nanos().saturating_sub(t0));
                self.obs.tracer.record(
                    trace,
                    self.node,
                    Stage::Matched {
                        candidates: candidates.len() as u32,
                    },
                );
            }
        }
        let route = Route {
            pattern: pattern.clone(),
            space,
            kind: DeliveryKind::Broadcast,
            trace,
        };
        if policy == UnmatchedPolicy::Persistent {
            {
                let _cb = enter_callback("sink");
                for &c in &candidates {
                    sink(c, msg.clone(), Some(&route));
                }
            }
            let n = candidates.len();
            guards
                .get_space_mut(space)
                .ok_or(Error::NoSuchSpace(space))?
                .push_persistent(PersistentBroadcast {
                    pattern: pattern.clone(),
                    msg,
                    delivered: candidates.into_iter().collect(),
                });
            return Ok(Disposition::Persistent(n));
        }
        if !candidates.is_empty() {
            let n = candidates.len();
            let _cb = enter_callback("sink");
            for c in candidates {
                sink(c, msg.clone(), Some(&route));
            }
            return Ok(Disposition::Delivered(n));
        }
        match policy {
            UnmatchedPolicy::Suspend => {
                self.m.suspended.inc();
                self.obs.tracer.record(trace, self.node, Stage::Suspended);
                let since_nanos = self.obs.now_nanos();
                guards
                    .get_space_mut(space)
                    .ok_or(Error::NoSuchSpace(space))?
                    .push_pending(Pending {
                        pattern: pattern.clone(),
                        msg,
                        kind: DeliveryKind::Broadcast,
                        trace,
                        since_nanos,
                    });
                Ok(Disposition::Suspended)
            }
            UnmatchedPolicy::Discard => {
                self.m.discarded.inc();
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Ok(Disposition::Discarded)
            }
            UnmatchedPolicy::Error => {
                self.obs
                    .tracer
                    .record(trace, self.node, Stage::DeadLettered);
                Err(Error::NoMatch {
                    pattern: pattern.text().to_owned(),
                    space,
                })
            }
            UnmatchedPolicy::Persistent => unreachable!("handled above"),
        }
    }

    /// Retries suspended and persistent messages after a visibility or
    /// attribute change in `changed`, sweeping the affected queues in
    /// ascending id order (cross-space sweep order is unspecified in the
    /// single-lock registry, so any deterministic order is equivalent).
    fn wake_locked(
        &self,
        meta: &Meta<M>,
        guards: &mut Guards<'_, M>,
        changed: SpaceId,
        sink: Sink<'_, M>,
    ) {
        let mut affected: Vec<SpaceId> = visibility::ancestors(&meta.containers, changed)
            .into_iter()
            .collect();
        affected.sort_unstable();
        for s in affected {
            self.retry_space_locked(meta, guards, s, &mut *sink);
        }
    }

    fn retry_space_locked(
        &self,
        meta: &Meta<M>,
        guards: &mut Guards<'_, M>,
        space: SpaceId,
        sink: Sink<'_, M>,
    ) {
        // --- Suspended messages (§5.6) ---
        let pending = match guards.get_mut(&space) {
            Some(sp) if !sp.pending().is_empty() => sp.take_pending(),
            _ => Vec::new(),
        };
        let mut still_waiting = Vec::new();
        for p in pending {
            let candidates = self
                .resolve_counted(meta, guards, &p.pattern, space)
                .unwrap_or_default();
            if candidates.is_empty() {
                still_waiting.push(p);
                continue;
            }
            self.m.woken.inc();
            self.m
                .dwell_ns
                .record(self.obs.now_nanos().saturating_sub(p.since_nanos));
            self.obs.tracer.record(p.trace, self.node, Stage::Woken);
            let route = Route {
                pattern: p.pattern.clone(),
                space,
                kind: p.kind,
                trace: p.trace,
            };
            match p.kind {
                DeliveryKind::Send => {
                    let pick = guards.get_mut(&space).map(|sp| {
                        let _cb = enter_callback("Manager::choose");
                        match sp.manager_mut().choose(&candidates) {
                            Some(choice) => choice,
                            None => sp.selector_mut().select(&candidates),
                        }
                    });
                    if let Some(pick) = pick {
                        let _cb = enter_callback("sink");
                        sink(pick, p.msg, Some(&route));
                    }
                }
                DeliveryKind::Broadcast => {
                    let _cb = enter_callback("sink");
                    for c in candidates {
                        sink(c, p.msg.clone(), Some(&route));
                    }
                }
            }
        }
        if !still_waiting.is_empty() {
            if let Some(sp) = guards.get_mut(&space) {
                for p in still_waiting {
                    sp.push_pending(p);
                }
            }
        }

        // --- Persistent broadcasts: exactly-once to new matches (§5.6) ---
        let mut persistent = match guards.get_mut(&space) {
            Some(sp) if !sp.persistent().is_empty() => std::mem::take(sp.persistent_mut()),
            _ => return,
        };
        for pb in &mut persistent {
            let candidates = self
                .resolve_counted(meta, guards, &pb.pattern, space)
                .unwrap_or_default();
            // Late persistent deliveries are not tied back to the original
            // broadcast's trace (see `Registry::retry_space`).
            let route = Route {
                pattern: pb.pattern.clone(),
                space,
                kind: DeliveryKind::Broadcast,
                trace: TraceId::NONE,
            };
            let _cb = enter_callback("sink");
            for c in candidates {
                if pb.delivered.insert(c) {
                    sink(c, pb.msg.clone(), Some(&route));
                }
            }
        }
        if let Some(sp) = guards.get_mut(&space) {
            let mut merged = persistent;
            // Sinks do not re-enter the coordinator, but be defensive and
            // keep anything registered while the list was detached.
            merged.extend(std::mem::take(sp.persistent_mut()));
            *sp.persistent_mut() = merged;
        }
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolves `pattern` in `space` to the set of matching visible actors
    /// (see [`Registry::resolve`]); deduplicated and sorted.
    pub fn resolve(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<ActorId>> {
        let _op = enter_coordinator("ShardedRegistry::resolve");
        let meta = self.meta.read();
        let arcs = arcs_for(&meta, visibility::reachable(&meta.edges, space));
        let guards = lock_all(&arcs);
        self.resolve_counted(&meta, &guards, pattern, space)
    }

    /// Resolves `pattern` to matching *spaces* (§5.3 pattern-based space
    /// specification).
    pub fn resolve_spaces(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<SpaceId>> {
        let _op = enter_coordinator("ShardedRegistry::resolve_spaces");
        let meta = self.meta.read();
        let arcs = arcs_for(&meta, visibility::reachable(&meta.edges, space));
        let guards = lock_all(&arcs);
        matching::resolve_spaces_in(&guards, pattern, space)
    }

    /// Resolves a pattern-addressed space to exactly one space id (lowest
    /// id when several match).
    pub fn resolve_space_pattern(&self, pattern: &Pattern, scope: SpaceId) -> Result<SpaceId> {
        let spaces = self.resolve_spaces(pattern, scope)?;
        spaces.into_iter().next().ok_or_else(|| Error::NoMatch {
            pattern: pattern.text().to_owned(),
            space: scope,
        })
    }

    // ------------------------------------------------------------------
    // Garbage collection (§5.5)
    // ------------------------------------------------------------------

    /// Runs a stop-the-world mark/sweep collection (see
    /// [`Registry::collect_garbage`]): meta write-locked, every shard
    /// locked in ascending order.
    pub fn collect_garbage(&self, acquaintances: &dyn Fn(ActorId) -> Vec<MemberId>) -> GcReport {
        let _op = enter_coordinator("ShardedRegistry::collect_garbage");
        let mut meta = self.meta.write();
        let all: Vec<SpaceId> = meta.shards.keys().copied().collect();
        let arcs = arcs_for(&meta, all);
        let mut guards = lock_all(&arcs);

        let mut live_actors: HashSet<ActorId> = HashSet::new();
        let mut live_spaces: HashSet<SpaceId> = HashSet::new();
        let mut work: Vec<MemberId> = Vec::new();
        work.push(MemberId::Space(ROOT_SPACE));
        for &a in &meta.roots {
            work.push(MemberId::Actor(a));
        }
        while let Some(m) = work.pop() {
            match m {
                MemberId::Actor(a) => {
                    if !meta.actors.contains_key(&a) || !live_actors.insert(a) {
                        continue;
                    }
                    let _cb = enter_callback("gc::acquaintances");
                    work.extend(acquaintances(a));
                }
                MemberId::Space(s) => {
                    if !live_spaces.insert(s) {
                        continue;
                    }
                    let Some(space) = guards.get(&s) else {
                        continue;
                    };
                    work.extend(space.members().keys().copied());
                }
            }
        }

        let mut collected_actors: Vec<ActorId> = meta
            .actors
            .keys()
            .filter(|a| !live_actors.contains(a))
            .copied()
            .collect();
        let mut collected_spaces: Vec<SpaceId> = meta
            .shards
            .keys()
            .filter(|s| !live_spaces.contains(s))
            .copied()
            .collect();
        collected_actors.sort_unstable();
        collected_spaces.sort_unstable();

        for &s in &collected_spaces {
            remove_space_locked(&mut meta, &mut guards, s);
        }
        for &a in &collected_actors {
            remove_actor_locked(&mut meta, &mut guards, a);
        }
        Self::validate_dag_after_mutation(&meta, "collect_garbage");

        GcReport {
            collected_actors,
            collected_spaces,
            live_actors: meta.actors.len(),
            live_spaces: meta.shards.len(),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Does this space exist?
    pub fn space_exists(&self, id: SpaceId) -> bool {
        let _op = enter_coordinator("ShardedRegistry::space_exists");
        // Bind the guard: a tail-expression temporary would outlive `_op`.
        let meta = self.meta.read();
        meta.shards.contains_key(&id)
    }

    /// Does this actor exist?
    pub fn actor_exists(&self, id: ActorId) -> bool {
        let _op = enter_coordinator("ShardedRegistry::actor_exists");
        let meta = self.meta.read();
        meta.actors.contains_key(&id)
    }

    /// The actor's record (owned — the record lives behind the meta lock).
    pub fn actor(&self, id: ActorId) -> Result<ActorRecord> {
        let _op = enter_coordinator("ShardedRegistry::actor");
        let meta = self.meta.read();
        meta.actors.get(&id).cloned().ok_or(Error::NoSuchActor(id))
    }

    /// All spaces a member is directly visible in, sorted.
    pub fn containers_of(&self, member: MemberId) -> Vec<SpaceId> {
        let _op = enter_coordinator("ShardedRegistry::containers_of");
        let meta = self.meta.read();
        let mut v: Vec<SpaceId> = meta
            .containers
            .get(&member)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of live actors.
    pub fn actor_count(&self) -> usize {
        let _op = enter_coordinator("ShardedRegistry::actor_count");
        let meta = self.meta.read();
        meta.actors.len()
    }

    /// Number of live spaces (including the root).
    pub fn space_count(&self) -> usize {
        let _op = enter_coordinator("ShardedRegistry::space_count");
        let meta = self.meta.read();
        meta.shards.len()
    }

    /// Live actor ids, sorted.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        let _op = enter_coordinator("ShardedRegistry::actor_ids");
        let mut v: Vec<ActorId> = self.meta.read().actors.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Live space ids, ascending.
    pub fn space_ids(&self) -> Vec<SpaceId> {
        let _op = enter_coordinator("ShardedRegistry::space_ids");
        let meta = self.meta.read();
        meta.shards.keys().copied().collect()
    }

    /// An observability snapshot of one space.
    pub fn space_info(&self, id: SpaceId) -> Result<SpaceInfo> {
        let _op = enter_coordinator("ShardedRegistry::space_info");
        let meta = self.meta.read();
        let sh = meta.shards.get(&id).ok_or(Error::NoSuchSpace(id))?;
        let sp = sh.space.lock();
        let mut actor_members = 0usize;
        let mut space_members = 0usize;
        for m in sp.members().keys() {
            match m {
                MemberId::Actor(_) => actor_members += 1,
                MemberId::Space(_) => space_members += 1,
            }
        }
        Ok(SpaceInfo {
            id,
            actor_members,
            space_members,
            pending_messages: sp.pending().len(),
            persistent_broadcasts: sp.persistent().len(),
            guarded: !sp.guard().is_open(),
        })
    }

    /// Runs `f` against one locked space — the sharded replacement for
    /// [`Registry::space`]-style borrowing inspection.
    pub fn with_space<R>(&self, id: SpaceId, f: impl FnOnce(&Space<M>) -> R) -> Result<R> {
        let _op = enter_coordinator("ShardedRegistry::with_space");
        let meta = self.meta.read();
        let sh = meta.shards.get(&id).ok_or(Error::NoSuchSpace(id))?;
        let sp = sh.space.lock();
        let _cb = enter_callback("with_space closure");
        Ok(f(&sp))
    }

    /// Validates the visibility relation is acyclic — property-test hook.
    pub fn is_dag(&self) -> bool {
        let _op = enter_coordinator("ShardedRegistry::is_dag");
        let meta = self.meta.read();
        let nodes: HashSet<SpaceId> = meta.shards.keys().copied().collect();
        visibility::is_dag_edges(&nodes, &meta.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::path;
    use actorspace_capability::CapMinter;
    use actorspace_pattern::pattern;

    type Sharded = ShardedRegistry<&'static str>;

    fn reg() -> Sharded {
        let p = ManagerPolicy {
            selection_seed: Some(7),
            ..Default::default()
        };
        ShardedRegistry::new(p)
    }

    type Log = std::rc::Rc<std::cell::RefCell<Vec<(ActorId, &'static str)>>>;

    fn collector() -> (Log, impl FnMut(ActorId, &'static str, Option<&Route>)) {
        let v: Log = Default::default();
        let v2 = v.clone();
        (v, move |a, m, _| v2.borrow_mut().push((a, m)))
    }

    #[test]
    fn root_space_exists_at_birth() {
        let r = reg();
        assert!(r.space_exists(ROOT_SPACE));
        assert_eq!(r.space_count(), 1);
    }

    #[test]
    fn send_reaches_one_matching_actor() {
        let r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let (got, mut sink) = collector();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut sink)
            .unwrap();
        let d = r.send(&pattern("w"), s, "job", &mut sink).unwrap();
        assert_eq!(d, Disposition::Delivered(1));
        assert_eq!(got.borrow().as_slice(), &[(a, "job")]);
    }

    #[test]
    fn suspended_send_wakes_on_arrival() {
        let r = reg();
        let s = r.create_space(None);
        let (got, mut sink) = collector();
        assert_eq!(
            r.send(&pattern("late"), s, "early", &mut sink).unwrap(),
            Disposition::Suspended
        );
        assert_eq!(r.space_info(s).unwrap().pending_messages, 1);
        let a = r.create_actor(s, None).unwrap();
        r.make_visible(a.into(), vec![path("late")], s, None, &mut sink)
            .unwrap();
        assert_eq!(got.borrow().as_slice(), &[(a, "early")]);
        assert_eq!(r.space_info(s).unwrap().pending_messages, 0);
    }

    #[test]
    fn wake_crosses_shards_to_ancestors() {
        // Suspended in OUTER, woken by an arrival in the nested INNER shard.
        let r = reg();
        let outer = r.create_space(None);
        let inner = r.create_space(None);
        let (got, mut sink) = collector();
        r.make_visible(inner.into(), vec![path("pool")], outer, None, &mut sink)
            .unwrap();
        r.send(&pattern("pool/worker"), outer, "job", &mut sink)
            .unwrap();
        assert!(got.borrow().is_empty());
        let a = r.create_actor(inner, None).unwrap();
        r.make_visible(a.into(), vec![path("worker")], inner, None, &mut sink)
            .unwrap();
        assert_eq!(got.borrow().as_slice(), &[(a, "job")]);
    }

    #[test]
    fn cycles_rejected_through_edge_map() {
        let r = reg();
        let a = r.create_space(None);
        let b = r.create_space(None);
        let c = r.create_space(None);
        let (_, mut sink) = collector();
        r.make_visible(MemberId::Space(a), vec![path("a")], b, None, &mut sink)
            .unwrap();
        r.make_visible(MemberId::Space(b), vec![path("b")], c, None, &mut sink)
            .unwrap();
        let err = r
            .make_visible(MemberId::Space(c), vec![path("c")], a, None, &mut sink)
            .unwrap_err();
        assert_eq!(
            err,
            Error::WouldCycle {
                child: c,
                parent: a
            }
        );
        assert!(r.is_dag());
    }

    #[test]
    fn destroy_space_detaches_and_rehosts() {
        let r = reg();
        let parent = r.create_space(None);
        let child = r.create_space(None);
        let a = r.create_actor(child, None).unwrap();
        let (_, mut sink) = collector();
        r.make_visible(
            MemberId::Space(child),
            vec![path("c")],
            parent,
            None,
            &mut sink,
        )
        .unwrap();
        r.destroy_space(child, None).unwrap();
        assert!(!r.space_exists(child));
        assert!(r
            .with_space(parent, |sp| !sp.contains(MemberId::Space(child)))
            .unwrap());
        assert_eq!(r.actor(a).unwrap().host, ROOT_SPACE);
        assert!(r.is_dag());
    }

    #[test]
    fn guarded_space_checks_without_shard_lock() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let r = reg();
        let s = r.create_space(Some(&cap));
        assert!(matches!(r.destroy_space(s, None), Err(Error::Denied(_))));
        assert!(r.space_info(s).unwrap().guarded);
        r.destroy_space(s, Some(&cap)).unwrap();
    }

    #[test]
    fn per_space_counters_label_snapshots() {
        let r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let (_, mut sink) = collector();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut sink)
            .unwrap();
        r.send(&pattern("w"), s, "x", &mut sink).unwrap();
        r.send(&pattern("w"), s, "y", &mut sink).unwrap();
        r.broadcast(&pattern("w"), s, "z", &mut sink).unwrap();
        let snap = r.obs().snapshot();
        assert_eq!(
            snap.counter_for_space(names::CORE_SPACE_SENDS, 0, s.0),
            Some(2)
        );
        assert_eq!(
            snap.counter_for_space(names::CORE_SPACE_BROADCASTS, 0, s.0),
            Some(1)
        );
        // Literal sends took the index fast path: two hits.
        assert_eq!(
            snap.counter_for_space(names::CORE_INDEX_HITS, 0, s.0),
            Some(3)
        );
    }

    #[test]
    fn purge_range_sweeps_memberships() {
        let r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let b = r.create_actor(s, None).unwrap();
        let (_, mut sink) = collector();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut sink)
            .unwrap();
        r.make_visible(b.into(), vec![path("w")], s, None, &mut sink)
            .unwrap();
        assert_eq!(r.purge_actor_range(a.0, b.0), 1);
        assert!(!r.actor_exists(a));
        assert!(r.actor_exists(b));
        assert_eq!(r.resolve(&pattern("w"), s).unwrap(), vec![b]);
    }

    #[test]
    fn gc_mirrors_single_lock_collector() {
        let r = reg();
        let s = r.create_space(None);
        let a = r.create_actor(s, None).unwrap();
        let keep = r.create_actor(ROOT_SPACE, None).unwrap();
        r.add_root(keep);
        let (_, mut sink) = collector();
        r.make_visible(a.into(), vec![path("w")], s, None, &mut sink)
            .unwrap();
        let report = r.collect_garbage(&|_| Vec::new());
        assert_eq!(report.collected_spaces, vec![s]);
        assert_eq!(report.collected_actors, vec![a]);
        assert_eq!(report.live_actors, 1);
        assert_eq!(report.live_spaces, 1);
    }
}
