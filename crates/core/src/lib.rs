//! The ActorSpace core: the paper's contribution, runtime-agnostic.
//!
//! An *actorSpace* is "a computationally passive container of actors which
//! acts as a context for matching patterns" (§1). This crate implements the
//! full model of §5:
//!
//! * **Attributes and patterns** — attributes are [`Path`]s of atoms;
//!   destination patterns are regular expressions over atoms
//!   ([`actorspace_pattern`]). Matching is scoped to a space and descends
//!   through visible sub-spaces by joining attributes with `/`
//!   ([`Registry::resolve`]).
//! * **Visibility** — [`Registry::make_visible`],
//!   [`Registry::make_invisible`], [`Registry::change_attributes`], all
//!   guarded by capabilities (§5.4) and constrained to keep the
//!   space-visibility relation a DAG (§5.7).
//! * **Communication** — [`Registry::send`] (one non-deterministic
//!   recipient) and [`Registry::broadcast`] (all recipients), with the
//!   §5.6 unmatched-message policies: suspend (default), discard, error,
//!   and persistent exactly-once broadcast.
//! * **Managers** — per-space [`policy::ManagerPolicy`] tables and fully
//!   programmable [`manager::Manager`] hooks (§8).
//! * **Garbage collection** — mark/sweep over visibility and acquaintance
//!   edges ([`Registry::collect_garbage`], §5.5).
//!
//! The registry is generic over the message payload `M` and delivers
//! through caller-supplied sinks, so the same core backs the
//! single-node runtime (`actorspace-runtime`), the simulated cluster
//! (`actorspace-net`), and direct use in tests and benchmarks.
//!
//! ```
//! use actorspace_core::{Registry, policy::ManagerPolicy, Disposition};
//! use actorspace_atoms::path;
//! use actorspace_pattern::pattern;
//!
//! let mut reg: Registry<&str> = Registry::new(ManagerPolicy::default());
//! let pool = reg.create_space(None);
//! let worker = reg.create_actor(pool, None).unwrap();
//!
//! let mut deliveries = Vec::new();
//! let mut sink = |to, msg, _route: Option<&actorspace_core::Route>| {
//!     deliveries.push((to, msg));
//! };
//!
//! reg.make_visible(worker.into(), vec![path("worker/fast")], pool, None, &mut sink)
//!     .unwrap();
//! let d = reg.send(&pattern("worker/*"), pool, "job-1", &mut sink).unwrap();
//! assert_eq!(d, Disposition::Delivered(1));
//! assert_eq!(deliveries, vec![(worker, "job-1")]);
//! ```

#![deny(unsafe_code)]

pub mod delivery;
pub mod error;
pub mod gc;
pub mod ids;
pub mod manager;
pub mod managers;
pub mod matching;
pub mod policy;
pub mod registry;
pub mod shard;
pub mod space;
pub mod visibility;

pub use actorspace_atoms::{Atom, Path};
pub use actorspace_obs as obs;
pub use actorspace_obs::{Obs, ObsConfig, Stage, TraceId};
pub use actorspace_pattern::Pattern;
pub use delivery::{Disposition, Route};
pub use error::{Error, Result};
pub use gc::GcReport;
pub use ids::{ActorId, IdGen, MemberId, SpaceId, ROOT_SPACE};
pub use manager::{DefaultManager, Manager};
pub use policy::{CyclePolicy, ManagerPolicy, SelectionPolicy, Selector, UnmatchedPolicy};
pub use registry::{ActorRecord, Registry, Sink, SpaceInfo};
pub use shard::ShardedRegistry;
pub use space::{DeliveryKind, MatchFilter, Pending, PersistentBroadcast, Space};
