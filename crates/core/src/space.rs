//! The actorSpace container.
//!
//! "An actorSpace is a computationally passive container of actors and acts
//! as a context for matching patterns" (§5.2). A [`Space`] records which
//! members (actors and nested spaces) are visible in it and under which
//! attributes, plus the manager state that governs matching semantics:
//! policies, the recipient selector, suspended messages, and persistent
//! broadcasts.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use actorspace_atoms::Path;
use actorspace_capability::Guard;
use actorspace_pattern::Pattern;

use crate::ids::{ActorId, MemberId, SpaceId};
use crate::manager::{DefaultManager, Manager};
use crate::policy::{ManagerPolicy, Selector};

/// A custom matching rule (§5's nod to first-class tuple spaces: "tuple
/// spaces define policies which allow customization of matching rules …
/// our notion of customizable actorSpace managers incorporates the power
/// of the first-class tuple space model").
///
/// Called for every candidate `(pattern, member, matched-attribute)` the
/// NFA accepts; returning `false` excludes the candidate. The filter must
/// be pure (resolution holds only a shared reference).
pub type MatchFilter = Arc<dyn Fn(&Pattern, MemberId, &Path) -> bool + Send + Sync>;

/// Was a suspended message a `send` or a `broadcast`?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryKind {
    /// One non-deterministically chosen recipient.
    Send,
    /// Every matching recipient.
    Broadcast,
}

/// A message suspended because its pattern matched nothing (§5.6).
#[derive(Debug)]
pub struct Pending<M> {
    /// The destination pattern.
    pub pattern: Pattern,
    /// The payload, retained until a match appears.
    pub msg: M,
    /// Send or broadcast.
    pub kind: DeliveryKind,
    /// Lifecycle trace of the originating communication
    /// ([`TraceId::NONE`](actorspace_obs::TraceId::NONE) when unsampled).
    pub trace: actorspace_obs::TraceId,
    /// When the message was parked (observer-epoch nanoseconds); the
    /// suspension-dwell histogram is fed from this on wake.
    pub since_nanos: u64,
}

/// A persistent broadcast: delivered exactly once to every actor that ever
/// matches (§5.6's third option).
#[derive(Debug)]
pub struct PersistentBroadcast<M> {
    /// The destination pattern.
    pub pattern: Pattern,
    /// The payload, cloned per recipient.
    pub msg: M,
    /// Actors that have already received this broadcast.
    pub delivered: HashSet<ActorId>,
}

/// One actorSpace: membership table plus manager state.
pub struct Space<M> {
    id: SpaceId,
    guard: Guard,
    /// Attributes of each visible member *as viewed by this space* — the
    /// paper's mailing-list metaphor: "Each list may contain a set of
    /// attributes associated with the individual – as viewed by that list."
    members: HashMap<MemberId, Vec<Path>>,
    /// Inverted index: full attribute path → members registered under it.
    /// Attributes are always literal paths, so this is complete; it powers
    /// the fast path for literal destination patterns (EXPERIMENTS.md E12).
    index: HashMap<Path, Vec<MemberId>>,
    /// The subset of members that are spaces — resolution recursion only
    /// needs these, so it should not scan every actor to find them.
    space_members: HashSet<SpaceId>,
    policy: ManagerPolicy,
    selector: Selector,
    manager: Box<dyn Manager>,
    match_filter: Option<MatchFilter>,
    pending: Vec<Pending<M>>,
    persistent: Vec<PersistentBroadcast<M>>,
}

impl<M> Space<M> {
    /// Creates a space with the given guard and policy.
    pub fn new(id: SpaceId, guard: Guard, policy: ManagerPolicy) -> Space<M> {
        let selector = Selector::new(policy.selection.clone(), policy.selection_seed);
        Space {
            id,
            guard,
            members: HashMap::new(),
            index: HashMap::new(),
            space_members: HashSet::new(),
            policy,
            selector,
            manager: Box::new(DefaultManager),
            match_filter: None,
            pending: Vec::new(),
            persistent: Vec::new(),
        }
    }

    /// This space's mail address.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The capability guard protecting visibility operations here.
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// The policy table.
    pub fn policy(&self) -> &ManagerPolicy {
        &self.policy
    }

    /// Replaces the policy table (requires `Rights::MANAGE` at the registry
    /// API; this is the raw mutation).
    pub fn set_policy(&mut self, policy: ManagerPolicy) {
        self.selector = Selector::new(policy.selection.clone(), policy.selection_seed);
        self.policy = policy;
    }

    /// Installs a custom manager.
    pub fn set_manager(&mut self, manager: Box<dyn Manager>) {
        self.manager = manager;
    }

    /// Installs (or clears) a custom matching rule.
    pub fn set_match_filter(&mut self, filter: Option<MatchFilter>) {
        self.match_filter = filter;
    }

    /// The custom matching rule, if any.
    pub fn match_filter(&self) -> Option<&MatchFilter> {
        self.match_filter.as_ref()
    }

    /// The custom manager.
    pub fn manager_mut(&mut self) -> &mut dyn Manager {
        self.manager.as_mut()
    }

    /// The recipient selector.
    pub fn selector_mut(&mut self) -> &mut Selector {
        &mut self.selector
    }

    /// Visible members and their attributes, as viewed by this space.
    pub fn members(&self) -> &HashMap<MemberId, Vec<Path>> {
        &self.members
    }

    /// Registers (or extends) a member's attributes. Returns true if this
    /// member was not previously visible here.
    pub fn add_member(&mut self, member: MemberId, attrs: Vec<Path>) -> bool {
        if let MemberId::Space(s) = member {
            self.space_members.insert(s);
        }
        let entry = self.members.entry(member);
        let fresh = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let list = entry.or_default();
        for a in attrs {
            if !list.contains(&a) {
                self.index.entry(a.clone()).or_default().push(member);
                list.push(a);
            }
        }
        fresh
    }

    /// Removes a member entirely. Returns true if it was present.
    pub fn remove_member(&mut self, member: MemberId) -> bool {
        if let MemberId::Space(s) = member {
            self.space_members.remove(&s);
        }
        match self.members.remove(&member) {
            Some(attrs) => {
                for a in &attrs {
                    self.unindex(a, member);
                }
                true
            }
            None => false,
        }
    }

    /// Replaces a member's attributes. Returns false if the member is not
    /// visible here.
    pub fn set_attributes(&mut self, member: MemberId, attrs: Vec<Path>) -> bool {
        if !self.members.contains_key(&member) {
            return false;
        }
        let mut clean: Vec<Path> = Vec::with_capacity(attrs.len());
        for a in attrs {
            if !clean.contains(&a) {
                clean.push(a);
            }
        }
        let list = self.members.get_mut(&member).expect("checked above");
        let old = std::mem::replace(list, clean.clone());
        for a in &old {
            self.unindex(a, member);
        }
        for a in clean {
            self.index.entry(a).or_default().push(member);
        }
        true
    }

    fn unindex(&mut self, attr: &Path, member: MemberId) {
        if let Some(v) = self.index.get_mut(attr) {
            v.retain(|m| *m != member);
            if v.is_empty() {
                self.index.remove(attr);
            }
        }
    }

    /// Members registered under exactly this attribute path (the inverted
    /// index behind literal-pattern resolution).
    pub fn members_with_attr(&self, attr: &Path) -> &[MemberId] {
        self.index.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The visible sub-spaces (resolution recurses only into these).
    pub fn space_members(&self) -> impl Iterator<Item = SpaceId> + '_ {
        self.space_members.iter().copied()
    }

    /// Is the member visible here?
    pub fn contains(&self, member: MemberId) -> bool {
        self.members.contains_key(&member)
    }

    /// Suspended messages (for inspection/tests).
    pub fn pending(&self) -> &[Pending<M>] {
        &self.pending
    }

    /// Pushes a suspended message.
    pub fn push_pending(&mut self, p: Pending<M>) {
        self.pending.push(p);
    }

    /// Takes all suspended messages for a retry sweep.
    pub fn take_pending(&mut self) -> Vec<Pending<M>> {
        std::mem::take(&mut self.pending)
    }

    /// Registered persistent broadcasts (for inspection/tests).
    pub fn persistent(&self) -> &[PersistentBroadcast<M>] {
        &self.persistent
    }

    /// Registers a persistent broadcast.
    pub fn push_persistent(&mut self, p: PersistentBroadcast<M>) {
        self.persistent.push(p);
    }

    /// Mutable access to the persistent broadcasts (delivery bookkeeping).
    pub fn persistent_mut(&mut self) -> &mut Vec<PersistentBroadcast<M>> {
        &mut self.persistent
    }

    /// Cancels all persistent broadcasts, returning how many were dropped.
    pub fn clear_persistent(&mut self) -> usize {
        let n = self.persistent.len();
        self.persistent.clear();
        n
    }
}

impl<M> std::fmt::Debug for Space<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space")
            .field("id", &self.id)
            .field("members", &self.members.len())
            .field("pending", &self.pending.len())
            .field("persistent", &self.persistent.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::path;

    fn space() -> Space<u32> {
        Space::new(SpaceId(1), Guard::Open, ManagerPolicy::default())
    }

    #[test]
    fn add_member_merges_attributes() {
        let mut s = space();
        let m = MemberId::Actor(ActorId(1));
        assert!(s.add_member(m, vec![path("a")]));
        assert!(!s.add_member(m, vec![path("b"), path("a")]));
        assert_eq!(s.members()[&m], vec![path("a"), path("b")]);
    }

    #[test]
    fn remove_member() {
        let mut s = space();
        let m = MemberId::Actor(ActorId(1));
        s.add_member(m, vec![path("a")]);
        assert!(s.remove_member(m));
        assert!(!s.remove_member(m));
        assert!(!s.contains(m));
    }

    #[test]
    fn set_attributes_replaces() {
        let mut s = space();
        let m = MemberId::Actor(ActorId(1));
        s.add_member(m, vec![path("a"), path("b")]);
        assert!(s.set_attributes(m, vec![path("c")]));
        assert_eq!(s.members()[&m], vec![path("c")]);
        assert!(!s.set_attributes(MemberId::Actor(ActorId(9)), vec![path("x")]));
    }

    #[test]
    fn pending_queue_roundtrip() {
        use actorspace_pattern::pattern;
        let mut s = space();
        s.push_pending(Pending {
            pattern: pattern("a"),
            msg: 7,
            kind: DeliveryKind::Send,
            trace: actorspace_obs::TraceId::NONE,
            since_nanos: 0,
        });
        assert_eq!(s.pending().len(), 1);
        let taken = s.take_pending();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].msg, 7);
        assert!(s.pending().is_empty());
    }

    #[test]
    fn persistent_broadcast_bookkeeping() {
        use actorspace_pattern::pattern;
        let mut s = space();
        s.push_persistent(PersistentBroadcast {
            pattern: pattern("w/**"),
            msg: 1,
            delivered: HashSet::new(),
        });
        s.persistent_mut()[0].delivered.insert(ActorId(5));
        assert!(s.persistent()[0].delivered.contains(&ActorId(5)));
        assert_eq!(s.clear_persistent(), 1);
        assert!(s.persistent().is_empty());
    }
}
