//! Errors from ActorSpace operations.

use actorspace_capability::GuardError;

use crate::ids::{ActorId, MemberId, SpaceId};

/// Everything that can go wrong carrying out an ActorSpace primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The named actorSpace does not exist (destroyed or never created).
    NoSuchSpace(SpaceId),
    /// The named actor does not exist (collected or never created).
    NoSuchActor(ActorId),
    /// The named member does not exist.
    NoSuchMember(MemberId),
    /// Capability validation failed (§5.4).
    Denied(GuardError),
    /// Making this space visible would create a cycle in the visibility
    /// relation (§5.7): "we do not allow an actorSpace to be made visible
    /// in itself, or recursively in any contained actorSpace."
    WouldCycle {
        /// The space being made visible.
        child: SpaceId,
        /// The space it was to become visible in.
        parent: SpaceId,
    },
    /// A send/broadcast matched nothing and the space's manager uses
    /// [`UnmatchedPolicy::Error`](crate::policy::UnmatchedPolicy::Error).
    NoMatch {
        /// The pattern that failed to match, as text.
        pattern: String,
        /// The space it was resolved in.
        space: SpaceId,
    },
    /// The root space cannot be destroyed.
    RootImmortal,
    /// The member is not visible in the given space, so it cannot be made
    /// invisible there / its attributes cannot be changed there.
    NotVisible {
        /// The member in question.
        member: MemberId,
        /// The space it is not visible in.
        space: SpaceId,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoSuchSpace(s) => write!(f, "no such actorSpace: {s}"),
            Error::NoSuchActor(a) => write!(f, "no such actor: {a}"),
            Error::NoSuchMember(m) => write!(f, "no such member: {m:?}"),
            Error::Denied(g) => write!(f, "capability check failed: {g}"),
            Error::WouldCycle { child, parent } => write!(
                f,
                "making {child} visible in {parent} would create a visibility cycle"
            ),
            Error::NoMatch { pattern, space } => {
                write!(f, "pattern {pattern:?} matched no visible actor in {space}")
            }
            Error::RootImmortal => write!(f, "the root actorSpace cannot be destroyed"),
            Error::NotVisible { member, space } => {
                write!(f, "{member:?} is not visible in {space}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<GuardError> for Error {
    fn from(g: GuardError) -> Self {
        Error::Denied(g)
    }
}

/// Shorthand result type for registry operations.
pub type Result<T> = std::result::Result<T, Error>;
