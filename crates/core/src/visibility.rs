//! The visibility relation between actorSpaces, kept acyclic (§5.7).
//!
//! "The consequence of an actorSpace being visible in itself can be quite
//! catastrophic: if its attributes are matched by some broadcast message,
//! an infinite number of messages may be generated … As part of the
//! semantics of make_visible we do not allow an actorSpace to be made
//! visible in itself, or recursively in any contained actorSpace. This
//! avoids cycles in the directed acyclic graph defined by the visibility
//! relation between actorSpaces. In implementation terms, avoiding such
//! cycles means that a visibility relation graph must be constructed
//! before an actorSpace is allowed to be visible."
//!
//! The graph here *is* the membership tables: an edge `P → C` exists when
//! space `C` is visible in space `P`. `make_visible(C in P)` is legal iff
//! `P` is not reachable from `C` (and `C ≠ P`).

use std::collections::{HashMap, HashSet};

use crate::ids::{MemberId, SpaceId};
use crate::space::Space;

/// Would making `child` visible in `parent` create a cycle? True iff
/// `child == parent` or `parent` is reachable from `child` through
/// space-in-space visibility edges.
pub fn would_cycle<M>(
    spaces: &HashMap<SpaceId, Space<M>>,
    child: SpaceId,
    parent: SpaceId,
) -> bool {
    if child == parent {
        return true;
    }
    // DFS from `child` through its visible sub-spaces.
    let mut stack = vec![child];
    let mut seen = HashSet::new();
    seen.insert(child);
    while let Some(s) = stack.pop() {
        let Some(space) = spaces.get(&s) else {
            continue;
        };
        for member in space.members().keys() {
            if let MemberId::Space(sub) = member {
                if *sub == parent {
                    return true;
                }
                if seen.insert(*sub) {
                    stack.push(*sub);
                }
            }
        }
    }
    false
}

/// All spaces from which `start` is transitively reachable (the spaces
/// whose pattern resolutions can descend into `start`), including `start`
/// itself. Used to decide which suspended-message queues a change may wake.
pub fn ancestors(
    containers: &HashMap<MemberId, HashSet<SpaceId>>,
    start: SpaceId,
) -> HashSet<SpaceId> {
    let mut out = HashSet::new();
    out.insert(start);
    let mut stack = vec![start];
    while let Some(s) = stack.pop() {
        if let Some(parents) = containers.get(&MemberId::Space(s)) {
            for &p in parents {
                if out.insert(p) {
                    stack.push(p);
                }
            }
        }
    }
    out
}

/// Forward reachability over an explicit edge map `parent → visible
/// sub-spaces`: every space a pattern resolution scoped to `from` can
/// descend into, including `from` itself. The sharded coordinator keeps
/// this edge map in its meta table so lock sets can be computed without
/// touching any shard.
pub fn reachable(edges: &HashMap<SpaceId, HashSet<SpaceId>>, from: SpaceId) -> HashSet<SpaceId> {
    let mut out = HashSet::new();
    out.insert(from);
    let mut stack = vec![from];
    while let Some(s) = stack.pop() {
        if let Some(subs) = edges.get(&s) {
            for &sub in subs {
                if out.insert(sub) {
                    stack.push(sub);
                }
            }
        }
    }
    out
}

/// [`would_cycle`] over an explicit edge map instead of the space table:
/// true iff `child == parent` or `parent` is reachable from `child`.
pub fn would_cycle_edges(
    edges: &HashMap<SpaceId, HashSet<SpaceId>>,
    child: SpaceId,
    parent: SpaceId,
) -> bool {
    child == parent || reachable(edges, child).contains(&parent)
}

/// [`is_dag`] over an explicit node set + edge map (Kahn's algorithm).
pub fn is_dag_edges(nodes: &HashSet<SpaceId>, edges: &HashMap<SpaceId, HashSet<SpaceId>>) -> bool {
    let mut indegree: HashMap<SpaceId, usize> = nodes.iter().map(|&s| (s, 0)).collect();
    for subs in edges.values() {
        for sub in subs {
            if let Some(d) = indegree.get_mut(sub) {
                *d += 1;
            }
        }
    }
    let mut queue: Vec<SpaceId> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&s, _)| s)
        .collect();
    let mut visited = 0usize;
    while let Some(s) = queue.pop() {
        visited += 1;
        if let Some(subs) = edges.get(&s) {
            for sub in subs {
                if let Some(d) = indegree.get_mut(sub) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*sub);
                    }
                }
            }
        }
    }
    visited == nodes.len()
}

/// Validates that the whole visibility relation is acyclic — an invariant
/// checked by property tests after random operation sequences.
pub fn is_dag<M>(spaces: &HashMap<SpaceId, Space<M>>) -> bool {
    // Kahn's algorithm over the space-in-space edges.
    let mut indegree: HashMap<SpaceId, usize> = spaces.keys().map(|&s| (s, 0)).collect();
    for space in spaces.values() {
        for member in space.members().keys() {
            if let MemberId::Space(sub) = member {
                if let Some(d) = indegree.get_mut(sub) {
                    *d += 1;
                }
            }
        }
    }
    let mut queue: Vec<SpaceId> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&s, _)| s)
        .collect();
    let mut visited = 0usize;
    while let Some(s) = queue.pop() {
        visited += 1;
        let Some(space) = spaces.get(&s) else {
            continue;
        };
        for member in space.members().keys() {
            if let MemberId::Space(sub) = member {
                if let Some(d) = indegree.get_mut(sub) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*sub);
                    }
                }
            }
        }
    }
    visited == spaces.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ManagerPolicy;
    use actorspace_capability::Guard;

    fn mk(n: u64) -> (HashMap<SpaceId, Space<u32>>, Vec<SpaceId>) {
        let mut spaces = HashMap::new();
        let ids: Vec<SpaceId> = (0..n).map(SpaceId).collect();
        for &id in &ids {
            spaces.insert(id, Space::new(id, Guard::Open, ManagerPolicy::default()));
        }
        (spaces, ids)
    }

    fn link<M>(spaces: &mut HashMap<SpaceId, Space<M>>, child: SpaceId, parent: SpaceId) {
        spaces
            .get_mut(&parent)
            .unwrap()
            .add_member(MemberId::Space(child), vec![actorspace_atoms::path("x")]);
    }

    #[test]
    fn self_loop_detected() {
        let (spaces, ids) = mk(1);
        assert!(would_cycle(&spaces, ids[0], ids[0]));
    }

    #[test]
    fn chain_is_fine_but_closing_it_is_not() {
        let (mut spaces, ids) = mk(3);
        // 0 visible in 1, 1 visible in 2: edges 1→0, 2→1.
        link(&mut spaces, ids[0], ids[1]);
        link(&mut spaces, ids[1], ids[2]);
        assert!(is_dag(&spaces));
        // Closing the loop: 2 visible in 0 would cycle.
        assert!(would_cycle(&spaces, ids[2], ids[0]));
        // A diamond is fine: 0 visible in 2 directly.
        assert!(!would_cycle(&spaces, ids[0], ids[2]));
        link(&mut spaces, ids[0], ids[2]);
        assert!(is_dag(&spaces));
    }

    #[test]
    fn deep_chain_reachability() {
        let (mut spaces, ids) = mk(50);
        for w in ids.windows(2) {
            link(&mut spaces, w[0], w[1]); // i visible in i+1
        }
        assert!(would_cycle(&spaces, *ids.last().unwrap(), ids[0]));
        assert!(!would_cycle(&spaces, ids[0], *ids.last().unwrap()));
        assert!(is_dag(&spaces));
    }

    #[test]
    fn ancestors_walks_reverse_edges() {
        // containers: 0 in {1}, 1 in {2, 3}
        let mut containers: HashMap<MemberId, HashSet<SpaceId>> = HashMap::new();
        containers.insert(MemberId::Space(SpaceId(0)), [SpaceId(1)].into());
        containers.insert(MemberId::Space(SpaceId(1)), [SpaceId(2), SpaceId(3)].into());
        let anc = ancestors(&containers, SpaceId(0));
        assert_eq!(anc, [SpaceId(0), SpaceId(1), SpaceId(2), SpaceId(3)].into());
        let anc1 = ancestors(&containers, SpaceId(2));
        assert_eq!(anc1, [SpaceId(2)].into());
    }

    #[test]
    fn edge_map_helpers_mirror_space_table_walks() {
        // edges: 2 → {1}, 1 → {0} (0 visible in 1, 1 visible in 2)
        let mut edges: HashMap<SpaceId, HashSet<SpaceId>> = HashMap::new();
        edges.insert(SpaceId(2), [SpaceId(1)].into());
        edges.insert(SpaceId(1), [SpaceId(0)].into());
        let nodes: HashSet<SpaceId> = [SpaceId(0), SpaceId(1), SpaceId(2)].into();

        assert_eq!(
            reachable(&edges, SpaceId(2)),
            [SpaceId(0), SpaceId(1), SpaceId(2)].into()
        );
        assert_eq!(reachable(&edges, SpaceId(0)), [SpaceId(0)].into());
        assert!(would_cycle_edges(&edges, SpaceId(0), SpaceId(0)));
        assert!(would_cycle_edges(&edges, SpaceId(2), SpaceId(0)));
        assert!(!would_cycle_edges(&edges, SpaceId(0), SpaceId(2)));
        assert!(is_dag_edges(&nodes, &edges));

        edges.get_mut(&SpaceId(1)).unwrap().insert(SpaceId(2));
        assert!(!is_dag_edges(&nodes, &edges));
    }

    #[test]
    fn is_dag_rejects_manufactured_cycle() {
        let (mut spaces, ids) = mk(2);
        // Bypass would_cycle to build a bad graph directly.
        link(&mut spaces, ids[0], ids[1]);
        link(&mut spaces, ids[1], ids[0]);
        assert!(!is_dag(&spaces));
    }
}
