//! Property tests for the cluster: replica convergence under random
//! concurrent operation storms (both ordering protocols), and exactly-once
//! delivery under random node kill/restart schedules over lossy links.

use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_core::SpaceId;
use actorspace_lockcheck::{LockClass, Mutex};
use actorspace_net::{Cluster, ClusterConfig, FailureConfig, LinkConfig, OrderingProtocol};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A random visibility op executed from a random node.
#[derive(Debug, Clone)]
enum Op {
    Spawn {
        node: usize,
        attr: usize,
    },
    Invis {
        node: usize,
        actor: usize,
    },
    ChangeAttr {
        node: usize,
        actor: usize,
        attr: usize,
    },
}

fn arb_op(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes, 0usize..4).prop_map(|(node, attr)| Op::Spawn { node, attr }),
        (0..nodes, 0usize..8).prop_map(|(node, actor)| Op::Invis { node, actor }),
        (0..nodes, 0usize..8, 0usize..4).prop_map(|(node, actor, attr)| Op::ChangeAttr {
            node,
            actor,
            attr
        }),
    ]
}

fn attr(i: usize) -> actorspace_atoms::Path {
    path(&format!("w/kind-{i}"))
}

fn run_storm(protocol: OrderingProtocol, ops: &[Op]) {
    let n_nodes = 3;
    let cluster = Cluster::new(ClusterConfig {
        nodes: n_nodes,
        protocol,
        // Jittered bus downlinks: arrival order differs per node, the
        // appliers must restore it.
        bus_link: LinkConfig {
            jitter: Duration::from_micros(300),
            seed: 99,
            ..LinkConfig::ideal()
        },
        ..ClusterConfig::default()
    });
    let space = cluster.node(0).create_space(None);
    assert!(cluster.await_coherence(TIMEOUT));

    let mut actors = Vec::new();
    for op in ops {
        match *op {
            Op::Spawn { node, attr: a } => {
                let id = cluster.node(node).spawn(from_fn(|_, _| {}));
                // Visibility submitted from the *owning* node.
                let _ = cluster.node(node).make_visible(id, &attr(a), space, None);
                actors.push((node, id));
            }
            Op::Invis { node, actor } => {
                if let Some(&(_, id)) = actors.get(actor) {
                    let _ = cluster.node(node % 3).make_invisible(id, space, None);
                }
                let _ = node;
            }
            Op::ChangeAttr {
                node,
                actor,
                attr: a,
            } => {
                if let Some(&(_, id)) = actors.get(actor) {
                    let _ =
                        cluster
                            .node(node % 3)
                            .change_attributes(id, vec![attr(a)], space, None);
                }
            }
        }
    }

    assert!(
        cluster.await_coherence(TIMEOUT),
        "storm must reach coherence"
    );

    // Every replica answers every query identically.
    let queries = [
        pattern("**"),
        pattern("w/*"),
        pattern("w/kind-0"),
        pattern("w/{kind-1, kind-2}"),
    ];
    for q in &queries {
        let reference = cluster.node(0).system().resolve(q, space).unwrap();
        for i in 1..n_nodes {
            let got = cluster.node(i).system().resolve(q, space).unwrap();
            assert_eq!(got, reference, "node {i} diverged on {q}");
        }
    }
    // Replicas agree on refusals too.
    let errs: Vec<u64> = cluster
        .nodes()
        .iter()
        .map(|n| n.stats().apply_errors)
        .collect();
    assert!(
        errs.windows(2).all(|w| w[0] == w[1]),
        "apply errors diverged: {errs:?}"
    );
    cluster.shutdown();
}

/// One step of a random fault schedule. Node 0 is exempt from faults: its
/// replica worker guarantees every send always has *some* live match to
/// fail over to, so no send is permanently suspended.
#[derive(Debug, Clone)]
enum FaultOp {
    Send { node: usize },
    Kill { node: usize },
    Restart { node: usize },
    Settle,
}

fn arb_fault_op(nodes: usize) -> impl Strategy<Value = FaultOp> {
    // Sends repeated for weight: mostly traffic, with faults sprinkled in.
    prop_oneof![
        (0..nodes).prop_map(|node| FaultOp::Send { node }),
        (0..nodes).prop_map(|node| FaultOp::Send { node }),
        (0..nodes).prop_map(|node| FaultOp::Send { node }),
        (1..nodes).prop_map(|node| FaultOp::Kill { node }),
        (1..nodes).prop_map(|node| FaultOp::Restart { node }),
        Just(FaultOp::Settle),
    ]
}

/// Spawns a worker on `node` that records every received payload into the
/// shared log, and advertises it under the common pattern.
fn spawn_recorder(c: &Cluster, node: usize, space: SpaceId, log: &Arc<Mutex<Vec<i64>>>) {
    let log = log.clone();
    let w = c.node(node).spawn(from_fn(move |_, msg| {
        if let Some(v) = msg.body.as_int() {
            log.lock().push(v);
        }
    }));
    let _ = c.node(node).make_visible(w, &path("fo/svc"), space, None);
}

/// Exactly-once under node faults: for any kill/restart schedule over
/// lossy links, every send issued from a live node is eventually delivered
/// to exactly one live matching actor — in-flight packets and mailbox
/// backlogs of crashed nodes are re-resolved, never lost, never
/// duplicated.
fn run_fault_storm(ops: &[FaultOp]) {
    let n_nodes = 3;
    let c = Cluster::new(ClusterConfig {
        nodes: n_nodes,
        data_link: LinkConfig::lossy(0.15, 0.1, 4242),
        retx_every: Duration::from_millis(5),
        failure: FailureConfig::fast(),
        ..ClusterConfig::default()
    });
    let space = c.node(0).create_space(None);
    let received = Arc::new(Mutex::new(
        LockClass::Other("test.net.cluster_log"),
        Vec::new(),
    ));
    for i in 0..n_nodes {
        spawn_recorder(&c, i, space, &received);
    }
    assert!(c.await_coherence(TIMEOUT));

    let mut sent = 0i64;
    for op in ops {
        match *op {
            FaultOp::Send { node } => {
                // Clients only talk to live nodes.
                let from = if c.node(node).is_up() { node } else { 0 };
                c.node(from)
                    .send_pattern(&pattern("fo/svc"), space, Value::int(sent))
                    .unwrap();
                sent += 1;
            }
            FaultOp::Kill { node } => {
                let _ = c.kill_node(node);
            }
            FaultOp::Restart { node } => {
                if c.restart_node(node) {
                    // The new incarnation contributes a fresh replica.
                    spawn_recorder(&c, node, space, &received);
                }
            }
            FaultOp::Settle => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    // Revive everyone so every journal can drain, then wait for delivery.
    for i in 1..n_nodes {
        if c.restart_node(i) {
            spawn_recorder(&c, i, space, &received);
        }
    }
    let deadline = Instant::now() + TIMEOUT;
    while (received.lock().len() as i64) < sent {
        assert!(
            Instant::now() < deadline,
            "only {} of {sent} sends delivered",
            received.lock().len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // A duplicate would trickle in late; give it the chance to.
    std::thread::sleep(Duration::from_millis(100));
    let mut got = received.lock().clone();
    got.sort_unstable();
    assert_eq!(
        got,
        (0..sent).collect::<Vec<_>>(),
        "every send exactly once"
    );

    // Replicas still agree after the dust settles.
    assert!(c.await_coherence(TIMEOUT));
    let errs: Vec<u64> = c.nodes().iter().map(|n| n.stats().apply_errors).collect();
    assert!(
        errs.windows(2).all(|w| w[0] == w[1]),
        "apply errors diverged: {errs:?}"
    );
    c.shutdown();
}

proptest! {
    // Cluster setup is expensive; keep the case count small but the op
    // sequences meaningful.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn sequencer_replicas_converge(ops in proptest::collection::vec(arb_op(3), 1..25)) {
        run_storm(OrderingProtocol::Sequencer, &ops);
    }

    #[test]
    fn token_bus_replicas_converge(ops in proptest::collection::vec(arb_op(3), 1..25)) {
        run_storm(OrderingProtocol::TokenBus, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn sends_survive_random_kill_restart_schedules(
        ops in proptest::collection::vec(arb_fault_op(3), 1..30),
    ) {
        run_fault_storm(&ops);
    }
}
