//! Property tests for the cluster: replica convergence under random
//! concurrent operation storms, for both ordering protocols.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_net::{Cluster, ClusterConfig, LinkConfig, OrderingProtocol};
use actorspace_pattern::pattern;
use actorspace_runtime::from_fn;
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A random visibility op executed from a random node.
#[derive(Debug, Clone)]
enum Op {
    Spawn { node: usize, attr: usize },
    Invis { node: usize, actor: usize },
    ChangeAttr { node: usize, actor: usize, attr: usize },
}

fn arb_op(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes, 0usize..4).prop_map(|(node, attr)| Op::Spawn { node, attr }),
        (0..nodes, 0usize..8).prop_map(|(node, actor)| Op::Invis { node, actor }),
        (0..nodes, 0usize..8, 0usize..4)
            .prop_map(|(node, actor, attr)| Op::ChangeAttr { node, actor, attr }),
    ]
}

fn attr(i: usize) -> actorspace_atoms::Path {
    path(&format!("w/kind-{i}"))
}

fn run_storm(protocol: OrderingProtocol, ops: &[Op]) {
    let n_nodes = 3;
    let cluster = Cluster::new(ClusterConfig {
        nodes: n_nodes,
        protocol,
        // Jittered bus downlinks: arrival order differs per node, the
        // appliers must restore it.
        bus_link: LinkConfig {
            jitter: Duration::from_micros(300),
            seed: 99,
            ..LinkConfig::ideal()
        },
        ..ClusterConfig::default()
    });
    let space = cluster.node(0).create_space(None);
    assert!(cluster.await_coherence(TIMEOUT));

    let mut actors = Vec::new();
    for op in ops {
        match *op {
            Op::Spawn { node, attr: a } => {
                let id = cluster.node(node).spawn(from_fn(|_, _| {}));
                // Visibility submitted from the *owning* node.
                let _ = cluster.node(node).make_visible(id, &attr(a), space, None);
                actors.push((node, id));
            }
            Op::Invis { node, actor } => {
                if let Some(&(_, id)) = actors.get(actor) {
                    let _ = cluster.node(node % 3).make_invisible(id, space, None);
                }
                let _ = node;
            }
            Op::ChangeAttr { node, actor, attr: a } => {
                if let Some(&(_, id)) = actors.get(actor) {
                    let _ =
                        cluster.node(node % 3).change_attributes(id, vec![attr(a)], space, None);
                }
            }
        }
    }

    assert!(cluster.await_coherence(TIMEOUT), "storm must reach coherence");

    // Every replica answers every query identically.
    let queries =
        [pattern("**"), pattern("w/*"), pattern("w/kind-0"), pattern("w/{kind-1, kind-2}")];
    for q in &queries {
        let reference = cluster.node(0).system().resolve(q, space).unwrap();
        for i in 1..n_nodes {
            let got = cluster.node(i).system().resolve(q, space).unwrap();
            assert_eq!(got, reference, "node {i} diverged on {q}");
        }
    }
    // Replicas agree on refusals too.
    let errs: Vec<u64> = cluster.nodes().iter().map(|n| n.stats().apply_errors).collect();
    assert!(errs.windows(2).all(|w| w[0] == w[1]), "apply errors diverged: {errs:?}");
    cluster.shutdown();
}

proptest! {
    // Cluster setup is expensive; keep the case count small but the op
    // sequences meaningful.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn sequencer_replicas_converge(ops in proptest::collection::vec(arb_op(3), 1..25)) {
        run_storm(OrderingProtocol::Sequencer, &ops);
    }

    #[test]
    fn token_bus_replicas_converge(ops in proptest::collection::vec(arb_op(3), 1..25)) {
        run_storm(OrderingProtocol::TokenBus, &ops);
    }
}
