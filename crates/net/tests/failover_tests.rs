//! Node-crash fault injection: failure detection, failover of in-flight
//! and suspended messages to surviving replicas, and restart with
//! re-registration through the directory.

use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};

const TIMEOUT: Duration = Duration::from_secs(20);

fn fast_cluster(nodes: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        failure: FailureConfig::fast(),
        ..ClusterConfig::default()
    })
}

#[test]
fn killed_node_traffic_fails_over_to_survivor() {
    let c = fast_cluster(4);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);

    // Phase 1: the only worker lives on node 2; traffic flows normally.
    let doomed = c.node(2).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(2)
        .make_visible(doomed, &path("svc"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));
    for i in 0..10 {
        c.node(0)
            .send_pattern(&pattern("svc"), space, Value::int(i))
            .unwrap();
    }
    for _ in 0..10 {
        rx.recv_timeout(TIMEOUT).unwrap();
    }

    // Phase 2: kill node 2 mid-run and keep sending. The sends resolve
    // against node 0's replica — which still lists the dead worker until
    // the detector fires and the NodeDown purge applies — so they take the
    // full failover path: journalled on the wire, rejected by the dead
    // node, drained on suspicion, and re-resolved.
    assert!(c.kill_node(2));
    assert!(!c.node(2).is_up());
    for i in 0..20 {
        c.node(0)
            .send_pattern(&pattern("svc"), space, Value::int(100 + i))
            .unwrap();
    }

    // Phase 3: a replacement on a survivor picks up every re-resolved (or
    // §5.6-suspended) message.
    let replacement = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(replacement, &path("svc"), space, None)
        .unwrap();

    let mut got = Vec::new();
    for _ in 0..20 {
        got.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap());
    }
    got.sort_unstable();
    assert_eq!(
        got,
        (100..120).collect::<Vec<_>>(),
        "all post-kill sends must fail over"
    );

    let survivors = c.nodes().iter().filter(|n| n.is_up());
    let suspicions: usize = survivors.map(|n| n.stats().system.suspicions).sum();
    assert!(
        suspicions >= 1,
        "survivors must have suspected the dead node"
    );
    let failovers: usize = c.nodes().iter().map(|n| n.stats().system.failovers).sum();
    assert!(
        failovers >= 1,
        "at least one message must have taken the failover path"
    );
    c.shutdown();
}

#[test]
fn accepted_but_unprocessed_messages_fail_over_exactly_once() {
    // A slow worker accumulates a mailbox backlog; the node dies with most
    // of the backlog unprocessed. Every message must reach *a* worker
    // exactly once: the processed prefix counts, the harvested backlog is
    // re-resolved to the fallback, and nothing is delivered twice.
    let c = fast_cluster(3);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    let slow = c.node(2).spawn(from_fn(move |ctx, msg| {
        std::thread::sleep(Duration::from_millis(5));
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(2)
        .make_visible(slow, &path("svc"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));

    let n = 30;
    for i in 0..n {
        c.node(0)
            .send_pattern(&pattern("svc"), space, Value::int(i))
            .unwrap();
    }
    // Let a few process, then crash with the rest still queued.
    std::thread::sleep(Duration::from_millis(20));
    assert!(c.kill_node(2));
    let fallback = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(fallback, &path("svc"), space, None)
        .unwrap();

    let mut got = Vec::new();
    for _ in 0..n {
        got.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap());
    }
    assert!(
        rx.recv_timeout(Duration::from_millis(500)).is_err(),
        "a message was delivered more than once"
    );
    got.sort_unstable();
    assert_eq!(got, (0..n).collect::<Vec<_>>());
    c.shutdown();
}

#[test]
fn restarted_node_serves_traffic_after_reregistration() {
    let c = fast_cluster(3);
    let space = c.node(0).create_space(None);
    assert!(c.await_coherence(TIMEOUT));

    assert!(c.kill_node(1));
    // Wait until a survivor's detector notices the silence.
    let deadline = Instant::now() + TIMEOUT;
    while !c.detector().is_suspected(0, 1) {
        assert!(
            Instant::now() < deadline,
            "node 0 never suspected the dead node"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    assert!(c.restart_node(1));
    assert!(c.node(1).is_up());
    assert!(
        c.await_coherence(TIMEOUT),
        "restarted node must replay to coherence"
    );

    // The new incarnation serves traffic: fresh worker, fresh visibility.
    let (inbox, rx) = c.node(0).system().inbox();
    let worker = c.node(1).spawn(from_fn(move |ctx, msg| {
        let v = msg.body.as_int().unwrap_or(0);
        ctx.send_addr(inbox, Value::int(v * 2));
    }));
    c.node(1)
        .make_visible(worker, &path("svc2"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));
    c.node(0)
        .send_pattern(&pattern("svc2"), space, Value::int(21))
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(42));

    assert!(
        c.node(0).stats().system.re_registrations >= 1,
        "the NodeUp re-registration must be observed cluster-wide"
    );
    c.shutdown();
}

#[test]
fn quick_restart_before_detection_still_buries_old_actors() {
    // Kill and restart faster than the detector threshold: no NodeDown is
    // ever submitted, so the NodeUp re-registration itself must purge the
    // previous incarnation's records — otherwise sends resolve to a ghost
    // forever.
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        // Slow detector: the restart will beat it.
        failure: FailureConfig::default(),
        ..ClusterConfig::default()
    });
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    let ghost = c.node(1).spawn(from_fn(|_, _| {}));
    c.node(1)
        .make_visible(ghost, &path("svc"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));

    assert!(c.kill_node(1));
    assert!(c.restart_node(1));
    assert!(c.await_coherence(TIMEOUT));

    // The ghost's record is gone from every replica.
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let visible = c.node(0).system().resolve(&pattern("svc"), space).unwrap();
        if visible.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ghost actor still resolvable: {visible:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // And the new incarnation serves fresh actors under the same pattern.
    let worker = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(worker, &path("svc"), space, None)
        .unwrap();
    c.node(0)
        .send_pattern(&pattern("svc"), space, Value::int(7))
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(7));
    c.shutdown();
}

#[test]
fn kill_and_restart_are_idempotent() {
    let c = fast_cluster(2);
    assert!(!c.restart_node(1), "restarting an up node is a no-op");
    assert!(c.kill_node(1));
    assert!(!c.kill_node(1), "double kill is a no-op");
    assert!(c.restart_node(1));
    assert!(!c.restart_node(1));
    assert!(c.await_coherence(TIMEOUT));
    c.shutdown();
}
