//! Observability under node crashes: the acceptance checks for the obs
//! layer. A kill-mid-run failover must be reconstructible from the JSON
//! lines trace export *alone* (`submitted → routed → failed_over →
//! delivered`, timestamps monotone), and node counters must be cumulative
//! across `restart_node` rather than per-incarnation.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_core::ActorId;
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_obs::{DeadLetterReason, Obs, ObsConfig, TraceEvent};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};

const TIMEOUT: Duration = Duration::from_secs(20);

fn traced_cluster(nodes: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        failure: FailureConfig::fast(),
        obs: Some(Obs::shared(ObsConfig::all())),
        ..ClusterConfig::default()
    })
}

/// Returns true when `stages` contains `want` as a (not necessarily
/// contiguous) subsequence.
fn has_subsequence(stages: &[String], want: &[&str]) -> bool {
    let mut it = stages.iter();
    want.iter().all(|w| it.any(|s| s == w))
}

#[test]
fn failover_lifecycle_reconstructs_from_trace_export_alone() {
    let c = traced_cluster(3);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);

    // A slow worker on node 2 accumulates a backlog, then the node dies
    // with most of it unprocessed; a fallback on node 1 picks it all up.
    let slow = c.node(2).spawn(from_fn(move |ctx, msg| {
        std::thread::sleep(Duration::from_millis(5));
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(2)
        .make_visible(slow, &path("svc"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));

    let n = 30;
    for i in 0..n {
        c.node(0)
            .send_pattern(&pattern("svc"), space, Value::int(i))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(c.kill_node(2));
    let fallback = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(fallback, &path("svc"), space, None)
        .unwrap();
    for _ in 0..n {
        rx.recv_timeout(TIMEOUT).unwrap();
    }

    // Reconstruct every lifecycle from the export string alone — no
    // access to the in-memory ring.
    let export = c.obs().tracer.export_json_lines();
    c.shutdown();
    let mut by_trace: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for line in export.lines() {
        let ev = TraceEvent::parse_json_line(line)
            .unwrap_or_else(|| panic!("unparseable export line: {line}"));
        by_trace.entry(ev.trace.0).or_default().push(ev);
    }
    assert!(!by_trace.is_empty(), "export is empty");

    let mut failed_over_and_delivered = 0;
    for (id, events) in &by_trace {
        let mut last = 0u64;
        for e in events {
            assert!(
                e.at_nanos >= last,
                "trace {id}: timestamps ran backwards in export order"
            );
            last = e.at_nanos;
        }
        let terminals = events.iter().filter(|e| e.stage.is_terminal()).count();
        assert!(
            terminals <= 1,
            "trace {id}: {terminals} terminal events in one lifecycle"
        );
        let stages: Vec<String> = events.iter().map(|e| e.stage.name().to_string()).collect();
        if has_subsequence(
            &stages,
            &["submitted", "routed", "failed_over", "delivered"],
        ) {
            failed_over_and_delivered += 1;
        }
    }
    assert!(
        failed_over_and_delivered >= 1,
        "no trace shows the full submitted → routed → failed_over → delivered lifecycle"
    );
}

#[test]
fn node_stats_counters_survive_restart() {
    let c = traced_cluster(3);
    let space = c.node(0).create_space(None);
    assert!(c.await_coherence(TIMEOUT));

    // Provoke dead letters ON node 1: point-to-point sends to an address
    // in node 1's id range that no actor owns. The packet forwards, node 1
    // finds no cell and no route to re-resolve, and records the drop.
    let real = c.node(1).spawn(from_fn(|_ctx, _msg| {}));
    c.node(1)
        .make_visible(real, &path("svc"), space, None)
        .unwrap();
    let ghost = ActorId(real.0 + 999_983);
    for _ in 0..5 {
        c.node(0).send_to(ghost, Value::int(1));
    }
    let deadline = Instant::now() + TIMEOUT;
    while c.node(1).stats().dead_letters < 5 {
        assert!(
            Instant::now() < deadline,
            "node 1 never recorded the dead letters: {:?}",
            c.node(1).stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let pre = c.node(1).stats();
    assert!(pre.dead_letters >= 5);
    assert!(
        pre.recent_dead_letters
            .iter()
            .any(|d| matches!(d.reason, DeadLetterReason::NoRecipient)),
        "the ring must retain the drop reason"
    );

    assert!(c.kill_node(1));
    assert!(c.restart_node(1));
    assert!(c.await_coherence(TIMEOUT));

    // Regression: these were per-incarnation before the shared observer —
    // a restart silently zeroed them.
    let post = c.node(1).stats();
    assert!(
        post.dead_letters >= pre.dead_letters,
        "dead_letters reset across restart: {} -> {}",
        pre.dead_letters,
        post.dead_letters
    );
    assert!(
        post.system.dead_letters >= pre.dead_letters as usize,
        "runtime Stats reset across restart"
    );
    assert!(
        !post.recent_dead_letters.is_empty(),
        "dead-letter ring reset across restart"
    );
    let snap = c.obs().snapshot();
    assert_eq!(
        snap.counter("net.restarts", 1),
        Some(1),
        "restart_node must count into net.restarts"
    );
    c.shutdown();
}
