//! End-to-end cluster tests: cross-node pattern communication, visibility
//! coherence, ordering protocols, remote forwarding, and fault injection.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_net::{Cluster, ClusterConfig, LinkConfig, OrderingProtocol};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};

const TIMEOUT: Duration = Duration::from_secs(20);

fn cluster(nodes: usize, protocol: OrderingProtocol) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        protocol,
        ..ClusterConfig::default()
    })
}

#[test]
fn cross_node_pattern_send() {
    let c = cluster(2, OrderingProtocol::Sequencer);
    // Worker lives on node 1; the client sends from node 0.
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    let worker = c.node(1).spawn(from_fn(move |ctx, msg| {
        let n = msg.body.as_int().unwrap_or(0);
        ctx.send_addr(inbox, Value::int(n + 100));
    }));
    c.node(1)
        .make_visible(worker, &path("worker"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT), "visibility must replicate");

    // Node 0 resolves against its replica and forwards to node 1.
    c.node(0)
        .send_pattern(&pattern("worker"), space, Value::int(1))
        .unwrap();
    let reply = rx.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(reply.body, Value::int(101));
    c.shutdown();
}

#[test]
fn visibility_is_coherent_across_all_nodes() {
    let c = cluster(4, OrderingProtocol::Sequencer);
    let space = c.node(0).create_space(None);
    // Each node contributes one worker.
    let mut ids = Vec::new();
    for i in 0..4 {
        let w = c.node(i).spawn(from_fn(|_, _| {}));
        c.node(i)
            .make_visible(w, &path(&format!("w/n{i}")), space, None)
            .unwrap();
        ids.push(w);
    }
    assert!(c.await_coherence(TIMEOUT));
    // Every node resolves the same set.
    ids.sort_unstable();
    for i in 0..4 {
        let mut got = c.node(i).system().resolve(&pattern("w/*"), space).unwrap();
        got.sort_unstable();
        assert_eq!(got, ids, "node {i} replica diverged");
    }
    c.shutdown();
}

#[test]
fn token_bus_protocol_works_end_to_end() {
    let c = cluster(3, OrderingProtocol::TokenBus);
    let (inbox, rx) = c.node(2).system().inbox();
    let space = c.node(0).create_space(None);
    let worker = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(worker, &path("svc"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));
    c.node(2)
        .send_pattern(&pattern("svc"), space, Value::int(9))
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(9));
    c.shutdown();
}

#[test]
fn suspended_send_absorbs_replication_window() {
    // §5.6 suspension bridges the gap between sending and the visibility
    // event applying: send FIRST, make visible after.
    let c = cluster(2, OrderingProtocol::Sequencer);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    assert!(
        c.await_coherence(TIMEOUT),
        "space creation must replicate first"
    );
    c.node(0)
        .send_pattern(&pattern("late/svc"), space, Value::int(5))
        .unwrap();

    let worker = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(worker, &path("late/svc"), space, None)
        .unwrap();
    // When the visibility event applies on node 0, the suspended message
    // wakes and forwards to node 1.
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(5));
    c.shutdown();
}

#[test]
fn broadcast_reaches_actors_on_every_node() {
    let c = cluster(3, OrderingProtocol::Sequencer);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    for i in 0..3 {
        let node = i as i64;
        let w = c.node(i).spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(inbox, Value::list([Value::int(node), msg.body]));
        }));
        c.node(i)
            .make_visible(w, &path("member"), space, None)
            .unwrap();
    }
    assert!(c.await_coherence(TIMEOUT));
    c.node(1)
        .broadcast(&pattern("member"), space, Value::str("hi"))
        .unwrap();
    let mut nodes_heard = std::collections::HashSet::new();
    for _ in 0..3 {
        let m = rx.recv_timeout(TIMEOUT).unwrap();
        nodes_heard.insert(m.body.as_list().unwrap()[0].as_int().unwrap());
    }
    assert_eq!(
        nodes_heard.len(),
        3,
        "every node's member must receive the broadcast"
    );
    c.shutdown();
}

#[test]
fn lossy_data_links_still_deliver_exactly_once() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        data_link: LinkConfig::lossy(0.3, 0.2, 77),
        retx_every: Duration::from_millis(5),
        ..ClusterConfig::default()
    });
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    let echo = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(echo, &path("echo"), space, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));

    let n = 50;
    for i in 0..n {
        c.node(0)
            .send_pattern(&pattern("echo"), space, Value::int(i))
            .unwrap();
    }
    let mut got = Vec::new();
    for _ in 0..n {
        got.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap());
    }
    got.sort_unstable();
    assert_eq!(
        got,
        (0..n).collect::<Vec<_>>(),
        "loss or duplication leaked through"
    );
    c.shutdown();
}

#[test]
fn remote_actor_creation_starts_after_global_ordering() {
    // An actor that advertises itself in on_start: the start signal fires
    // only once the creation event is ordered, so the advertisement (a bus
    // op submitted from on_start) is always ordered after the creation.
    let c = cluster(2, OrderingProtocol::Sequencer);
    let space = c.node(0).create_space(None);
    let space2 = space;
    struct Advertiser {
        space: actorspace_core::SpaceId,
    }
    impl actorspace_runtime::Behavior for Advertiser {
        fn on_start(&mut self, ctx: &mut actorspace_runtime::Ctx<'_>) {
            ctx.make_self_visible(&path("self/adv"), self.space, None)
                .unwrap();
        }
        fn receive(
            &mut self,
            ctx: &mut actorspace_runtime::Ctx<'_>,
            msg: actorspace_runtime::Message,
        ) {
            ctx.reply(msg.body);
        }
    }
    let a = c.node(1).spawn(Advertiser { space: space2 });
    assert!(c.await_quiescence(TIMEOUT));
    // Both replicas resolve it.
    for i in 0..2 {
        assert_eq!(
            c.node(i)
                .system()
                .resolve(&pattern("self/**"), space)
                .unwrap(),
            vec![a],
            "node {i}"
        );
    }
    c.shutdown();
}

#[test]
fn nested_spaces_work_across_nodes() {
    let c = cluster(2, OrderingProtocol::Sequencer);
    let outer = c.node(0).create_space(None);
    let inner = c.node(1).create_space(None);
    c.node(1)
        .make_visible(inner, &path("pool"), outer, None)
        .unwrap();
    let (inbox, rx) = c.node(0).system().inbox();
    let w = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1)
        .make_visible(w, &path("worker"), inner, None)
        .unwrap();
    assert!(c.await_coherence(TIMEOUT));
    c.node(0)
        .send_pattern(&pattern("pool/worker"), outer, Value::int(3))
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(3));
    c.shutdown();
}

#[test]
fn cycle_prevention_holds_cluster_wide() {
    // Node 0 nests A in B; node 1 concurrently nests B in A. The global
    // order makes exactly one of them win; no replica ever holds a cycle.
    let c = cluster(2, OrderingProtocol::Sequencer);
    let a = c.node(0).create_space(None);
    let b = c.node(1).create_space(None);
    assert!(c.await_coherence(TIMEOUT));
    // Both submitted concurrently; application is ordered.
    let _ = c.node(0).make_visible(a, &path("a"), b, None);
    let _ = c.node(1).make_visible(b, &path("b"), a, None);
    assert!(c.await_coherence(TIMEOUT));
    // Exactly one edge applied; the other was refused as a cycle on every
    // replica identically.
    let stats: Vec<u64> = c.nodes().iter().map(|n| n.stats().apply_errors).collect();
    assert_eq!(stats[0], stats[1], "replicas must agree on refusals");
    assert_eq!(stats[0], 1, "exactly one of the two ops must be refused");
    c.shutdown();
}

#[test]
fn stats_count_forwarded_messages() {
    let c = cluster(2, OrderingProtocol::Sequencer);
    let (inbox, rx) = c.node(0).system().inbox();
    let space = c.node(0).create_space(None);
    let w = c.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    c.node(1).make_visible(w, &path("w"), space, None).unwrap();
    assert!(c.await_coherence(TIMEOUT));
    for i in 0..10 {
        c.node(0)
            .send_pattern(&pattern("w"), space, Value::int(i))
            .unwrap();
    }
    for _ in 0..10 {
        rx.recv_timeout(TIMEOUT).unwrap();
    }
    // Node 0 forwarded 10 requests to node 1; node 1 forwarded 10 replies.
    assert!(c.node(0).stats().forwarded >= 10);
    assert!(c.node(1).stats().forwarded >= 10);
    c.shutdown();
}
