//! Integration tests for the cluster observability stream: a subscriber's
//! [`ClusterView`] converges on every node's published totals (including
//! remote dead letters), and survives a kill/restart cycle with the peer
//! marked stale while down and counted as rejoined afterwards.

use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_core::ActorId;
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_obs::names;
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};

const TIMEOUT: Duration = Duration::from_secs(20);

fn poll(deadline: Instant, mut ok: impl FnMut() -> bool) -> bool {
    while Instant::now() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The observer's aggregate converges on the remote node's delivery
/// totals and surfaces its dead letters.
#[test]
fn view_converges_on_remote_totals() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        obs_publish: Some(Duration::from_millis(10)),
        ..ClusterConfig::default()
    });
    let view = cluster.observe();

    let space = cluster.node(0).create_space(None);
    let worker = cluster.node(1).spawn(from_fn(|_ctx, _msg| {}));
    cluster
        .node(1)
        .make_visible(worker, &path("worker"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(TIMEOUT));

    for i in 0..25 {
        cluster
            .node(0)
            .send_pattern(&pattern("worker"), space, Value::int(i))
            .unwrap();
    }
    // Dead letters ON node 1: point-to-point sends to an address in its
    // id range that no actor owns (nothing to re-resolve — a local drop).
    let ghost = ActorId(worker.0 + 999_983);
    for _ in 0..3 {
        cluster.node(0).send_to(ghost, Value::int(1));
    }
    assert!(cluster.await_quiescence(TIMEOUT));

    let deliveries = cluster.obs().metrics.counter(names::RT_DELIVERIES, 1).get();
    assert!(deliveries >= 25, "deliveries landed on node 1");

    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || {
            let m = view.merged();
            m.counter(names::RT_DELIVERIES, 1) == Some(deliveries)
                && m.counter(names::RT_DEAD_LETTERS, 1).unwrap_or(0) >= 3
                && m.dead_letters.iter().any(|d| d.node == 1)
        }),
        "view converged on node 1's deliveries and dead letters:\n{}",
        view.render(cluster.obs().now_nanos(), Duration::from_secs(1))
    );
    assert_eq!(view.nodes(), vec![0, 1]);
    cluster.shutdown();
}

/// A subscriber created *after* traffic has been published still
/// converges: subscribe() seeds the view with each publisher's
/// cumulative state, so frames 0..N it never received are not needed.
#[test]
fn late_subscriber_is_seeded_and_converges() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        obs_publish: Some(Duration::from_millis(10)),
        ..ClusterConfig::default()
    });

    let space = cluster.node(0).create_space(None);
    let worker = cluster.node(1).spawn(from_fn(|_ctx, _msg| {}));
    cluster
        .node(1)
        .make_visible(worker, &path("worker"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(TIMEOUT));
    for i in 0..25 {
        cluster
            .node(0)
            .send_pattern(&pattern("worker"), space, Value::int(i))
            .unwrap();
    }
    assert!(cluster.await_quiescence(TIMEOUT));

    // Give the publishers time to ship frames no future subscriber will
    // ever see: after this sleep every node's seq is past 0, so a
    // subscriber without seeding would park its first frame forever.
    let deliveries = cluster.obs().metrics.counter(names::RT_DELIVERIES, 1).get();
    assert!(deliveries >= 25);
    std::thread::sleep(Duration::from_millis(100));

    // The late subscriber: must converge without any new traffic.
    let view = cluster.observe();
    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || {
            let m = view.merged();
            m.counter(names::RT_DELIVERIES, 1) == Some(deliveries) && view.nodes() == vec![0, 1]
        }),
        "late view converged on pre-subscription totals:\n{}",
        view.render(cluster.obs().now_nanos(), Duration::from_secs(1))
    );
    cluster.shutdown();
}

/// Kill → the peer goes stale (down) in the view; restart → it rejoins
/// and the view reconverges on its post-restart totals.
#[test]
fn view_survives_kill_and_restart() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        failure: FailureConfig::fast(),
        obs_publish: Some(Duration::from_millis(10)),
        ..ClusterConfig::default()
    });
    let view = cluster.observe();

    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || view.nodes() == vec![0, 1, 2]),
        "all three publishers reached the view"
    );

    assert!(cluster.kill_node(2));
    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || view.peer(2).is_some_and(|p| p.down)),
        "the detector marked node 2 down in the view"
    );
    assert!(view
        .peer(2)
        .expect("peer 2 tracked")
        .is_stale(cluster.obs().now_nanos(), Duration::from_secs(600)));

    assert!(cluster.restart_node(2));
    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || view
            .peer(2)
            .is_some_and(|p| !p.down && p.rejoins >= 1)),
        "node 2 rejoined the view after restart"
    );

    // Post-restart traffic still reaches the aggregate.
    let space = cluster.node(0).create_space(None);
    let worker = cluster.node(2).spawn(from_fn(|_ctx, _msg| {}));
    cluster
        .node(2)
        .make_visible(worker, &path("worker"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(TIMEOUT));
    for i in 0..10 {
        cluster
            .node(0)
            .send_pattern(&pattern("worker"), space, Value::int(i))
            .unwrap();
    }
    assert!(cluster.await_quiescence(TIMEOUT));
    let deliveries = cluster.obs().metrics.counter(names::RT_DELIVERIES, 2).get();
    assert!(deliveries >= 10);
    let deadline = Instant::now() + TIMEOUT;
    assert!(
        poll(deadline, || view.merged().counter(names::RT_DELIVERIES, 2)
            == Some(deliveries)),
        "view reconverged on the restarted node's totals"
    );
    cluster.shutdown();
}
