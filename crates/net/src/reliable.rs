//! Reliable at-least-once delivery with receiver-side deduplication —
//! exactly-once end to end over lossy links.
//!
//! The paper's delivery guarantee is "message delivery is only finitely
//! delayed" (§5.3/§5.6); this layer restores that guarantee over a link
//! that drops and duplicates. Classic mechanism: the sender numbers
//! packets and retransmits unacknowledged ones on a timer; the receiver
//! delivers each sequence number once and (re-)acknowledges everything it
//! has seen. No ordering is imposed — reordering remains visible to the
//! application, as the paper allows.
//!
//! Delivery is *conditional*: the receiving side may reject a packet (a
//! crashed node refuses traffic), in which case nothing is acknowledged
//! and the packet stays in the sender's journal. That journal is what the
//! failover path drains: [`ReliablePipe::drain_undelivered`] removes every
//! packet the receiver has provably not accepted, so a crashed
//! destination's in-flight messages can be re-routed elsewhere without
//! ever duplicating one that did land.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_lockcheck::{Condvar, LockClass, Mutex};

use crate::link::{Link, LinkConfig};

/// A numbered packet or an acknowledgment.
#[derive(Debug, Clone)]
pub enum Packet<T> {
    /// Payload with sender-assigned sequence number.
    Data {
        /// Sender-assigned, strictly increasing.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Cumulative-free ack of one sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

struct SenderState<T> {
    unacked: HashMap<u64, T>,
    next_seq: u64,
}

/// Signals the retransmit thread to exit without waiting out its period.
struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// The sending half: call [`ReliableSender::send`]; a retransmit timer
/// thread re-sends unacked packets until acknowledged. Dropping the sender
/// stops the timer thread promptly and joins it.
pub struct ReliableSender<T: Clone + Send + 'static> {
    state: Arc<Mutex<SenderState<T>>>,
    link: Arc<Link<Packet<T>>>,
    stop: Arc<StopFlag>,
    retransmits: Arc<AtomicU64>,
    retx: Option<std::thread::JoinHandle<()>>,
}

impl<T: Clone + Send + 'static> Drop for ReliableSender<T> {
    fn drop(&mut self) {
        *self.stop.stopped.lock() = true;
        self.stop.cv.notify_all();
        if let Some(h) = self.retx.take() {
            let _ = h.join();
        }
    }
}

impl<T: Clone + Send + 'static> ReliableSender<T> {
    /// Wraps a forward link. `retx_every` is the retransmission period.
    pub fn new(link: Arc<Link<Packet<T>>>, retx_every: Duration) -> ReliableSender<T> {
        let state: Arc<Mutex<SenderState<T>>> = Arc::new(Mutex::new(
            LockClass::Reliable,
            SenderState {
                unacked: HashMap::new(),
                next_seq: 0,
            },
        ));
        let stop = Arc::new(StopFlag {
            stopped: Mutex::new(LockClass::Reliable, false),
            cv: Condvar::new(),
        });
        let retransmits = Arc::new(AtomicU64::new(0));
        let s2 = state.clone();
        let l2 = link.clone();
        let stop2 = stop.clone();
        let rtx2 = retransmits.clone();
        let retx = std::thread::Builder::new()
            .name("actorspace-retx".into())
            .spawn(move || loop {
                {
                    let mut g = stop2.stopped.lock();
                    if !*g {
                        stop2.cv.wait_for(&mut g, retx_every);
                    }
                    if *g {
                        return;
                    }
                }
                let pending: Vec<(u64, T)> = s2
                    .lock()
                    .unacked
                    .iter()
                    .map(|(&s, p)| (s, p.clone()))
                    .collect();
                for (seq, payload) in pending {
                    if !l2.send(Packet::Data { seq, payload }) {
                        return; // link down
                    }
                    rtx2.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn retx thread");
        ReliableSender {
            state,
            link,
            stop,
            retransmits,
            retx: Some(retx),
        }
    }

    /// Sends a payload; it will be retransmitted until acked.
    pub fn send(&self, payload: T) {
        let seq = {
            let mut st = self.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            st.unacked.insert(seq, payload.clone());
            seq
        };
        self.link.send(Packet::Data { seq, payload });
    }

    /// Processes an incoming ack (fed from the reverse link).
    pub fn on_ack(&self, seq: u64) {
        self.state.lock().unacked.remove(&seq);
    }

    /// Packets not yet acknowledged (for tests/metrics).
    pub fn unacked(&self) -> usize {
        self.state.lock().unacked.len()
    }

    /// Total packet retransmissions performed by the timer thread —
    /// monotone, never reset. The cluster's observability layer polls this
    /// and folds the delta into its `net.retransmits` counter.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }
}

/// The receiving half: deduplicates and acks.
pub struct ReliableReceiver {
    seen: Mutex<HashSet<u64>>,
}

impl ReliableReceiver {
    /// Fresh receiver state.
    pub fn new() -> ReliableReceiver {
        ReliableReceiver {
            seen: Mutex::new(LockClass::Reliable, HashSet::new()),
        }
    }

    /// Handles an incoming data packet. First receipt is offered to
    /// `accept`; only an accepted packet is recorded and acknowledged, so a
    /// rejected one keeps retransmitting until the destination can take it
    /// (or the sender's journal is drained for failover). Duplicates are
    /// re-acknowledged without redelivery.
    pub fn on_data<T>(
        &self,
        seq: u64,
        payload: T,
        send_ack: impl FnOnce(u64),
        accept: impl FnOnce(T) -> bool,
    ) {
        if self.seen.lock().contains(&seq) {
            send_ack(seq); // duplicate: the original ack may have been lost
            return;
        }
        if accept(payload) {
            self.seen.lock().insert(seq);
            send_ack(seq);
        }
    }

    /// Whether `seq` has been accepted by this receiver.
    pub fn contains(&self, seq: u64) -> bool {
        self.seen.lock().contains(&seq)
    }
}

impl Default for ReliableReceiver {
    fn default() -> Self {
        ReliableReceiver::new()
    }
}

/// A bidirectional reliable pipe over two lossy links — convenience used
/// by the cluster's data plane and by tests.
pub struct ReliablePipe<T: Clone + Send + 'static> {
    sender: ReliableSender<T>,
    receiver: Arc<ReliableReceiver>,
}

impl<T: Clone + Send + 'static> ReliablePipe<T> {
    /// Builds the forward path `a → b` over `cfg`-faulty links. `deliver`
    /// receives each payload at most once on the `b` side; returning
    /// `false` rejects the packet, leaving it unacknowledged in the
    /// sender's journal for retransmission (or failover draining).
    pub fn new(
        cfg: LinkConfig,
        retx_every: Duration,
        deliver: impl Fn(T) -> bool + Send + Sync + 'static,
    ) -> ReliablePipe<T> {
        // The ack (reverse) link shares the fault model.
        type AckLink<T> = Arc<Mutex<Option<Arc<Link<Packet<T>>>>>>;
        let ack_holder: AckLink<T> = Arc::new(Mutex::new(LockClass::Reliable, None));

        let receiver = Arc::new(ReliableReceiver::new());
        let rx = receiver.clone();
        let ack_for_fwd = ack_holder.clone();
        let fwd: Arc<Link<Packet<T>>> = Arc::new(Link::new_cloneable(
            LinkConfig {
                seed: cfg.seed,
                ..cfg.clone()
            },
            move |pkt| {
                if let Packet::Data { seq, payload } = pkt {
                    let ack = ack_for_fwd.lock().clone();
                    rx.on_data(
                        seq,
                        payload,
                        |s| {
                            if let Some(ack) = &ack {
                                ack.send(Packet::Ack { seq: s });
                            }
                        },
                        &deliver,
                    );
                }
            },
        ));

        let sender = ReliableSender::new(fwd, retx_every);

        // Reverse link: acks flow back into the sender.
        let sender_state = sender.state.clone();
        let rev: Arc<Link<Packet<T>>> = Arc::new(Link::new_cloneable(
            LinkConfig {
                seed: cfg.seed.wrapping_add(1),
                ..cfg
            },
            move |pkt| {
                if let Packet::Ack { seq } = pkt {
                    sender_state.lock().unacked.remove(&seq);
                }
            },
        ));
        *ack_holder.lock() = Some(rev);

        ReliablePipe { sender, receiver }
    }

    /// Sends a payload with the exactly-once guarantee.
    pub fn send(&self, payload: T) {
        self.sender.send(payload);
    }

    /// Outstanding unacknowledged packets.
    pub fn unacked(&self) -> usize {
        self.sender.unacked()
    }

    /// Total retransmissions on the forward path.
    pub fn retransmits(&self) -> u64 {
        self.sender.retransmits()
    }

    /// Removes and returns every journalled packet the receiver has
    /// provably *not* accepted. Packets the receiver accepted but whose
    /// acks were lost are dropped from the journal without being returned —
    /// they already reached the destination, and returning them would
    /// duplicate. Used on suspicion of the destination node to re-route
    /// in-flight messages.
    pub fn drain_undelivered(&self) -> Vec<T> {
        let taken: Vec<(u64, T)> = {
            let mut st = self.sender.state.lock();
            st.unacked.drain().collect()
        };
        taken
            .into_iter()
            .filter(|(seq, _)| !self.receiver.contains(*seq))
            .map(|(_, p)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn wait_for(pred: impl Fn() -> bool, secs: u64) {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn exactly_once_over_clean_link() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let pipe = ReliablePipe::new(
            LinkConfig::ideal(),
            Duration::from_millis(20),
            move |_x: u32| {
                c.fetch_add(1, Ordering::Relaxed);
                true
            },
        );
        for i in 0..200 {
            pipe.send(i);
        }
        wait_for(|| count.load(Ordering::Relaxed) >= 200, 10);
        // Let retransmits run a bit; duplicates must NOT appear.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(count.load(Ordering::Relaxed), 200);
        wait_for(|| pipe.unacked() == 0, 10);
    }

    #[test]
    fn exactly_once_under_heavy_loss_and_duplication() {
        let got = Arc::new(Mutex::new(
            LockClass::Other("test.net.reliable_log"),
            Vec::new(),
        ));
        let g = got.clone();
        let cfg = LinkConfig::lossy(0.4, 0.3, 99);
        let pipe = ReliablePipe::new(cfg, Duration::from_millis(10), move |x: u32| {
            g.lock().push(x);
            true
        });
        let n = 300u32;
        for i in 0..n {
            pipe.send(i);
        }
        wait_for(|| got.lock().len() >= n as usize, 30);
        std::thread::sleep(Duration::from_millis(300));
        let mut v = got.lock().clone();
        let len = v.len();
        v.sort_unstable();
        v.dedup();
        assert_eq!(len, v.len(), "duplicates leaked through");
        assert_eq!(v, (0..n).collect::<Vec<_>>(), "payloads missing");
    }

    #[test]
    fn rejected_packets_stay_unacked_until_accepted() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let got = Arc::new(Mutex::new(
            LockClass::Other("test.net.reliable_log"),
            Vec::new(),
        ));
        let (g2, gt2) = (gate.clone(), got.clone());
        let pipe = ReliablePipe::new(
            LinkConfig::ideal(),
            Duration::from_millis(5),
            move |x: u32| {
                if g2.load(Ordering::Acquire) {
                    gt2.lock().push(x);
                    true
                } else {
                    false
                }
            },
        );
        pipe.send(1);
        pipe.send(2);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pipe.unacked(), 2, "rejected packets must stay journalled");
        assert!(got.lock().is_empty());
        gate.store(true, Ordering::Release);
        wait_for(|| pipe.unacked() == 0, 10);
        let mut v = got.lock().clone();
        v.sort_unstable();
        assert_eq!(
            v,
            vec![1, 2],
            "retransmission must deliver after acceptance"
        );
    }

    #[test]
    fn drain_undelivered_returns_only_unaccepted_packets() {
        // Accept only even payloads; odd ones stay journalled and must be
        // the exact drain result.
        let pipe = ReliablePipe::new(
            LinkConfig::ideal(),
            Duration::from_secs(60),
            move |x: u32| x.is_multiple_of(2),
        );
        for i in 0..10 {
            pipe.send(i);
        }
        wait_for(|| pipe.unacked() == 5, 10);
        let mut drained = pipe.drain_undelivered();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 3, 5, 7, 9]);
        assert_eq!(pipe.unacked(), 0, "drain must empty the journal");
        assert!(pipe.drain_undelivered().is_empty());
    }

    #[test]
    fn dropping_sender_joins_retx_thread_promptly() {
        // Regression: Drop used to only raise a flag the timer thread
        // checked after sleeping a full period — with a long period the
        // thread outlived the sender by up to `retx_every`.
        let pipe = ReliablePipe::new(LinkConfig::ideal(), Duration::from_secs(60), |_: u32| true);
        pipe.send(7);
        let start = Instant::now();
        drop(pipe);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait out the retransmission period"
        );
    }
}
