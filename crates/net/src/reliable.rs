//! Reliable at-least-once delivery with receiver-side deduplication —
//! exactly-once end to end over lossy links.
//!
//! The paper's delivery guarantee is "message delivery is only finitely
//! delayed" (§5.3/§5.6); this layer restores that guarantee over a link
//! that drops and duplicates. Classic mechanism: the sender numbers
//! packets and retransmits unacknowledged ones on a timer; the receiver
//! delivers each sequence number once and (re-)acknowledges everything it
//! has seen. No ordering is imposed — reordering remains visible to the
//! application, as the paper allows.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::link::{Link, LinkConfig};

/// A numbered packet or an acknowledgment.
#[derive(Debug, Clone)]
pub enum Packet<T> {
    /// Payload with sender-assigned sequence number.
    Data {
        /// Sender-assigned, strictly increasing.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Cumulative-free ack of one sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

struct SenderState<T> {
    unacked: HashMap<u64, T>,
    next_seq: u64,
}

/// The sending half: call [`ReliableSender::send`]; a retransmit timer
/// thread re-sends unacked packets until acknowledged. Dropping the sender
/// stops the timer thread.
pub struct ReliableSender<T: Clone + Send + 'static> {
    state: Arc<Mutex<SenderState<T>>>,
    link: Arc<Link<Packet<T>>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl<T: Clone + Send + 'static> Drop for ReliableSender<T> {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
    }
}

impl<T: Clone + Send + 'static> ReliableSender<T> {
    /// Wraps a forward link. `retx_every` is the retransmission period.
    pub fn new(link: Arc<Link<Packet<T>>>, retx_every: Duration) -> ReliableSender<T> {
        let state: Arc<Mutex<SenderState<T>>> =
            Arc::new(Mutex::new(SenderState { unacked: HashMap::new(), next_seq: 0 }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = state.clone();
        let l2 = link.clone();
        let stop2 = stop.clone();
        std::thread::Builder::new()
            .name("actorspace-retx".into())
            .spawn(move || loop {
                std::thread::sleep(retx_every);
                if stop2.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                let pending: Vec<(u64, T)> =
                    s2.lock().unacked.iter().map(|(&s, p)| (s, p.clone())).collect();
                for (seq, payload) in pending {
                    if !l2.send(Packet::Data { seq, payload }) {
                        return; // link down
                    }
                }
            })
            .expect("spawn retx thread");
        ReliableSender { state, link, stop }
    }

    /// Sends a payload; it will be retransmitted until acked.
    pub fn send(&self, payload: T) {
        let seq = {
            let mut st = self.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            st.unacked.insert(seq, payload.clone());
            seq
        };
        self.link.send(Packet::Data { seq, payload });
    }

    /// Processes an incoming ack (fed from the reverse link).
    pub fn on_ack(&self, seq: u64) {
        self.state.lock().unacked.remove(&seq);
    }

    /// Packets not yet acknowledged (for tests/metrics).
    pub fn unacked(&self) -> usize {
        self.state.lock().unacked.len()
    }
}

/// The receiving half: deduplicates and acks.
pub struct ReliableReceiver {
    seen: Mutex<HashSet<u64>>,
}

impl ReliableReceiver {
    /// Fresh receiver state.
    pub fn new() -> ReliableReceiver {
        ReliableReceiver { seen: Mutex::new(HashSet::new()) }
    }

    /// Handles an incoming data packet: returns `Some(payload)` on first
    /// receipt, `None` for duplicates. `send_ack` transmits the ack on the
    /// reverse path (it may itself be lost; retransmission covers that).
    pub fn on_data<T>(&self, seq: u64, payload: T, send_ack: impl FnOnce(u64)) -> Option<T> {
        let fresh = self.seen.lock().insert(seq);
        send_ack(seq);
        fresh.then_some(payload)
    }
}

impl Default for ReliableReceiver {
    fn default() -> Self {
        ReliableReceiver::new()
    }
}

/// A bidirectional reliable pipe over two lossy links — convenience used
/// by the cluster's data plane and by tests.
pub struct ReliablePipe<T: Clone + Send + 'static> {
    sender: ReliableSender<T>,
}

impl<T: Clone + Send + 'static> ReliablePipe<T> {
    /// Builds the forward path `a → b` over `cfg`-faulty links. `deliver`
    /// receives each payload exactly once on the `b` side.
    pub fn new(
        cfg: LinkConfig,
        retx_every: Duration,
        deliver: impl Fn(T) + Send + Sync + 'static,
    ) -> ReliablePipe<T> {
        // The ack (reverse) link shares the fault model.
        type AckLink<T> = Arc<Mutex<Option<Arc<Link<Packet<T>>>>>>;
        let ack_holder: AckLink<T> = Arc::new(Mutex::new(None));

        let receiver = Arc::new(ReliableReceiver::new());
        let ack_for_fwd = ack_holder.clone();
        let fwd: Arc<Link<Packet<T>>> = Arc::new(Link::new_cloneable(
            LinkConfig { seed: cfg.seed, ..cfg.clone() },
            move |pkt| {
                if let Packet::Data { seq, payload } = pkt {
                    let ack = ack_for_fwd.lock().clone();
                    if let Some(p) = receiver.on_data(seq, payload, |s| {
                        if let Some(ack) = &ack {
                            ack.send(Packet::Ack { seq: s });
                        }
                    }) {
                        deliver(p);
                    }
                }
            },
        ));

        let sender = ReliableSender::new(fwd, retx_every);

        // Reverse link: acks flow back into the sender.
        let sender_state = sender.state.clone();
        let rev: Arc<Link<Packet<T>>> = Arc::new(Link::new_cloneable(
            LinkConfig { seed: cfg.seed.wrapping_add(1), ..cfg },
            move |pkt| {
                if let Packet::Ack { seq } = pkt {
                    sender_state.lock().unacked.remove(&seq);
                }
            },
        ));
        *ack_holder.lock() = Some(rev);

        ReliablePipe { sender }
    }

    /// Sends a payload with the exactly-once guarantee.
    pub fn send(&self, payload: T) {
        self.sender.send(payload);
    }

    /// Outstanding unacknowledged packets.
    pub fn unacked(&self) -> usize {
        self.sender.unacked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn wait_for(pred: impl Fn() -> bool, secs: u64) {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn exactly_once_over_clean_link() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let pipe = ReliablePipe::new(LinkConfig::ideal(), Duration::from_millis(20), move |_x: u32| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        for i in 0..200 {
            pipe.send(i);
        }
        wait_for(|| count.load(Ordering::Relaxed) >= 200, 10);
        // Let retransmits run a bit; duplicates must NOT appear.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(count.load(Ordering::Relaxed), 200);
        wait_for(|| pipe.unacked() == 0, 10);
    }

    #[test]
    fn exactly_once_under_heavy_loss_and_duplication() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let cfg = LinkConfig::lossy(0.4, 0.3, 99);
        let pipe = ReliablePipe::new(cfg, Duration::from_millis(10), move |x: u32| {
            g.lock().push(x);
        });
        let n = 300u32;
        for i in 0..n {
            pipe.send(i);
        }
        wait_for(|| got.lock().len() >= n as usize, 30);
        std::thread::sleep(Duration::from_millis(300));
        let mut v = got.lock().clone();
        let len = v.len();
        v.sort_unstable();
        v.dedup();
        assert_eq!(len, v.len(), "duplicates leaked through");
        assert_eq!(v, (0..n).collect::<Vec<_>>(), "payloads missing");
    }
}
