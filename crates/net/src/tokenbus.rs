//! The rotating-token protocol — the Amoeba-style alternative \[23].
//!
//! Instead of a central sequencer, a logical token circulates among the
//! nodes. A node buffers its submissions until it holds the token; while
//! holding it, the node stamps its buffered events with consecutive global
//! sequence numbers and multicasts them. The token hop cost models the
//! rotation latency. Total order holds because only the token holder
//! stamps, and the counter travels with the token.
//!
//! Compared to the sequencer, submissions pay an average of half a rotation
//! of extra latency when idle, but there is no central process to saturate
//! — the trade-off benchmark E3 measures.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_lockcheck::{LockClass, Mutex};

use crate::bus::{BusEvent, OrderedBroadcast, SeqEvent};
use crate::link::Link;

/// The token-rotation ordered broadcast.
pub struct TokenBus {
    pending: Arc<Vec<Mutex<VecDeque<BusEvent>>>>,
    submitted: AtomicU64,
    issued: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl TokenBus {
    /// Builds the bus. `hop` is the token's per-node hold/travel time.
    pub fn new(n_nodes: usize, hop: Duration, downlinks: Vec<Arc<Link<SeqEvent>>>) -> TokenBus {
        let pending: Arc<Vec<Mutex<VecDeque<BusEvent>>>> = Arc::new(
            (0..n_nodes)
                .map(|_| Mutex::new(LockClass::Bus, VecDeque::new()))
                .collect(),
        );
        let issued = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let p2 = pending.clone();
        let issued2 = issued.clone();
        let stop2 = stop.clone();
        std::thread::Builder::new()
            .name("actorspace-token".into())
            .spawn(move || {
                let mut seq = 0u64;
                let mut holder = 0usize;
                loop {
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    // Token travel/hold time. A short sleep keeps rotation
                    // cheap when idle while still modelling the hop cost.
                    std::thread::sleep(hop);
                    // The holder drains its buffered submissions.
                    let drained: Vec<BusEvent> = {
                        let mut q = p2[holder].lock();
                        q.drain(..).collect()
                    };
                    for event in drained {
                        for link in &downlinks {
                            link.send(SeqEvent {
                                seq,
                                event: event.clone(),
                            });
                        }
                        seq += 1;
                    }
                    issued2.store(seq, Ordering::Release);
                    holder = (holder + 1) % p2.len();
                }
            })
            .expect("spawn token thread");

        TokenBus {
            pending,
            submitted: AtomicU64::new(0),
            issued,
            stop,
        }
    }
}

impl Drop for TokenBus {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl OrderedBroadcast for TokenBus {
    fn submit(&self, event: BusEvent) {
        self.submitted.fetch_add(1, Ordering::AcqRel);
        let node = event.origin.0 as usize % self.pending.len();
        self.pending[node].lock().push_back(event);
    }

    fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Acquire)
    }

    fn issued(&self) -> u64 {
        self.issued.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Applier, BusOp};
    use crate::directory::NodeId;
    use crate::link::LinkConfig;
    use actorspace_core::ActorId;
    use std::time::Instant;

    #[test]
    fn token_bus_preserves_total_order_across_nodes() {
        let n_nodes = 3;
        let logs: Vec<Arc<Mutex<Vec<u64>>>> = (0..n_nodes)
            .map(|_| {
                Arc::new(Mutex::new(
                    LockClass::Other("test.net.tokenbus_log"),
                    Vec::new(),
                ))
            })
            .collect();
        let appliers: Vec<Arc<Applier>> = logs
            .iter()
            .map(|log| {
                let log = log.clone();
                Arc::new(Applier::new(move |e| {
                    if let BusOp::RemoveActor { id } = e.op {
                        log.lock().push(id.0);
                    }
                }))
            })
            .collect();
        let downlinks: Vec<Arc<Link<SeqEvent>>> = appliers
            .iter()
            .map(|a| {
                let a = a.clone();
                Arc::new(Link::new(
                    LinkConfig {
                        jitter: Duration::from_millis(1),
                        seed: 5,
                        ..LinkConfig::ideal()
                    },
                    move |e| a.on_event(e),
                ))
            })
            .collect();
        let bus = TokenBus::new(n_nodes, Duration::from_micros(200), downlinks);

        for i in 0..60u64 {
            bus.submit(BusEvent {
                origin: NodeId((i % n_nodes as u64) as u16),
                op: BusOp::RemoveActor { id: ActorId(i) },
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while appliers.iter().any(|a| a.applied() < 60) {
            assert!(Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(5));
        }
        let first = logs[0].lock().clone();
        assert_eq!(first.len(), 60);
        for log in &logs[1..] {
            assert_eq!(*log.lock(), first, "token bus order diverged");
        }
        // Per-origin FIFO: events from the same origin appear in
        // submission order.
        for origin in 0..n_nodes as u64 {
            let seen: Vec<u64> = first.iter().copied().filter(|i| i % 3 == origin).collect();
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(seen, sorted, "origin {origin} reordered");
        }
        assert_eq!(bus.issued(), 60);
    }
}
