//! The centralized sequencer protocol.
//!
//! §7.3: "The broadcasting between the coordinators could, for instance, be
//! done using either the Amoeba broadcast protocol \[23] or a centralized
//! broadcaster and sequencer \[9]; both have orderings of some sort on
//! broadcast messages."
//!
//! This is the \[9]-style protocol (Chang–Maxemchuk's central variant): one
//! process receives every submission, stamps it with the next global
//! sequence number, and multicasts it to all nodes. Submissions travel an
//! uplink with latency; stamped events travel per-node downlinks with
//! latency and jitter, so arrivals can be out of order — the per-node
//! [`Applier`](crate::bus::Applier) restores sequence order. Bus links are
//! loss-free: the paper assumes a reliable broadcast protocol underneath
//! (see DESIGN.md substitutions).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use crate::bus::{BusEvent, OrderedBroadcast, SeqEvent};
use crate::link::{Link, LinkConfig};

/// The centralized broadcaster/sequencer.
pub struct Sequencer {
    uplink: Link<BusEvent>,
    submitted: AtomicU64,
    issued: Arc<AtomicU64>,
}

impl Sequencer {
    /// Builds the sequencer. `downlinks[n]` delivers sequenced events to
    /// node `n`'s applier; `bus_cfg` models the uplink/downlink latency.
    pub fn new(bus_cfg: LinkConfig, downlinks: Vec<Arc<Link<SeqEvent>>>) -> Sequencer {
        let issued = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<BusEvent>();

        // The sequencer process: stamp and multicast.
        let issued2 = issued.clone();
        std::thread::Builder::new()
            .name("actorspace-sequencer".into())
            .spawn(move || {
                let mut seq = 0u64;
                while let Ok(event) = rx.recv() {
                    for link in &downlinks {
                        link.send(SeqEvent {
                            seq,
                            event: event.clone(),
                        });
                    }
                    seq += 1;
                    issued2.store(seq, Ordering::Release);
                }
            })
            .expect("spawn sequencer");

        // The shared uplink: submissions experience link latency before
        // reaching the sequencer.
        let uplink = Link::new(
            LinkConfig {
                drop_prob: 0.0,
                dup_prob: 0.0,
                ..bus_cfg
            },
            move |e| {
                let _ = tx.send(e);
            },
        );

        Sequencer {
            uplink,
            submitted: AtomicU64::new(0),
            issued,
        }
    }
}

impl OrderedBroadcast for Sequencer {
    fn submit(&self, event: BusEvent) {
        self.submitted.fetch_add(1, Ordering::AcqRel);
        self.uplink.send(event);
    }

    fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Acquire)
    }

    fn issued(&self) -> u64 {
        self.issued.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Applier, BusOp};
    use crate::directory::NodeId;
    use actorspace_core::ActorId;
    use actorspace_lockcheck::{LockClass, Mutex};
    use std::time::{Duration, Instant};

    #[test]
    fn all_nodes_see_the_same_total_order() {
        let n_nodes = 4;
        let logs: Vec<Arc<Mutex<Vec<u64>>>> = (0..n_nodes)
            .map(|_| {
                Arc::new(Mutex::new(
                    LockClass::Other("test.net.sequencer_log"),
                    Vec::new(),
                ))
            })
            .collect();
        let appliers: Vec<Arc<Applier>> = logs
            .iter()
            .map(|log| {
                let log = log.clone();
                Arc::new(Applier::new(move |e| {
                    if let BusOp::RemoveActor { id } = e.op {
                        log.lock().push(id.0);
                    }
                }))
            })
            .collect();
        let downlinks: Vec<Arc<Link<SeqEvent>>> = appliers
            .iter()
            .map(|a| {
                let a = a.clone();
                // Jittered downlinks: arrival order differs per node.
                Arc::new(Link::new(
                    LinkConfig {
                        latency: Duration::from_micros(100),
                        jitter: Duration::from_millis(2),
                        seed: 11,
                        ..LinkConfig::ideal()
                    },
                    move |e| a.on_event(e),
                ))
            })
            .collect();
        let seq = Sequencer::new(LinkConfig::ideal(), downlinks);

        // Two "nodes" submit interleaved.
        for i in 0..50u64 {
            seq.submit(BusEvent {
                origin: NodeId((i % 2) as u16),
                op: BusOp::RemoveActor { id: ActorId(i) },
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while appliers.iter().any(|a| a.applied() < 50) {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for application"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let first = logs[0].lock().clone();
        assert_eq!(first.len(), 50);
        for log in &logs[1..] {
            assert_eq!(*log.lock(), first, "nodes disagree on the total order");
        }
        assert_eq!(seq.issued(), 50);
        assert_eq!(seq.submitted(), 50);
    }
}
