//! Coordinator-bus events and the ordered-broadcast abstraction.
//!
//! Every state-changing ActorSpace primitive becomes a [`BusOp`] event.
//! An [`OrderedBroadcast`] implementation assigns each submitted event a
//! global sequence number and delivers it to *every* node (including the
//! origin); per-node [`Applier`]s reorder arrivals into sequence order, so
//! "all nodes have the same view of visibility" (§7.3). Two protocols are
//! provided, matching the paper's two citations: a centralized
//! [`Sequencer`](crate::sequencer::Sequencer) \[9] and a rotating
//! [`TokenBus`](crate::tokenbus::TokenBus) \[23].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use actorspace_atoms::Path;
use actorspace_capability::{Capability, Guard};
use actorspace_core::{ActorId, MemberId, SpaceId};
use actorspace_lockcheck::{LockClass, Mutex};

use crate::directory::NodeId;

/// A replicated state-change operation.
#[derive(Debug, Clone)]
pub enum BusOp {
    /// A new actor exists (record only; the behavior cell lives on the
    /// origin node).
    CreateActor {
        /// The allocated address (encodes the owning node).
        id: ActorId,
        /// Host space (§7.1).
        host: SpaceId,
        /// Capability guard bound at creation.
        guard: Guard,
    },
    /// A new actorSpace exists.
    CreateSpace {
        /// The allocated address.
        id: SpaceId,
        /// Capability guard bound at creation.
        guard: Guard,
    },
    /// `make_visible` (§5.4).
    MakeVisible {
        /// Who becomes visible.
        member: MemberId,
        /// Attributes as viewed by `space`.
        attrs: Vec<Path>,
        /// The containing space.
        space: SpaceId,
        /// Presented capability (validated independently on every replica —
        /// all replicas hold the same guards, so they agree).
        cap: Option<Capability>,
    },
    /// `make_invisible` (§5.4).
    MakeInvisible {
        /// Who becomes invisible.
        member: MemberId,
        /// In which space.
        space: SpaceId,
        /// Presented capability.
        cap: Option<Capability>,
    },
    /// `change_attributes` (§5.4).
    ChangeAttributes {
        /// Whose attributes change.
        member: MemberId,
        /// The replacement attribute list.
        attrs: Vec<Path>,
        /// As viewed by which space.
        space: SpaceId,
        /// Presented capability.
        cap: Option<Capability>,
    },
    /// Space destruction (§7.1).
    DestroySpace {
        /// Which space.
        space: SpaceId,
        /// Presented capability.
        cap: Option<Capability>,
    },
    /// Actor death.
    RemoveActor {
        /// Which actor.
        id: ActorId,
    },
    /// A node has been declared failed by `origin`'s failure detector.
    /// Every replica purges the dead node's actors from all visibility
    /// tables, so pattern resolution falls back to surviving matches.
    /// Ordering the purge through the bus keeps replicas convergent.
    NodeDown {
        /// The failed node.
        node: NodeId,
    },
    /// A node has re-registered through the directory after a restart.
    NodeUp {
        /// The restarted node.
        node: NodeId,
    },
}

/// A submitted event, tagged with its origin node.
#[derive(Debug, Clone)]
pub struct BusEvent {
    /// The submitting node.
    pub origin: NodeId,
    /// The operation.
    pub op: BusOp,
}

/// A sequenced event as delivered to every node.
#[derive(Debug, Clone)]
pub struct SeqEvent {
    /// Global sequence number, starting at 0, gap-free.
    pub seq: u64,
    /// The event.
    pub event: BusEvent,
}

/// Totally ordered broadcast of coordinator events.
pub trait OrderedBroadcast: Send + Sync {
    /// Submits an event for global ordering. Returns immediately; the
    /// event is delivered to every node (the origin included) in sequence
    /// order, after link latency.
    fn submit(&self, event: BusEvent);

    /// Events submitted so far (cluster-wide).
    fn submitted(&self) -> u64;

    /// Events that have been assigned a sequence number so far.
    fn issued(&self) -> u64;
}

/// Per-node reordering buffer: arrivals may be out of order (link jitter);
/// application is strictly `0, 1, 2, …`.
pub struct Applier {
    state: Mutex<ApplierState>,
    applied: AtomicU64,
    apply: Box<dyn Fn(BusEvent) + Send + Sync>,
}

struct ApplierState {
    next: u64,
    buffer: BTreeMap<u64, BusEvent>,
}

impl Applier {
    /// Builds an applier calling `apply` for each event, in order.
    pub fn new(apply: impl Fn(BusEvent) + Send + Sync + 'static) -> Applier {
        Applier {
            state: Mutex::new(
                LockClass::Bus,
                ApplierState {
                    next: 0,
                    buffer: BTreeMap::new(),
                },
            ),
            applied: AtomicU64::new(0),
            apply: Box::new(apply),
        }
    }

    /// Feeds one arrival. Duplicates (seq below the watermark) are ignored.
    pub fn on_event(&self, e: SeqEvent) {
        let mut ready = Vec::new();
        {
            let mut st = self.state.lock();
            if e.seq < st.next {
                return; // duplicate
            }
            st.buffer.insert(e.seq, e.event);
            loop {
                let next = st.next;
                let Some(ev) = st.buffer.remove(&next) else {
                    break;
                };
                ready.push(ev);
                st.next += 1;
            }
        }
        for ev in ready {
            (self.apply)(ev);
            self.applied.fetch_add(1, Ordering::Release);
        }
    }

    /// Events applied so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }
}

/// A retained copy of the bus history, for replaying into a restarted
/// node's fresh [`Applier`].
///
/// The bus is loss-free and every node's downlink sees every event, so
/// recording at any one downlink yields a gap-free log. A restarted node
/// replays the snapshot (original creations, visibility changes, and the
/// `NodeDown` purges of its own previous incarnation, in global order) and
/// converges to the exact replica state of the survivors; live events
/// racing the replay are deduplicated by the applier's watermark.
pub struct EventLog {
    events: Mutex<BTreeMap<u64, BusEvent>>,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog {
            events: Mutex::new(LockClass::Bus, BTreeMap::new()),
        }
    }
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Records one sequenced event (idempotent per sequence number).
    pub fn record(&self, e: &SeqEvent) {
        self.events
            .lock()
            .entry(e.seq)
            .or_insert_with(|| e.event.clone());
    }

    /// The history so far, in sequence order.
    pub fn snapshot(&self) -> Vec<SeqEvent> {
        self.events
            .lock()
            .iter()
            .map(|(&seq, event)| SeqEvent {
                seq,
                event: event.clone(),
            })
            .collect()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> SeqEvent {
        SeqEvent {
            seq,
            event: BusEvent {
                origin: NodeId(0),
                op: BusOp::RemoveActor { id: ActorId(seq) },
            },
        }
    }

    #[test]
    fn in_order_events_apply_immediately() {
        let got = std::sync::Arc::new(Mutex::new(LockClass::Other("test.net.bus_log"), Vec::new()));
        let g = got.clone();
        let a = Applier::new(move |e| {
            if let BusOp::RemoveActor { id } = e.op {
                g.lock().push(id.0);
            }
        });
        for i in 0..5 {
            a.on_event(ev(i));
        }
        assert_eq!(*got.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(a.applied(), 5);
    }

    #[test]
    fn out_of_order_events_are_buffered() {
        let got = std::sync::Arc::new(Mutex::new(LockClass::Other("test.net.bus_log"), Vec::new()));
        let g = got.clone();
        let a = Applier::new(move |e| {
            if let BusOp::RemoveActor { id } = e.op {
                g.lock().push(id.0);
            }
        });
        a.on_event(ev(2));
        a.on_event(ev(1));
        assert!(got.lock().is_empty(), "nothing applies before seq 0");
        a.on_event(ev(0));
        assert_eq!(*got.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_ignored() {
        let count = std::sync::Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let a = Applier::new(move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        a.on_event(ev(0));
        a.on_event(ev(0));
        a.on_event(ev(1));
        a.on_event(ev(1));
        a.on_event(ev(0));
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
