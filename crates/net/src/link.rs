//! Simulated point-to-point links.
//!
//! A [`Link`] is a unidirectional channel with a delivery thread that
//! imposes latency (base + uniform jitter), probabilistic drops, and
//! probabilistic duplication. Jitter makes delivery order differ from send
//! order — deliberately, since the paper guarantees no order on messages
//! (§5.3/§5.6); tests that need loss-free links set the probabilities to
//! zero. The faulty configurations are what [`crate::reliable`] is built
//! to survive.

use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fault and delay model for one link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: Duration,
    /// Uniform extra delay in `[0, jitter]` per message.
    pub jitter: Duration,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// RNG seed (deterministic faults for tests).
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::from_micros(50),
            jitter: Duration::from_micros(20),
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed: 0x5eed,
        }
    }
}

impl LinkConfig {
    /// A loss-free, low-latency configuration.
    pub fn ideal() -> LinkConfig {
        LinkConfig {
            jitter: Duration::ZERO,
            ..LinkConfig::default()
        }
    }

    /// A lossy configuration for failure-injection tests.
    pub fn lossy(drop_prob: f64, dup_prob: f64, seed: u64) -> LinkConfig {
        LinkConfig {
            drop_prob,
            dup_prob,
            seed,
            ..LinkConfig::default()
        }
    }
}

struct Scheduled<T> {
    due: Instant,
    order: u64,
    item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.order == other.order
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: the heap becomes a min-heap on due time.
        other.due.cmp(&self.due).then(other.order.cmp(&self.order))
    }
}

/// A unidirectional, fault-injected, delayed delivery channel.
pub struct Link<T: Send + 'static> {
    tx: mpsc::Sender<T>,
}

impl<T: Send + 'static> Link<T> {
    /// Builds a link whose messages are handed to `deliver` after the
    /// configured delay (possibly dropped or reordered). Duplication
    /// requires `T: Clone` — use [`Link::new_cloneable`]; here `dup_prob`
    /// is forced to zero.
    pub fn new(cfg: LinkConfig, deliver: impl Fn(T) + Send + 'static) -> Link<T> {
        let cfg = LinkConfig {
            dup_prob: 0.0,
            ..cfg
        };
        let (tx, rx) = mpsc::channel::<T>();
        std::thread::Builder::new()
            .name("actorspace-link".into())
            .spawn(move || pump(cfg, rx, deliver))
            .expect("spawn link thread");
        Link { tx }
    }

    /// Sends an item into the link. Returns false if the link is down.
    pub fn send(&self, item: T) -> bool {
        self.tx.send(item).is_ok()
    }
}

fn pump<T>(cfg: LinkConfig, rx: mpsc::Receiver<T>, deliver: impl Fn(T)) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Scheduled<T>> = BinaryHeap::new();
    let mut order = 0u64;
    let mut closed = false;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|s| s.due <= now) {
            let s = heap.pop().expect("peeked");
            deliver(s.item);
        }
        if closed && heap.is_empty() {
            return;
        }
        // Wait for the next due time or the next incoming message.
        let wait = heap
            .peek()
            .map(|s| s.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(item) => {
                if rng.gen_bool(cfg.drop_prob.clamp(0.0, 1.0)) {
                    continue; // dropped on the wire
                }
                let jitter = if cfg.jitter.is_zero() {
                    Duration::ZERO
                } else {
                    cfg.jitter.mul_f64(rng.gen::<f64>())
                };
                let due = Instant::now() + cfg.latency + jitter;
                heap.push(Scheduled { due, order, item });
                order += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => closed = true,
        }
    }
}

impl<T: Clone + Send + 'static> Link<T> {
    /// Like [`Link::new`] but supports duplication (requires `T: Clone`).
    pub fn new_cloneable(cfg: LinkConfig, deliver: impl Fn(T) + Send + 'static) -> Link<T> {
        let (tx, rx) = mpsc::channel::<T>();
        std::thread::Builder::new()
            .name("actorspace-link".into())
            .spawn(move || pump_cloneable(cfg, rx, deliver))
            .expect("spawn link thread");
        Link { tx }
    }
}

fn pump_cloneable<T: Clone>(cfg: LinkConfig, rx: mpsc::Receiver<T>, deliver: impl Fn(T)) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Scheduled<T>> = BinaryHeap::new();
    let mut order = 0u64;
    let mut closed = false;
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|s| s.due <= now) {
            let s = heap.pop().expect("peeked");
            deliver(s.item);
        }
        if closed && heap.is_empty() {
            return;
        }
        let wait = heap
            .peek()
            .map(|s| s.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(item) => {
                if rng.gen_bool(cfg.drop_prob.clamp(0.0, 1.0)) {
                    continue;
                }
                let mut schedule = |item: T, rng: &mut SmallRng, order: &mut u64| {
                    let jitter = if cfg.jitter.is_zero() {
                        Duration::ZERO
                    } else {
                        cfg.jitter.mul_f64(rng.gen::<f64>())
                    };
                    heap.push(Scheduled {
                        due: Instant::now() + cfg.latency + jitter,
                        order: *order,
                        item,
                    });
                    *order += 1;
                };
                if rng.gen_bool(cfg.dup_prob.clamp(0.0, 1.0)) {
                    schedule(item.clone(), &mut rng, &mut order);
                }
                schedule(item, &mut rng, &mut order);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => closed = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn delivers_after_latency() {
        let got = Arc::new(AtomicUsize::new(0));
        let g = got.clone();
        let cfg = LinkConfig {
            latency: Duration::from_millis(20),
            jitter: Duration::ZERO,
            ..LinkConfig::ideal()
        };
        let link = Link::new(cfg, move |x: u32| {
            g.store(x as usize, Ordering::Release);
        });
        let t0 = Instant::now();
        assert!(link.send(7));
        while got.load(Ordering::Acquire) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(18),
            "{:?}",
            t0.elapsed()
        );
        assert_eq!(got.load(Ordering::Acquire), 7);
    }

    #[test]
    fn all_messages_arrive_without_faults() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let link = Link::new(LinkConfig::ideal(), move |x: u32| {
            g.lock().unwrap().push(x);
        });
        for i in 0..500 {
            link.send(i);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.lock().unwrap().len() < 500 {
            assert!(
                Instant::now() < deadline,
                "only {} arrived",
                got.lock().unwrap().len()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut v = got.lock().unwrap().clone();
        v.sort_unstable();
        assert_eq!(v, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_can_reorder() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let cfg = LinkConfig {
            latency: Duration::from_micros(100),
            jitter: Duration::from_millis(5),
            seed: 42,
            ..LinkConfig::ideal()
        };
        let link = Link::new(cfg, move |x: u32| {
            g.lock().unwrap().push(x);
        });
        for i in 0..200 {
            link.send(i);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.lock().unwrap().len() < 200 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        let v = got.lock().unwrap().clone();
        assert_ne!(
            v,
            (0..200).collect::<Vec<_>>(),
            "jitter should reorder some pair"
        );
    }

    #[test]
    fn drops_lose_messages_and_dups_duplicate() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let cfg = LinkConfig {
            drop_prob: 0.5,
            seed: 7,
            ..LinkConfig::ideal()
        };
        let link = Link::new_cloneable(cfg, move |_x: u32| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        for i in 0..1000 {
            link.send(i);
        }
        std::thread::sleep(Duration::from_millis(300));
        let n = count.load(Ordering::Relaxed);
        assert!((300..700).contains(&n), "≈50% should survive, got {n}");

        let count2 = Arc::new(AtomicUsize::new(0));
        let c2 = count2.clone();
        let cfg = LinkConfig {
            dup_prob: 1.0,
            seed: 9,
            ..LinkConfig::ideal()
        };
        let link2 = Link::new_cloneable(cfg, move |_x: u32| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        for i in 0..100 {
            link2.send(i);
        }
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            count2.load(Ordering::Relaxed),
            200,
            "dup_prob=1 doubles every message"
        );
    }
}
