//! The cluster: nodes, replicated state, data plane, and the coordinator
//! hook.
//!
//! Wiring per the paper's Figure 3: every node runs a full
//! [`ActorSystem`]; all state-changing primitives are rerouted (via the
//! runtime's [`CoordinatorHook`]) onto the ordered coordinator bus and
//! applied at every node in the same global order; pattern resolution
//! happens against the local replica; and resolved messages to non-local
//! actors are forwarded point-to-point over reliable (but unordered) data
//! pipes.
//!
//! The window between submitting a visibility change and its application
//! is absorbed by the §5.6 suspension semantics: a send racing its own
//! `make_visible` simply suspends on the local replica and wakes when the
//! event applies there.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_atoms::Path;
use actorspace_capability::{Capability, Guard};
use actorspace_core::{
    ActorId, Disposition, ManagerPolicy, MemberId, Pattern, Result, SpaceId,
};
use actorspace_runtime::{
    ActorSystem, Behavior, BoxBehavior, Config, CoordinatorHook, Message, Transport, Value,
};

use crate::bus::{Applier, BusEvent, BusOp, OrderedBroadcast, SeqEvent};
use crate::directory::{id_base, node_of_actor, NodeId};
use crate::link::{Link, LinkConfig};
use crate::reliable::ReliablePipe;
use crate::sequencer::Sequencer;
use crate::tokenbus::TokenBus;

/// Which ordered-broadcast protocol runs the coordinator bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingProtocol {
    /// Centralized broadcaster/sequencer \[9].
    Sequencer,
    /// Rotating token, Amoeba style \[23].
    TokenBus,
}

/// Cluster construction parameters.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Fault/delay model for the data plane (actor messages).
    pub data_link: LinkConfig,
    /// Delay model for the coordinator bus (loss-free by assumption).
    pub bus_link: LinkConfig,
    /// Ordering protocol for the bus.
    pub protocol: OrderingProtocol,
    /// Token hop time (token-bus protocol only).
    pub token_hop: Duration,
    /// Registry policy template for every node.
    pub policy: ManagerPolicy,
    /// Data-plane retransmission period.
    pub retx_every: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            workers_per_node: 2,
            data_link: LinkConfig::ideal(),
            bus_link: LinkConfig::ideal(),
            protocol: OrderingProtocol::Sequencer,
            token_hop: Duration::from_micros(200),
            policy: ManagerPolicy::default(),
            retx_every: Duration::from_millis(20),
        }
    }
}

/// Per-node counters.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Bus events applied on this node.
    pub applied: u64,
    /// Bus events whose application failed (e.g. capability refused).
    pub apply_errors: u64,
    /// Data messages forwarded to other nodes.
    pub forwarded: u64,
    /// Inbound wire packets that failed to decode (always 0 between
    /// well-behaved nodes; counted defensively).
    pub decode_failures: u64,
    /// The node's runtime counters.
    pub system: actorspace_runtime::Stats,
}

struct NodeInner {
    id: NodeId,
    system: Arc<ActorSystem>,
    applier: Arc<Applier>,
    apply_errors: Arc<AtomicU64>,
    forwarded: Arc<AtomicU64>,
    decode_failures: Arc<AtomicU64>,
}

/// A handle to one cluster node. All ActorSpace primitives invoked through
/// it (or through behaviors running on it) are globally ordered via the
/// bus.
#[derive(Clone)]
pub struct NodeHandle {
    inner: Arc<NodeInner>,
}

impl NodeHandle {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// The underlying actor system (for `inbox`, `await_idle`, stats, …).
    pub fn system(&self) -> &ActorSystem {
        &self.inner.system
    }

    /// Spawns an actor on this node. The creation event is replicated; the
    /// actor starts once its creation is globally ordered.
    pub fn spawn(&self, behavior: impl Behavior) -> ActorId {
        self.inner
            .system
            .spawn(behavior)
            .leak() // cluster actors are kept alive until removed
    }

    /// Creates an actorSpace; the id is immediately usable (operations
    /// referencing it are ordered after its creation event).
    pub fn create_space(&self, cap: Option<&Capability>) -> SpaceId {
        self.inner.system.create_space(cap).expect("create_space is infallible")
    }

    /// `make_visible` via the bus.
    pub fn make_visible(
        &self,
        member: impl Into<MemberId>,
        attr: &Path,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.inner.system.make_visible(member, attr, space, cap)
    }

    /// `make_invisible` via the bus.
    pub fn make_invisible(
        &self,
        member: impl Into<MemberId>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.inner.system.make_invisible(member, space, cap)
    }

    /// `change_attributes` via the bus.
    pub fn change_attributes(
        &self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.inner.system.change_attributes(member, attrs, space, cap)
    }

    /// Pattern send resolved against this node's replica (§7.3: resolution
    /// is local; forwarding is automatic).
    pub fn send_pattern(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
    ) -> Result<Disposition> {
        self.inner.system.send_pattern(pattern, space, body, None)
    }

    /// Pattern broadcast resolved against this node's replica.
    pub fn broadcast(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
    ) -> Result<Disposition> {
        self.inner.system.broadcast(pattern, space, body, None)
    }

    /// Point-to-point send; forwards across the data plane when the target
    /// is remote.
    pub fn send_to(&self, to: ActorId, body: Value) -> bool {
        self.inner.system.send_to(to, body)
    }

    /// Counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            applied: self.inner.applier.applied(),
            apply_errors: self.inner.apply_errors.load(Ordering::Relaxed),
            forwarded: self.inner.forwarded.load(Ordering::Relaxed),
            decode_failures: self.inner.decode_failures.load(Ordering::Relaxed),
            system: self.inner.system.stats(),
        }
    }
}

/// What crosses a data link: the destination plus the *encoded* message —
/// §5's run-time-selected data representation. `Arc` keeps retransmission
/// clones cheap.
type WirePacket = (ActorId, Arc<Vec<u8>>);

/// A simulated multi-node ActorSpace deployment (Figure 3).
pub struct Cluster {
    nodes: Vec<NodeHandle>,
    bus: Arc<dyn OrderedBroadcast>,
    data_pipes: Vec<Vec<Option<Arc<ReliablePipe<WirePacket>>>>>,
}

impl Cluster {
    /// Boots `config.nodes` nodes and wires the bus and data plane.
    pub fn new(config: ClusterConfig) -> Cluster {
        let n = config.nodes.max(1);

        // 1. Node systems with disjoint id ranges.
        let systems: Vec<Arc<ActorSystem>> = (0..n)
            .map(|i| {
                Arc::new(ActorSystem::new(Config {
                    workers: config.workers_per_node,
                    policy: config.policy.clone(),
                    id_base: id_base(NodeId(i as u16)),
                    ..Config::default()
                }))
            })
            .collect();

        // 2. Data plane: reliable pipes for every ordered pair. Messages
        // cross the wire encoded (§5 data representation); decode failures
        // are impossible for packets our own nodes produced, but are
        // counted defensively as dead letters.
        let decode_failures: Vec<Arc<AtomicU64>> =
            (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut data_pipes: Vec<Vec<Option<Arc<ReliablePipe<WirePacket>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (src, row) in data_pipes.iter_mut().enumerate() {
            for (dst, slot) in row.iter_mut().enumerate() {
                if src == dst {
                    continue;
                }
                let target = systems[dst].clone();
                let fails = decode_failures[dst].clone();
                let cfg = LinkConfig {
                    seed: config
                        .data_link
                        .seed
                        .wrapping_add((src * n + dst) as u64 * 7919),
                    ..config.data_link.clone()
                };
                *slot = Some(Arc::new(ReliablePipe::new(
                    cfg,
                    config.retx_every,
                    move |(to, bytes): WirePacket| {
                        match actorspace_runtime::codec::decode_message(&bytes) {
                            Ok(msg) => {
                                target.deliver_remote(to, msg);
                            }
                            Err(_) => {
                                fails.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    },
                )));
            }
        }

        // 3. Per-node appliers + bus downlinks.
        let apply_errors: Vec<Arc<AtomicU64>> =
            (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let appliers: Vec<Arc<Applier>> = (0..n)
            .map(|i| {
                let system = systems[i].clone();
                let me = NodeId(i as u16);
                let errors = apply_errors[i].clone();
                Arc::new(Applier::new(move |e: BusEvent| {
                    apply_op(&system, me, e.op, &errors);
                }))
            })
            .collect();
        let downlinks: Vec<Arc<Link<SeqEvent>>> = appliers
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let a = a.clone();
                let cfg = LinkConfig {
                    seed: config.bus_link.seed.wrapping_add(i as u64 * 104729),
                    drop_prob: 0.0,
                    dup_prob: 0.0,
                    ..config.bus_link.clone()
                };
                Arc::new(Link::new(cfg, move |e| a.on_event(e)))
            })
            .collect();

        // 4. The ordering protocol.
        let bus: Arc<dyn OrderedBroadcast> = match config.protocol {
            OrderingProtocol::Sequencer => {
                Arc::new(Sequencer::new(config.bus_link.clone(), downlinks))
            }
            OrderingProtocol::TokenBus => {
                Arc::new(TokenBus::new(n, config.token_hop, downlinks))
            }
        };

        // 5. Hooks (bus rerouting) and uplinks (data forwarding).
        let forwarded: Vec<Arc<AtomicU64>> =
            (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let me = NodeId(i as u16);
            let hook = Arc::new(ClusterHook {
                node: me,
                system: systems[i].clone(),
                bus: bus.clone(),
            });
            systems[i].set_coordinator_hook(hook);

            let pipes_row: Vec<Option<Arc<ReliablePipe<WirePacket>>>> = data_pipes[i].clone();
            let fwd = forwarded[i].clone();
            systems[i].set_uplink(Arc::new(NodeUplink { me, pipes: pipes_row, forwarded: fwd }));

            nodes.push(NodeHandle {
                inner: Arc::new(NodeInner {
                    id: me,
                    system: systems[i].clone(),
                    applier: appliers[i].clone(),
                    apply_errors: apply_errors[i].clone(),
                    forwarded: forwarded[i].clone(),
                    decode_failures: decode_failures[i].clone(),
                }),
            });
        }

        Cluster { nodes, bus, data_pipes }
    }

    /// The node handles.
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, i: usize) -> &NodeHandle {
        &self.nodes[i]
    }

    /// The bus (for issued/submitted counters).
    pub fn bus(&self) -> &dyn OrderedBroadcast {
        &*self.bus
    }

    /// Waits until every submitted bus event has been applied on every
    /// node. Returns false on timeout.
    pub fn await_coherence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let submitted = self.bus.submitted();
            let coherent = self.bus.issued() == submitted
                && self.nodes.iter().all(|nh| nh.inner.applier.applied() == submitted);
            if coherent {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Waits for full quiescence: coherence, idle nodes, and an empty data
    /// plane — checked twice in a row to close in-flight windows.
    pub fn await_quiescence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        while stable < 2 {
            let quiet = self.await_coherence(Duration::from_millis(50))
                && self
                    .nodes
                    .iter()
                    .all(|nh| nh.inner.system.await_idle(Duration::from_millis(50)))
                && self
                    .data_pipes
                    .iter()
                    .flatten()
                    .flatten()
                    .all(|p| p.unacked() == 0);
            if quiet {
                stable += 1;
            } else {
                stable = 0;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops every node.
    pub fn shutdown(&self) {
        for nh in &self.nodes {
            nh.inner.system.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies one replicated operation to a node's local state.
fn apply_op(system: &ActorSystem, me: NodeId, op: BusOp, errors: &AtomicU64) {
    let result: Result<()> = match op {
        BusOp::CreateActor { id, host, guard } => {
            let inserted =
                system.with_registry(|reg, _| reg.insert_actor_record(id, host, guard));
            // Activation: the owning node starts the actor only once its
            // creation is globally ordered.
            if inserted && node_of_actor(id) == Some(me) {
                system.send_start(id);
            }
            Ok(())
        }
        BusOp::CreateSpace { id, guard } => {
            system.with_registry(|reg, _| reg.insert_space_record(id, guard));
            Ok(())
        }
        BusOp::MakeVisible { member, attrs, space, cap } => system
            .with_registry(|reg, sink| reg.make_visible(member, attrs, space, cap.as_ref(), sink)),
        BusOp::MakeInvisible { member, space, cap } => {
            system.with_registry(|reg, _| reg.make_invisible(member, space, cap.as_ref()))
        }
        BusOp::ChangeAttributes { member, attrs, space, cap } => system.with_registry(
            |reg, sink| reg.change_attributes(member, attrs, space, cap.as_ref(), sink),
        ),
        BusOp::DestroySpace { space, cap } => {
            system.with_registry(|reg, _| reg.destroy_space(space, cap.as_ref()))
        }
        BusOp::RemoveActor { id } => {
            system.with_registry(|reg, _| {
                reg.remove_actor(id);
                Ok(())
            })
        }
    };
    if result.is_err() {
        errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-node coordinator hook: allocate locally, replicate via the bus.
struct ClusterHook {
    node: NodeId,
    system: Arc<ActorSystem>,
    bus: Arc<dyn OrderedBroadcast>,
}

impl ClusterHook {
    fn submit(&self, op: BusOp) {
        self.bus.submit(BusEvent { origin: self.node, op });
    }
}

impl CoordinatorHook for ClusterHook {
    fn make_visible(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::MakeVisible { member, attrs, space, cap });
        Ok(())
    }

    fn make_invisible(
        &self,
        member: MemberId,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::MakeInvisible { member, space, cap });
        Ok(())
    }

    fn change_attributes(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::ChangeAttributes { member, attrs, space, cap });
        Ok(())
    }

    fn create_space(&self, cap: Option<Capability>) -> SpaceId {
        let id = self.system.with_registry(|reg, _| reg.allocate_space_id());
        self.submit(BusOp::CreateSpace { id, guard: Guard::from_creation(cap.as_ref()) });
        id
    }

    fn destroy_space(&self, space: SpaceId, cap: Option<Capability>) -> Result<()> {
        self.submit(BusOp::DestroySpace { space, cap });
        Ok(())
    }

    fn create_actor(
        &self,
        host: SpaceId,
        cap: Option<Capability>,
        behavior: BoxBehavior,
    ) -> Result<ActorId> {
        let id = self.system.with_registry(|reg, _| reg.allocate_actor_id());
        self.system.install_cell_boxed(id, behavior);
        self.submit(BusOp::CreateActor {
            id,
            host,
            guard: Guard::from_creation(cap.as_ref()),
        });
        Ok(id)
    }
}

/// The data-plane uplink: encodes and forwards messages for remote actors
/// over the reliable pipe to the owning node.
struct NodeUplink {
    me: NodeId,
    pipes: Vec<Option<Arc<ReliablePipe<WirePacket>>>>,
    forwarded: Arc<AtomicU64>,
}

impl Transport for NodeUplink {
    fn deliver(&self, to: ActorId, msg: Message) -> bool {
        let Some(target) = node_of_actor(to) else { return false };
        if target == self.me {
            return false; // local but no cell: dead actor
        }
        let Some(Some(pipe)) = self.pipes.get(target.0 as usize) else { return false };
        let bytes = actorspace_runtime::codec::message_to_bytes(&msg);
        pipe.send((to, Arc::new(bytes)));
        self.forwarded.fetch_add(1, Ordering::Relaxed);
        true
    }
}
