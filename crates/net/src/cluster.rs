//! The cluster: nodes, replicated state, data plane, failure handling, and
//! the coordinator hook.
//!
//! Wiring per the paper's Figure 3: every node runs a full
//! [`ActorSystem`]; all state-changing primitives are rerouted (via the
//! runtime's [`CoordinatorHook`]) onto the ordered coordinator bus and
//! applied at every node in the same global order; pattern resolution
//! happens against the local replica; and resolved messages to non-local
//! actors are forwarded point-to-point over reliable (but unordered) data
//! pipes.
//!
//! The window between submitting a visibility change and its application
//! is absorbed by the §5.6 suspension semantics: a send racing its own
//! `make_visible` simply suspends on the local replica and wakes when the
//! event applies there.
//!
//! # Node failures
//!
//! On top of the link faults masked by [`crate::reliable`], the cluster
//! injects *node* faults: [`Cluster::kill_node`] drops a node mid-flight
//! and [`Cluster::restart_node`] boots a fresh incarnation. A heartbeat
//! [`FailureDetector`] notices the silence; each observer submits a
//! `NodeDown` event so every replica purges the dead node's actors from
//! its visibility tables in the same global order. Messages that were
//! bound for the dead node — journalled in-flight packets as well as
//! messages its mailboxes had accepted but not yet processed — carry the
//! [`Route`] that resolved them, and are re-resolved against a surviving
//! replica: they re-match a surviving replica actor, or suspend (§5.6)
//! until one is made visible. A restarted node re-registers through the
//! directory (`NodeUp`), replays the retained bus history to reconverge
//! its replica, and serves traffic again.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use actorspace_atoms::Path;
use actorspace_capability::{Capability, Guard};
use actorspace_core::{
    ActorId, DeliveryKind, Disposition, ManagerPolicy, MemberId, Pattern, Result, Route, SpaceId,
};
use actorspace_lockcheck::{LockClass, Mutex, RwLock};
use actorspace_obs::{
    names, Counter, DeadLetter, DeadLetterReason, Histogram, Obs, ObsConfig, Stage, TraceId,
};
use actorspace_runtime::{
    ActorSystem, Behavior, BoxBehavior, Config, CoordinatorHook, Message, Transport, Value,
};

use crate::bus::{Applier, BusEvent, BusOp, EventLog, OrderedBroadcast, SeqEvent};
use crate::directory::{id_base, id_range, node_of_actor, node_of_raw, NodeId};
use crate::failure::{FailureConfig, FailureDetector};
use crate::link::{Link, LinkConfig};
use crate::obs_stream::ObsStream;
use crate::reliable::ReliablePipe;
use crate::sequencer::Sequencer;
use crate::tokenbus::TokenBus;

/// Which ordered-broadcast protocol runs the coordinator bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingProtocol {
    /// Centralized broadcaster/sequencer \[9].
    Sequencer,
    /// Rotating token, Amoeba style \[23].
    TokenBus,
}

/// Cluster construction parameters.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Fault/delay model for the data plane (actor messages).
    pub data_link: LinkConfig,
    /// Delay model for the coordinator bus (loss-free by assumption).
    pub bus_link: LinkConfig,
    /// Ordering protocol for the bus.
    pub protocol: OrderingProtocol,
    /// Token hop time (token-bus protocol only).
    pub token_hop: Duration,
    /// Registry policy template for every node.
    pub policy: ManagerPolicy,
    /// Data-plane retransmission period.
    pub retx_every: Duration,
    /// Failure-detector tuning (heartbeat period, timeout, miss budget).
    pub failure: FailureConfig,
    /// The observer every node reports into. `None` creates a default
    /// ([`ObsConfig::default`]) private to this cluster. One observer is
    /// always shared by all nodes (and all their incarnations), so
    /// counters are cumulative across restarts and trace timestamps share
    /// an epoch.
    pub obs: Option<Arc<Obs>>,
    /// When set, every node periodically publishes delta-encoded metric
    /// snapshots on a dedicated observability stream at this interval
    /// (see [`ObsStream`]); [`Cluster::observe`] then yields live
    /// aggregate views. `None` (the default) disables streaming.
    pub obs_publish: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            workers_per_node: 2,
            data_link: LinkConfig::ideal(),
            bus_link: LinkConfig::ideal(),
            protocol: OrderingProtocol::Sequencer,
            token_hop: Duration::from_micros(200),
            policy: ManagerPolicy::default(),
            retx_every: Duration::from_millis(20),
            failure: FailureConfig::default(),
            obs: None,
            obs_publish: None,
        }
    }
}

/// Per-node counters.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Bus events applied on this node (current incarnation).
    pub applied: u64,
    /// Bus events whose application failed (e.g. capability refused;
    /// current incarnation).
    pub apply_errors: u64,
    /// Data messages forwarded to other nodes (cumulative across
    /// incarnations).
    pub forwarded: u64,
    /// Inbound wire packets that failed to decode (always 0 between
    /// well-behaved nodes; counted defensively).
    pub decode_failures: u64,
    /// Messages dropped with no recipient on this node (cumulative across
    /// incarnations).
    pub dead_letters: u64,
    /// The most recent dead letters recorded against this node, oldest
    /// first (bounded by [`ObsConfig::dead_letter_capacity`]).
    pub recent_dead_letters: Vec<DeadLetter>,
    /// Whether the node is currently up.
    pub up: bool,
    /// The node's runtime counters (current incarnation).
    pub system: actorspace_runtime::Stats,
}

/// The mutable identity of one node: its current incarnation.
///
/// `kill_node` clears `up` and shuts the system down; `restart_node`
/// installs a fresh system/applier/error-counter triple. The applier and
/// error counter are per-incarnation on purpose: a fresh incarnation
/// replays the bus history from sequence 0, and its error count must match
/// the other replicas' (they all applied the same events).
struct NodeSlot {
    up: AtomicBool,
    system: RwLock<Arc<ActorSystem>>,
    applier: RwLock<Arc<Applier>>,
    apply_errors: RwLock<Arc<AtomicU64>>,
}

impl NodeSlot {
    fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    fn system(&self) -> Arc<ActorSystem> {
        self.system.read().clone()
    }
}

struct NodeInner {
    id: NodeId,
    slot: Arc<NodeSlot>,
    obs: Arc<Obs>,
    forwarded: Arc<Counter>,
    decode_failures: Arc<Counter>,
}

/// A handle to one cluster node. All ActorSpace primitives invoked through
/// it (or through behaviors running on it) are globally ordered via the
/// bus. After a restart the handle transparently addresses the new
/// incarnation.
#[derive(Clone)]
pub struct NodeHandle {
    inner: Arc<NodeInner>,
}

impl NodeHandle {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// Whether the node is currently up.
    pub fn is_up(&self) -> bool {
        self.inner.slot.is_up()
    }

    /// The underlying actor system (for `inbox`, `await_idle`, stats, …).
    pub fn system(&self) -> Arc<ActorSystem> {
        self.inner.slot.system()
    }

    /// Spawns an actor on this node. The creation event is replicated; the
    /// actor starts once its creation is globally ordered.
    pub fn spawn(&self, behavior: impl Behavior) -> ActorId {
        self.system().spawn(behavior).leak() // cluster actors are kept alive until removed
    }

    /// Creates an actorSpace; the id is immediately usable (operations
    /// referencing it are ordered after its creation event).
    pub fn create_space(&self, cap: Option<&Capability>) -> SpaceId {
        self.system()
            .create_space(cap)
            .expect("create_space is infallible")
    }

    /// `make_visible` via the bus.
    pub fn make_visible(
        &self,
        member: impl Into<MemberId>,
        attr: &Path,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.system().make_visible(member, attr, space, cap)
    }

    /// `make_invisible` via the bus.
    pub fn make_invisible(
        &self,
        member: impl Into<MemberId>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.system().make_invisible(member, space, cap)
    }

    /// `change_attributes` via the bus.
    pub fn change_attributes(
        &self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.system().change_attributes(member, attrs, space, cap)
    }

    /// Pattern send resolved against this node's replica (§7.3: resolution
    /// is local; forwarding is automatic).
    pub fn send_pattern(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
    ) -> Result<Disposition> {
        self.system().send_pattern(pattern, space, body, None)
    }

    /// Pattern broadcast resolved against this node's replica.
    pub fn broadcast(&self, pattern: &Pattern, space: SpaceId, body: Value) -> Result<Disposition> {
        self.system().broadcast(pattern, space, body, None)
    }

    /// Point-to-point send; forwards across the data plane when the target
    /// is remote.
    pub fn send_to(&self, to: ActorId, body: Value) -> bool {
        self.system().send_to(to, body)
    }

    /// Counters.
    pub fn stats(&self) -> NodeStats {
        let obs = &self.inner.obs;
        let node = self.inner.id.0;
        NodeStats {
            applied: self.inner.slot.applier.read().applied(),
            apply_errors: self.inner.slot.apply_errors.read().load(Ordering::Relaxed),
            forwarded: self.inner.forwarded.get(),
            decode_failures: self.inner.decode_failures.get(),
            dead_letters: obs.metrics.counter(names::RT_DEAD_LETTERS, node).get(),
            recent_dead_letters: obs.dead_letters.recent_for_node(node),
            up: self.inner.slot.is_up(),
            system: self.inner.slot.system().stats(),
        }
    }
}

/// What crosses a data link: the destination, the *encoded* message — §5's
/// run-time-selected data representation — and the pattern resolution that
/// chose the destination. The route rides beside the bytes so an
/// undelivered packet can be re-resolved against a surviving replica if
/// the destination node dies. `Arc` keeps retransmission clones cheap.
#[derive(Clone)]
struct WirePacket {
    to: ActorId,
    bytes: Arc<Vec<u8>>,
    route: Option<Route>,
}

type PipeGrid = Vec<Vec<Option<Arc<ReliablePipe<WirePacket>>>>>;

/// One message awaiting re-resolution after its destination node died:
/// the original pattern resolution, the node it was dislodged from, and
/// the instant it bounced — the latter two feed the `failed_over{from,to}`
/// trace stage and the `net.failover_reroute_ns` latency histogram.
struct Bounce {
    route: Route,
    msg: Message,
    from: NodeId,
    at_nanos: u64,
}

/// Messages awaiting re-resolution after their destination node died.
/// Drained asynchronously by the service thread — never synchronously at
/// the point of failure, which may sit inside a registry lock.
type BounceQueue = Arc<Mutex<VecDeque<Bounce>>>;

/// A simulated multi-node ActorSpace deployment (Figure 3) with node-crash
/// fault injection.
pub struct Cluster {
    config: ClusterConfig,
    obs: Arc<Obs>,
    nodes: Vec<NodeHandle>,
    slots: Vec<Arc<NodeSlot>>,
    bus: Arc<dyn OrderedBroadcast>,
    log: Arc<EventLog>,
    detector: Arc<FailureDetector>,
    data_pipes: Arc<PipeGrid>,
    requeue: BounceQueue,
    obs_stream: Option<Arc<ObsStream>>,
    service_stop: Arc<AtomicBool>,
    service: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Boots `config.nodes` nodes and wires the bus, data plane, and
    /// failure detector.
    pub fn new(config: ClusterConfig) -> Cluster {
        let n = config.nodes.max(1);
        let obs = config
            .obs
            .clone()
            .unwrap_or_else(|| Obs::shared(ObsConfig::default()));

        // 1. Node systems with disjoint id ranges, plus their appliers and
        // the slots that hold each node's current incarnation. Every node
        // reports into the one shared observer under its own label.
        let systems: Vec<Arc<ActorSystem>> = (0..n)
            .map(|i| {
                Arc::new(ActorSystem::new(Config {
                    workers: config.workers_per_node,
                    policy: config.policy.clone(),
                    id_base: id_base(NodeId(i as u16)),
                    obs: Some(obs.clone()),
                    node: i as u16,
                    ..Config::default()
                }))
            })
            .collect();
        let slots: Vec<Arc<NodeSlot>> = (0..n)
            .map(|i| {
                let errors = Arc::new(AtomicU64::new(0));
                let applier = make_applier(systems[i].clone(), NodeId(i as u16), errors.clone());
                Arc::new(NodeSlot {
                    up: AtomicBool::new(true),
                    system: RwLock::new(LockClass::Cluster, systems[i].clone()),
                    applier: RwLock::new(LockClass::Cluster, applier),
                    apply_errors: RwLock::new(LockClass::Cluster, errors),
                })
            })
            .collect();

        // 2. Data plane: reliable pipes for every ordered pair. Messages
        // cross the wire encoded (§5 data representation); decode failures
        // are impossible for packets our own nodes produced, but are
        // counted defensively as dead letters. A down destination rejects
        // packets, which therefore stay journalled on the sender for
        // failover draining. The acceptance check and the delivery share
        // the slot's system lock so `kill_node` (which drains mailboxes
        // under the write lock) cannot race a packet into a mailbox it has
        // already harvested.
        let decode_failures: Vec<Arc<Counter>> = (0..n)
            .map(|i| obs.metrics.counter(names::NET_DECODE_FAILURES, i as u16))
            .collect();
        let mut data_pipes: PipeGrid = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (src, row) in data_pipes.iter_mut().enumerate() {
            for (dst, pipe_slot) in row.iter_mut().enumerate() {
                if src == dst {
                    continue;
                }
                let slot = slots[dst].clone();
                let fails = decode_failures[dst].clone();
                let cfg = LinkConfig {
                    seed: config
                        .data_link
                        .seed
                        .wrapping_add((src * n + dst) as u64 * 7919),
                    ..config.data_link.clone()
                };
                *pipe_slot = Some(Arc::new(ReliablePipe::new(
                    cfg,
                    config.retx_every,
                    move |pkt: WirePacket| {
                        let system = slot.system.read();
                        if !slot.is_up() {
                            return false; // stays journalled for failover
                        }
                        match actorspace_runtime::codec::decode_message(&pkt.bytes) {
                            Ok(msg) => {
                                system.deliver_remote_routed(pkt.to, msg, pkt.route.clone());
                            }
                            Err(_) => {
                                fails.inc();
                            }
                        }
                        true // consumed either way; retransmitting garbage cannot help
                    },
                )));
            }
        }
        let data_pipes = Arc::new(data_pipes);

        // 3. Bus downlinks. Every downlink records into the shared event
        // log (idempotent per sequence number) — the log is the retained
        // history a restarted node replays to reconverge its replica.
        let log = Arc::new(EventLog::new());
        let downlinks: Vec<Arc<Link<SeqEvent>>> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let slot = slot.clone();
                let log = log.clone();
                let cfg = LinkConfig {
                    seed: config.bus_link.seed.wrapping_add(i as u64 * 104729),
                    drop_prob: 0.0,
                    dup_prob: 0.0,
                    ..config.bus_link.clone()
                };
                Arc::new(Link::new(cfg, move |e: SeqEvent| {
                    log.record(&e);
                    if slot.is_up() {
                        let applier = slot.applier.read().clone();
                        applier.on_event(e);
                    }
                }))
            })
            .collect();

        // 4. The ordering protocol.
        let bus: Arc<dyn OrderedBroadcast> = match config.protocol {
            OrderingProtocol::Sequencer => {
                Arc::new(Sequencer::new(config.bus_link.clone(), downlinks))
            }
            OrderingProtocol::TokenBus => Arc::new(TokenBus::new(n, config.token_hop, downlinks)),
        };

        // 5. Failure detector + heartbeat inboxes. Heartbeats ride
        // loss-free links like the bus; the miss budget absorbs jitter.
        let detector = Arc::new(FailureDetector::new(n, config.failure.clone()));
        let hb_links: Vec<Arc<Link<NodeId>>> = (0..n)
            .map(|i| {
                let det = detector.clone();
                let cfg = LinkConfig {
                    seed: config.bus_link.seed.wrapping_add(777 + i as u64 * 31337),
                    drop_prob: 0.0,
                    dup_prob: 0.0,
                    ..config.bus_link.clone()
                };
                Arc::new(Link::new(cfg, move |from: NodeId| {
                    det.beat(i, from.0 as usize);
                }))
            })
            .collect();

        // 6. Hooks (bus rerouting), uplinks (data forwarding + failover
        // bouncing), the observability stream, and node handles.
        let obs_stream: Option<Arc<ObsStream>> = config.obs_publish.map(|every| {
            let cfg = LinkConfig {
                seed: config.bus_link.seed.wrapping_add(424_243),
                ..config.bus_link.clone()
            };
            Arc::new(ObsStream::new(n, every, cfg))
        });
        let requeue: BounceQueue =
            Arc::new(Mutex::new(LockClass::Other("net.bounce"), VecDeque::new()));
        let forwarded: Vec<Arc<Counter>> = (0..n)
            .map(|i| obs.metrics.counter(names::NET_FORWARDED, i as u16))
            .collect();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let me = NodeId(i as u16);
            install_plumbing(
                &systems[i],
                me,
                &obs,
                &bus,
                &data_pipes[i],
                &forwarded[i],
                &detector,
                &requeue,
                obs_stream.as_ref(),
            );
            nodes.push(NodeHandle {
                inner: Arc::new(NodeInner {
                    id: me,
                    slot: slots[i].clone(),
                    obs: obs.clone(),
                    forwarded: forwarded[i].clone(),
                    decode_failures: decode_failures[i].clone(),
                }),
            });
        }

        // 7. The service thread: heartbeats, suspicion sweeps, journal
        // draining, and bounce-queue re-resolution.
        let service_stop = Arc::new(AtomicBool::new(false));
        let service = spawn_service(ServiceCtx {
            slots: slots.clone(),
            hb_links,
            detector: detector.clone(),
            bus: bus.clone(),
            pipes: data_pipes.clone(),
            requeue: requeue.clone(),
            obs: obs.clone(),
            heartbeats: (0..n)
                .map(|i| obs.metrics.counter(names::NET_HEARTBEATS, i as u16))
                .collect(),
            retransmits: (0..n)
                .map(|i| obs.metrics.counter(names::NET_RETRANSMITS, i as u16))
                .collect(),
            reroute_ns: (0..n)
                .map(|i| {
                    obs.metrics
                        .histogram(names::NET_FAILOVER_REROUTE_NS, i as u16)
                })
                .collect(),
            stream: obs_stream.clone(),
            stop: service_stop.clone(),
            tick: (config.failure.heartbeat_every / 2).max(Duration::from_millis(1)),
        });

        Cluster {
            config,
            obs,
            nodes,
            slots,
            bus,
            log,
            detector,
            data_pipes,
            requeue,
            obs_stream,
            service_stop,
            service: Mutex::new(LockClass::Other("net.service"), Some(service)),
        }
    }

    /// The node handles.
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, i: usize) -> &NodeHandle {
        &self.nodes[i]
    }

    /// The bus (for issued/submitted counters).
    pub fn bus(&self) -> &dyn OrderedBroadcast {
        &*self.bus
    }

    /// The failure detector (for tests and metrics).
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// The cluster-wide observer: one metrics registry, message tracer,
    /// and dead-letter ring shared by every node and every incarnation.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Subscribes to the observability stream and returns a live
    /// [`ClusterView`] that converges on every node's published metrics
    /// and tracks per-peer staleness through the failure detector.
    ///
    /// # Panics
    ///
    /// Panics unless [`ClusterConfig::obs_publish`] was set.
    pub fn observe(&self) -> Arc<actorspace_obs::ClusterView> {
        self.obs_stream
            .as_ref()
            .expect("ClusterConfig::obs_publish must be set to observe a cluster")
            .subscribe()
    }

    /// Crashes node `i` mid-flight: its workers stop, inbound packets are
    /// rejected (and stay journalled on their senders), and its heartbeats
    /// cease, so peers suspect it after the detector threshold and purge
    /// its actors everywhere. Messages its mailboxes had accepted but not
    /// yet processed are bounced for re-resolution — the simulation's
    /// stand-in for the message-logging recovery a real deployment would
    /// use. Returns false if the node was already down.
    pub fn kill_node(&self, i: usize) -> bool {
        let slot = &self.slots[i];
        let harvested = {
            let system = slot.system.write();
            if !slot.up.swap(false, Ordering::AcqRel) {
                return false;
            }
            system.shutdown();
            system.drain_unprocessed()
        };
        let at_nanos = self.obs.now_nanos();
        let from = NodeId(i as u16);
        let mut q = self.requeue.lock();
        for (route, msg) in harvested {
            match route {
                Some(route) if route.kind == DeliveryKind::Send => q.push_back(Bounce {
                    route,
                    msg,
                    from,
                    at_nanos,
                }),
                // Broadcast copies already reached the other recipients;
                // unrouted (point-to-point) messages die with the node.
                route => {
                    let trace = route.map(|r| r.trace).unwrap_or(TraceId::NONE);
                    self.slots[i].system().note_dead_letter_traced(
                        DeadLetterReason::NodeCrash,
                        None,
                        trace,
                    );
                }
            }
        }
        true
    }

    /// Boots a fresh incarnation of node `i`: a new system re-registers
    /// through the directory (`NodeUp`), replays the retained bus history
    /// to reconverge its replica, and serves traffic again. Its previous
    /// incarnation's actors stay dead (their purge is part of the replayed
    /// history); new actors spawned on the node become visible cluster-wide
    /// as usual. Returns false if the node is already up.
    pub fn restart_node(&self, i: usize) -> bool {
        let slot = &self.slots[i];
        if slot.is_up() {
            return false;
        }
        let me = NodeId(i as u16);
        let fresh = Arc::new(ActorSystem::new(Config {
            workers: self.config.workers_per_node,
            policy: self.config.policy.clone(),
            id_base: id_base(me),
            obs: Some(self.obs.clone()),
            node: me.0,
            ..Config::default()
        }));
        let errors = Arc::new(AtomicU64::new(0));
        let applier = make_applier(fresh.clone(), me, errors.clone());
        install_plumbing(
            &fresh,
            me,
            &self.obs,
            &self.bus,
            &self.data_pipes[i],
            &self.nodes[i].inner.forwarded,
            &self.detector,
            &self.requeue,
            self.obs_stream.as_ref(),
        );
        self.obs.metrics.counter(names::NET_RESTARTS, me.0).inc();
        {
            let mut system = slot.system.write();
            *system = fresh;
            *slot.apply_errors.write() = errors;
            *slot.applier.write() = applier.clone();
            self.detector.reset_observer(i);
            slot.up.store(true, Ordering::Release);
        }
        // Recovery: replay the retained history into the fresh replica.
        // Live events racing the replay are deduplicated by the applier's
        // sequence watermark.
        for e in self.log.snapshot() {
            applier.on_event(e);
        }
        self.bus.submit(BusEvent {
            origin: me,
            op: BusOp::NodeUp { node: me },
        });
        true
    }

    /// Waits until every submitted bus event has been applied on every
    /// *live* node. Returns false on timeout.
    pub fn await_coherence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let submitted = self.bus.submitted();
            let coherent = self.bus.issued() == submitted
                && self
                    .slots
                    .iter()
                    .filter(|s| s.is_up())
                    .all(|s| s.applier.read().applied() == submitted);
            if coherent {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Waits for full quiescence: coherence, idle live nodes, an empty
    /// data plane, and an empty bounce queue — checked twice in a row to
    /// close in-flight windows. (Journals to a crashed destination drain
    /// to zero once the detector fires.)
    pub fn await_quiescence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        while stable < 2 {
            let quiet = self.await_coherence(Duration::from_millis(50))
                && self
                    .slots
                    .iter()
                    .filter(|s| s.is_up())
                    .all(|s| s.system().await_idle(Duration::from_millis(50)))
                && self
                    .data_pipes
                    .iter()
                    .flatten()
                    .flatten()
                    .all(|p| p.unacked() == 0)
                && self.requeue.lock().is_empty();
            if quiet {
                stable += 1;
            } else {
                stable = 0;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops the service thread and every node.
    pub fn shutdown(&self) {
        self.service_stop.store(true, Ordering::Release);
        if let Some(h) = self.service.lock().take() {
            let _ = h.join();
        }
        for slot in &self.slots {
            slot.system().shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the per-incarnation applier for one node.
fn make_applier(system: Arc<ActorSystem>, me: NodeId, errors: Arc<AtomicU64>) -> Arc<Applier> {
    Arc::new(Applier::new(move |e: BusEvent| {
        apply_op(&system, me, e.op, &errors);
    }))
}

/// Wires one system (initial boot or restart) into the cluster: the
/// coordinator hook rerouting primitives onto the bus, and the uplink
/// forwarding resolved messages across the data plane.
#[allow(clippy::too_many_arguments)]
fn install_plumbing(
    system: &Arc<ActorSystem>,
    me: NodeId,
    obs: &Arc<Obs>,
    bus: &Arc<dyn OrderedBroadcast>,
    pipes: &[Option<Arc<ReliablePipe<WirePacket>>>],
    forwarded: &Arc<Counter>,
    detector: &Arc<FailureDetector>,
    requeue: &BounceQueue,
    stream: Option<&Arc<ObsStream>>,
) {
    system.set_coordinator_hook(Arc::new(ClusterHook {
        node: me,
        system: system.clone(),
        bus: bus.clone(),
    }));
    system.set_uplink(Arc::new(NodeUplink {
        me,
        obs: obs.clone(),
        pipes: pipes.to_vec(),
        forwarded: forwarded.clone(),
        detector: detector.clone(),
        requeue: requeue.clone(),
    }));
    // The publisher is per-incarnation (it dies with the system's worker
    // pool on kill_node and is respawned here on restart), but its delta
    // state lives in the stream, so the frame sequence stays continuous.
    if let Some(stream) = stream {
        let stream = stream.clone();
        let obs = obs.clone();
        system.spawn_periodic("obs-pub", stream.every(), move || {
            stream.publish(me.0, &obs);
        });
    }
}

/// Everything the service thread needs.
struct ServiceCtx {
    slots: Vec<Arc<NodeSlot>>,
    hb_links: Vec<Arc<Link<NodeId>>>,
    detector: Arc<FailureDetector>,
    bus: Arc<dyn OrderedBroadcast>,
    pipes: Arc<PipeGrid>,
    requeue: BounceQueue,
    obs: Arc<Obs>,
    /// `net.heartbeats` / `net.retransmits` handles, indexed by node.
    heartbeats: Vec<Arc<Counter>>,
    retransmits: Vec<Arc<Counter>>,
    /// Bounce-to-resend latency, recorded on the surviving node's label.
    reroute_ns: Vec<Arc<Histogram>>,
    stream: Option<Arc<ObsStream>>,
    stop: Arc<AtomicBool>,
    tick: Duration,
}

/// The cluster service thread. Each tick it (1) sends heartbeats on behalf
/// of every live node, (2) sweeps every live observer's detector —
/// submitting `NodeDown` for fresh suspicions — and drains the journals of
/// pipes toward suspected nodes into the bounce queue, and (3) re-resolves
/// bounced messages on a surviving replica. Draining repeats every tick
/// (not just at suspicion time) because a packet can slip into a journal
/// between a sweep and the uplink observing the suspicion.
fn spawn_service(ctx: ServiceCtx) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("actorspace-cluster-svc".into())
        .spawn(move || {
            let n = ctx.slots.len();
            let mut seen_retx = vec![vec![0u64; n]; n];
            while !ctx.stop.load(Ordering::Acquire) {
                // (1) Heartbeats: live nodes beat to every peer.
                for (i, slot) in ctx.slots.iter().enumerate() {
                    if !slot.is_up() {
                        continue;
                    }
                    for (j, hb) in ctx.hb_links.iter().enumerate() {
                        if i != j {
                            hb.send(NodeId(i as u16));
                            ctx.heartbeats[i].inc();
                        }
                    }
                }

                // Fold the pipes' monotone retransmission totals into the
                // sending node's `net.retransmits` counter.
                for (i, row) in ctx.pipes.iter().enumerate() {
                    for (j, pipe) in row.iter().enumerate() {
                        if let Some(pipe) = pipe {
                            let total = pipe.retransmits();
                            let seen = &mut seen_retx[i][j];
                            if total > *seen {
                                ctx.retransmits[i].add(total - *seen);
                                *seen = total;
                            }
                        }
                    }
                }

                // (2) Sweeps and journal drains.
                for (i, slot) in ctx.slots.iter().enumerate() {
                    if !slot.is_up() {
                        continue;
                    }
                    let system = slot.system();
                    for j in ctx.detector.sweep(i) {
                        system.note_suspicion();
                        ctx.bus.submit(BusEvent {
                            origin: NodeId(i as u16),
                            op: BusOp::NodeDown {
                                node: NodeId(j as u16),
                            },
                        });
                        if let Some(stream) = &ctx.stream {
                            stream.mark_down(j as u16);
                        }
                    }
                    for j in 0..n {
                        if j == i || !ctx.detector.is_suspected(i, j) {
                            continue;
                        }
                        let Some(Some(pipe)) = ctx.pipes[i].get(j) else {
                            continue;
                        };
                        for pkt in pipe.drain_undelivered() {
                            let decoded = actorspace_runtime::codec::decode_message(&pkt.bytes);
                            match (pkt.route, decoded) {
                                (Some(route), Ok(msg)) if route.kind == DeliveryKind::Send => {
                                    ctx.requeue.lock().push_back(Bounce {
                                        route,
                                        msg,
                                        from: NodeId(j as u16),
                                        at_nanos: ctx.obs.now_nanos(),
                                    });
                                }
                                // Broadcast copies already fanned out to the
                                // survivors; unrouted messages have no
                                // pattern to re-resolve.
                                (route, _) => {
                                    let trace = route.map(|r| r.trace).unwrap_or(TraceId::NONE);
                                    system.note_dead_letter_traced(
                                        DeadLetterReason::NodeCrash,
                                        Some(pkt.to),
                                        trace,
                                    );
                                }
                            }
                        }
                    }
                }

                // (3) Re-resolve bounced messages on a surviving replica.
                // The queue lock is released before re-resolution: resends
                // take the registry lock and may bounce again (e.g. while a
                // stale visibility entry is still being purged), which
                // pushes back onto this queue.
                let batch: Vec<Bounce> = ctx.requeue.lock().drain(..).collect();
                if !batch.is_empty() {
                    match ctx.slots.iter().position(|s| s.is_up()) {
                        Some(si) => {
                            let system = ctx.slots[si].system();
                            let to = si as u16;
                            for b in batch {
                                system.note_failover();
                                ctx.obs.tracer.record(
                                    b.route.trace,
                                    to,
                                    Stage::FailedOver { from: b.from.0, to },
                                );
                                ctx.reroute_ns[si]
                                    .record(ctx.obs.now_nanos().saturating_sub(b.at_nanos));
                                let _ = system.resend_routed(&b.route, b.msg);
                            }
                        }
                        None => ctx.requeue.lock().extend(batch),
                    }
                }

                std::thread::sleep(ctx.tick);
            }
        })
        .expect("spawn cluster service thread")
}

/// Applies one replicated operation to a node's local state.
fn apply_op(system: &ActorSystem, me: NodeId, op: BusOp, errors: &AtomicU64) {
    let result: Result<()> = match op {
        BusOp::CreateActor { id, host, guard } => {
            let inserted = system.with_registry(|reg, _| {
                // A restarted node replays its previous incarnation's
                // creations; the floor keeps fresh allocations from reusing
                // those addresses.
                if node_of_actor(id) == Some(me) {
                    reg.ensure_id_floor(id.0);
                }
                reg.insert_actor_record(id, host, guard)
            });
            // Activation: the owning node starts the actor only once its
            // creation is globally ordered — and only if it still hosts the
            // behavior cell (a replayed creation has no cell; the actor
            // died with the previous incarnation).
            if inserted && node_of_actor(id) == Some(me) && system.has_actor(id) {
                system.send_start(id);
            }
            Ok(())
        }
        BusOp::CreateSpace { id, guard } => {
            system.with_registry(|reg, _| {
                if node_of_raw(id.0) == Some(me) {
                    reg.ensure_id_floor(id.0);
                }
                reg.insert_space_record(id, guard)
            });
            Ok(())
        }
        BusOp::MakeVisible {
            member,
            attrs,
            space,
            cap,
        } => system
            .with_registry(|reg, sink| reg.make_visible(member, attrs, space, cap.as_ref(), sink)),
        BusOp::MakeInvisible { member, space, cap } => {
            system.with_registry(|reg, _| reg.make_invisible(member, space, cap.as_ref()))
        }
        BusOp::ChangeAttributes {
            member,
            attrs,
            space,
            cap,
        } => system.with_registry(|reg, sink| {
            reg.change_attributes(member, attrs, space, cap.as_ref(), sink)
        }),
        BusOp::DestroySpace { space, cap } => {
            system.with_registry(|reg, _| reg.destroy_space(space, cap.as_ref()))
        }
        BusOp::RemoveActor { id } => system.with_registry(|reg, _| {
            reg.remove_actor(id);
            Ok(())
        }),
        BusOp::NodeDown { node } => {
            // Purge the dead node's actors from every visibility table so
            // pattern resolution falls back to surviving matches. Applied
            // on every replica — including, during replay, the restarted
            // node purging its own previous incarnation. Idempotent, so
            // concurrent suspicions by several observers are harmless.
            let range = id_range(node);
            system.with_registry(|reg, _| {
                reg.purge_actor_range(range.start, range.end);
            });
            Ok(())
        }
        BusOp::NodeUp { node } => {
            // The recovery announcement doubles as the obituary for the
            // node's previous incarnation: if the node died and returned
            // faster than any detector threshold, no NodeDown was ever
            // submitted, yet its old actors are just as dead. Everything
            // the *new* incarnation creates is ordered after this event,
            // so the purge only ever removes pre-crash records.
            let range = id_range(node);
            system.with_registry(|reg, _| {
                reg.purge_actor_range(range.start, range.end);
            });
            system.note_reregistration();
            Ok(())
        }
    };
    if result.is_err() {
        errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-node coordinator hook: allocate locally, replicate via the bus.
struct ClusterHook {
    node: NodeId,
    system: Arc<ActorSystem>,
    bus: Arc<dyn OrderedBroadcast>,
}

impl ClusterHook {
    fn submit(&self, op: BusOp) {
        self.bus.submit(BusEvent {
            origin: self.node,
            op,
        });
    }
}

impl CoordinatorHook for ClusterHook {
    fn make_visible(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::MakeVisible {
            member,
            attrs,
            space,
            cap,
        });
        Ok(())
    }

    fn make_invisible(
        &self,
        member: MemberId,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::MakeInvisible { member, space, cap });
        Ok(())
    }

    fn change_attributes(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()> {
        self.submit(BusOp::ChangeAttributes {
            member,
            attrs,
            space,
            cap,
        });
        Ok(())
    }

    fn create_space(&self, cap: Option<Capability>) -> SpaceId {
        let id = self.system.with_registry(|reg, _| reg.allocate_space_id());
        self.submit(BusOp::CreateSpace {
            id,
            guard: Guard::from_creation(cap.as_ref()),
        });
        id
    }

    fn destroy_space(&self, space: SpaceId, cap: Option<Capability>) -> Result<()> {
        self.submit(BusOp::DestroySpace { space, cap });
        Ok(())
    }

    fn create_actor(
        &self,
        host: SpaceId,
        cap: Option<Capability>,
        behavior: BoxBehavior,
    ) -> Result<ActorId> {
        let id = self.system.with_registry(|reg, _| reg.allocate_actor_id());
        self.system.install_cell_boxed(id, behavior);
        self.submit(BusOp::CreateActor {
            id,
            host,
            guard: Guard::from_creation(cap.as_ref()),
        });
        Ok(id)
    }
}

/// The data-plane uplink: encodes and forwards messages for remote actors
/// over the reliable pipe to the owning node. Messages bound for a
/// suspected node — or for a local actor whose cell is gone (purged with a
/// dead incarnation) — are *bounced* to the cluster's re-resolution queue
/// instead, when their route permits it. Bouncing is asynchronous by
/// design: this method runs inside registry resolution, so re-resolving
/// here would deadlock.
struct NodeUplink {
    me: NodeId,
    obs: Arc<Obs>,
    pipes: Vec<Option<Arc<ReliablePipe<WirePacket>>>>,
    forwarded: Arc<Counter>,
    detector: Arc<FailureDetector>,
    requeue: BounceQueue,
}

impl NodeUplink {
    fn bounce(&self, from: NodeId, route: Option<&Route>, msg: Message) -> bool {
        match route {
            Some(r) if r.kind == DeliveryKind::Send => {
                self.requeue.lock().push_back(Bounce {
                    route: r.clone(),
                    msg,
                    from,
                    at_nanos: self.obs.now_nanos(),
                });
                true
            }
            // Broadcast copies already reached the surviving recipients;
            // unrouted messages have no pattern to re-resolve: dead letter.
            _ => false,
        }
    }
}

impl Transport for NodeUplink {
    fn deliver(&self, to: ActorId, msg: Message) -> bool {
        self.deliver_routed(to, msg, None)
    }

    fn deliver_routed(&self, to: ActorId, msg: Message, route: Option<&Route>) -> bool {
        let Some(target) = node_of_actor(to) else {
            return false;
        };
        if target == self.me {
            // Local address but no local cell: the actor is dead — possibly
            // purged with a failed incarnation while still visible in a
            // not-yet-purged table entry.
            return self.bounce(target, route, msg);
        }
        if self
            .detector
            .is_suspected(self.me.0 as usize, target.0 as usize)
        {
            return self.bounce(target, route, msg);
        }
        let Some(Some(pipe)) = self.pipes.get(target.0 as usize) else {
            return false;
        };
        if let Some(r) = route {
            self.obs
                .tracer
                .record(r.trace, self.me.0, Stage::Routed { node: target.0 });
        }
        let bytes = actorspace_runtime::codec::message_to_bytes(&msg);
        pipe.send(WirePacket {
            to,
            bytes: Arc::new(bytes),
            route: route.cloned(),
        });
        self.forwarded.inc();
        true
    }
}
