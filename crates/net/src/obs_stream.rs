//! Cluster-wide observability streaming.
//!
//! Each node periodically publishes a delta-encoded view of its own
//! slice of the metrics registry ([`Snapshot::filter_node`] keeps the
//! series labeled with that node, plus the process-global `lock.*`
//! tables on node 0). Frames ride dedicated [`Link`]s — deliberately
//! *not* the coordinator bus, whose global ordering and `submitted()`
//! accounting must stay reserved for protocol events — and any node can
//! [`ObsStream::subscribe`] to fold the frames into a [`ClusterView`].
//! Late subscribers are seeded with each publisher's cumulative state
//! (see [`ClusterView::seed`]), so joining mid-stream converges instead
//! of parking forever on frames published before the subscription.
//!
//! Delta state lives in the stream, not the node: a node incarnation
//! that dies and restarts keeps appending to the same cumulative
//! [`Obs`], so the per-node `PubState` survives the churn and the
//! sequence of deltas stays continuous across restarts. The failure
//! detector marks publishers down in every subscriber's view; the next
//! frame from a restarted node flips the peer back to live and bumps
//! its rejoin counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_lockcheck::{LockClass, Mutex, RwLock};
use actorspace_obs::{ClusterView, Obs, Snapshot, SnapshotDelta};

use crate::link::{Link, LinkConfig};

/// One delta frame on the observability stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsFrame {
    /// Publishing node.
    pub node: u16,
    /// Per-node frame sequence number, continuous across restarts.
    pub seq: u64,
    /// Changes since the previous frame from this node.
    pub delta: SnapshotDelta,
}

/// Per-node publisher state: the last snapshot shipped and the next
/// sequence number. Owned by the stream so it outlives node restarts.
struct PubState {
    last: Snapshot,
    seq: u64,
}

struct Subscriber {
    link: Arc<Link<ObsFrame>>,
    view: Arc<ClusterView>,
}

/// Fan-out hub for delta-encoded snapshot frames.
pub struct ObsStream {
    every: Duration,
    link_cfg: LinkConfig,
    states: Vec<Mutex<PubState>>,
    subs: RwLock<Vec<Subscriber>>,
    next_sub: AtomicU64,
}

impl ObsStream {
    /// A stream for `nodes` publishers, each expected to publish every
    /// `every`. Subscriber links inherit latency/jitter from `link_cfg`
    /// but are loss-free: the delta codec assumes in-stream frames are
    /// eventually delivered (reordering and duplication are fine).
    pub fn new(nodes: usize, every: Duration, link_cfg: LinkConfig) -> ObsStream {
        ObsStream {
            every,
            link_cfg: LinkConfig {
                drop_prob: 0.0,
                dup_prob: 0.0,
                ..link_cfg
            },
            states: (0..nodes)
                .map(|_| {
                    Mutex::new(
                        LockClass::Other("net.obs_pub"),
                        PubState {
                            last: Snapshot::default(),
                            seq: 0,
                        },
                    )
                })
                .collect(),
            subs: RwLock::new(LockClass::Other("net.obs_subs"), Vec::new()),
            next_sub: AtomicU64::new(0),
        }
    }

    /// Publish interval the cluster was configured with.
    pub fn every(&self) -> Duration {
        self.every
    }

    /// Takes a snapshot of `node`'s slice of `obs`, diffs it against
    /// the last published frame, and fans the delta out to every
    /// subscriber. Empty deltas are still sent: they double as
    /// liveness keepalives for staleness tracking.
    pub fn publish(&self, node: u16, obs: &Obs) {
        // Snapshot before taking the publisher lock: `Obs::snapshot`
        // locks the metrics registry, and nesting it under our state
        // mutex would serialize publishers behind each other's
        // registry walks.
        let snap = obs.snapshot().filter_node(node);
        let frame = {
            let mut st = self.states[node as usize].lock();
            let delta = snap.delta_since(&st.last);
            let seq = st.seq;
            st.seq += 1;
            st.last = snap;
            ObsFrame { node, seq, delta }
        };
        for sub in self.subs.read().iter() {
            sub.link.send(frame.clone());
        }
    }

    /// Marks `node` down in every subscriber's view (driven by the
    /// failure detector's NodeDown verdicts).
    pub fn mark_down(&self, node: u16) {
        for sub in self.subs.read().iter() {
            sub.view.mark_down(node);
        }
    }

    /// Registers a new observer and returns its live aggregate view.
    /// Frames published from now on are folded into the view after the
    /// stream's simulated link delay.
    ///
    /// A subscriber that joins after frames have already been published
    /// is *seeded*: for every node, the cumulative snapshot behind that
    /// node's next frame is installed directly in the view at the
    /// publisher's current sequence watermark, so the view converges
    /// without the frames it never received. Registration happens before
    /// seeding, and the seed is read under the publisher lock, so every
    /// frame falls on one side of the seed: frames diffed before the
    /// seed was read are covered by it (and dropped as stale if they
    /// straggle in later), frames diffed after it apply on top.
    pub fn subscribe(&self) -> Arc<ClusterView> {
        let view = Arc::new(ClusterView::new());
        let sink = view.clone();
        let idx = self.next_sub.fetch_add(1, Ordering::Relaxed);
        let cfg = LinkConfig {
            seed: self.link_cfg.seed.wrapping_add(idx.wrapping_mul(0x9e37)),
            ..self.link_cfg
        };
        let link = Arc::new(Link::new(cfg, move |f: ObsFrame| {
            sink.apply_frame(f.node, f.seq, f.delta);
        }));
        self.subs.write().push(Subscriber {
            link,
            view: view.clone(),
        });
        for (node, state) in self.states.iter().enumerate() {
            let st = state.lock();
            view.seed(node as u16, st.seq, st.last.clone());
        }
        view
    }
}
