//! Actor location: "the coordinators automatically determine the location
//! of an actor given its name" (§7.3).
//!
//! Location is encoded in the address itself: node `n` allocates ids from
//! the range `[(n+1) << 48, (n+2) << 48)`, so the owning node is a shift
//! and subtract — no directory lookups, no coordination, and the Actor
//! model's global address uniqueness (§3) holds by construction. (The `+1`
//! keeps the root space id, 0, out of every node range.)

use actorspace_core::ActorId;

/// A node's index within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// The first raw id node `n` allocates.
pub fn id_base(node: NodeId) -> u64 {
    (u64::from(node.0) + 1) << 48
}

/// The raw-id range node `n` allocates from (actors and spaces share one
/// allocator). Used to purge a crashed node's actors from every replica.
pub fn id_range(node: NodeId) -> std::ops::Range<u64> {
    let base = id_base(node);
    base..base + (1 << 48)
}

/// The node owning an actor address, or `None` for addresses outside any
/// node range (standalone-system ids).
pub fn node_of_actor(a: ActorId) -> Option<NodeId> {
    node_of_raw(a.0)
}

/// The node owning any raw id, or `None` for ids outside node ranges.
pub fn node_of_raw(raw: u64) -> Option<NodeId> {
    let hi = raw >> 48;
    if hi == 0 {
        return None;
    }
    u16::try_from(hi - 1).ok().map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_disjoint_and_ordered() {
        let b0 = id_base(NodeId(0));
        let b1 = id_base(NodeId(1));
        assert!(b0 < b1);
        assert_eq!(b1 - b0, 1 << 48);
        assert!(b0 > 0, "node 0's range must not contain the root space id");
    }

    #[test]
    fn round_trip_id_to_node() {
        for n in [0u16, 1, 2, 7, 255] {
            let node = NodeId(n);
            let id = ActorId(id_base(node) + 12345);
            assert_eq!(node_of_actor(id), Some(node));
        }
    }

    #[test]
    fn standalone_ids_have_no_node() {
        assert_eq!(node_of_actor(ActorId(1)), None);
        assert_eq!(node_of_actor(ActorId(999_999)), None);
    }

    #[test]
    fn boundary_ids() {
        let node = NodeId(3);
        assert_eq!(node_of_actor(ActorId(id_base(node))), Some(node));
        assert_eq!(node_of_actor(ActorId(id_base(node) - 1)), Some(NodeId(2)));
    }

    #[test]
    fn id_range_covers_exactly_the_owned_ids() {
        let node = NodeId(2);
        let r = id_range(node);
        assert_eq!(r.start, id_base(node));
        assert_eq!(r.end, id_base(NodeId(3)));
        assert!(r.contains(&id_base(node)));
        assert!(!r.contains(&(r.end)));
        for raw in [r.start, r.start + 7, r.end - 1] {
            assert_eq!(node_of_raw(raw), Some(node));
        }
    }
}
