//! Heartbeat-based failure detection for the simulated cluster.
//!
//! The paper assumes "actors are not dropped" inside the system (§5.3);
//! real deployments lose nodes, so the distribution layer needs to *detect*
//! the loss and route around it. This module is the detection half: every
//! node periodically beats to every peer, every node tracks the last beat
//! it heard from each peer, and silence past a threshold declares the peer
//! failed. The reaction half lives in [`crate::cluster`]: a suspicion is
//! submitted to the coordinator bus as `NodeDown`, which purges the dead
//! node's actors from every replica's visibility tables so pattern
//! resolution (§5.3) falls back to surviving matches.
//!
//! The detector is deliberately simple — a miss-count/timeout scheme rather
//! than a full phi-accrual estimator — but the knobs are the same shape: a
//! heartbeat period, a base timeout, and a miss multiplier whose product
//! acts as the accrual threshold. Suspicion is *revocable*: a beat from a
//! suspected peer (a restarted node) clears the suspicion.

use std::time::{Duration, Instant};

use actorspace_lockcheck::{LockClass, Mutex};

/// Failure-detector tuning.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// How often each node beats to each peer.
    pub heartbeat_every: Duration,
    /// Minimum silence before a peer may be suspected.
    pub timeout: Duration,
    /// Consecutive missed beats before suspicion; the effective threshold
    /// is `max(timeout, heartbeat_every * misses)`.
    pub misses: u32,
}

impl Default for FailureConfig {
    fn default() -> Self {
        // Generous defaults: a false suspicion purges a live node's actors,
        // so the threshold leaves ample room for scheduling stalls on
        // loaded test machines. Tests that need fast detection override.
        FailureConfig {
            heartbeat_every: Duration::from_millis(50),
            timeout: Duration::from_millis(500),
            misses: 6,
        }
    }
}

impl FailureConfig {
    /// A fast configuration for failure-injection tests and benchmarks.
    pub fn fast() -> FailureConfig {
        FailureConfig {
            heartbeat_every: Duration::from_millis(5),
            timeout: Duration::from_millis(40),
            misses: 4,
        }
    }

    /// The silence threshold that triggers suspicion.
    pub fn threshold(&self) -> Duration {
        self.timeout.max(self.heartbeat_every * self.misses.max(1))
    }
}

/// One observer's view of one peer.
struct PeerState {
    last_beat: Instant,
    suspected: bool,
}

/// The cluster-wide detector state: `n` observers × `n` peers.
///
/// Logically each node runs its own detector; co-locating the state lets
/// the simulation drive all of them from one service thread while keeping
/// per-observer verdicts independent (node `i` suspecting node `j` says
/// nothing about node `k`'s view).
pub struct FailureDetector {
    cfg: FailureConfig,
    /// `peers[observer][peer]`; the diagonal is unused.
    peers: Vec<Vec<Mutex<PeerState>>>,
}

impl FailureDetector {
    /// A detector for `n` nodes with every observation clock starting now.
    pub fn new(n: usize, cfg: FailureConfig) -> FailureDetector {
        let now = Instant::now();
        let peers = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        Mutex::new(
                            LockClass::Failure,
                            PeerState {
                                last_beat: now,
                                suspected: false,
                            },
                        )
                    })
                    .collect()
            })
            .collect();
        FailureDetector { cfg, peers }
    }

    /// The configured tuning.
    pub fn config(&self) -> &FailureConfig {
        &self.cfg
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.peers.len()
    }

    /// Records a heartbeat from `peer` observed by `observer`. Returns
    /// `true` when this beat *revokes* an existing suspicion (the peer is
    /// back — a restarted node).
    pub fn beat(&self, observer: usize, peer: usize) -> bool {
        let mut st = self.peers[observer][peer].lock();
        st.last_beat = Instant::now();
        std::mem::replace(&mut st.suspected, false)
    }

    /// Whether `observer` currently suspects `peer`.
    pub fn is_suspected(&self, observer: usize, peer: usize) -> bool {
        observer != peer && self.peers[observer][peer].lock().suspected
    }

    /// Sweeps `observer`'s peers, newly suspecting any that have been
    /// silent past the threshold. Returns the newly suspected peers only —
    /// an already-suspected peer is not reported again, so each suspicion
    /// edge fires exactly once until revoked by a beat.
    pub fn sweep(&self, observer: usize) -> Vec<usize> {
        let threshold = self.cfg.threshold();
        let now = Instant::now();
        let mut newly = Vec::new();
        for (peer, slot) in self.peers[observer].iter().enumerate() {
            if peer == observer {
                continue;
            }
            let mut st = slot.lock();
            if !st.suspected && now.duration_since(st.last_beat) >= threshold {
                st.suspected = true;
                newly.push(peer);
            }
        }
        newly
    }

    /// Grants `observer` a fresh observation window on every peer and
    /// clears its suspicions — used when `observer` itself restarts, so it
    /// does not instantly re-suspect peers it has not heard from while
    /// dead.
    pub fn reset_observer(&self, observer: usize) {
        let now = Instant::now();
        for slot in &self.peers[observer] {
            let mut st = slot.lock();
            st.last_beat = now;
            st.suspected = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> FailureConfig {
        FailureConfig {
            heartbeat_every: Duration::from_millis(2),
            timeout: Duration::from_millis(20),
            misses: 2,
        }
    }

    #[test]
    fn threshold_is_max_of_timeout_and_miss_budget() {
        let c = FailureConfig {
            heartbeat_every: Duration::from_millis(10),
            timeout: Duration::from_millis(15),
            misses: 4,
        };
        assert_eq!(c.threshold(), Duration::from_millis(40));
        let c = FailureConfig { misses: 1, ..c };
        assert_eq!(c.threshold(), Duration::from_millis(15));
    }

    #[test]
    fn silent_peer_is_suspected_exactly_once() {
        let d = FailureDetector::new(2, fast());
        assert!(d.sweep(0).is_empty(), "no suspicion inside the threshold");
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        assert_eq!(d.sweep(0), vec![1]);
        assert!(d.is_suspected(0, 1));
        assert!(
            d.sweep(0).is_empty(),
            "an existing suspicion must not re-fire"
        );
    }

    #[test]
    fn beat_keeps_peer_alive_and_revokes_suspicion() {
        let d = FailureDetector::new(2, fast());
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        d.beat(0, 1);
        assert!(
            d.sweep(0).is_empty(),
            "a recent beat must prevent suspicion"
        );
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        assert_eq!(d.sweep(0), vec![1]);
        assert!(d.beat(0, 1), "beat must report the revocation");
        assert!(!d.is_suspected(0, 1));
        // And the peer can be suspected again after going silent again.
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        assert_eq!(d.sweep(0), vec![1]);
    }

    #[test]
    fn verdicts_are_per_observer() {
        let d = FailureDetector::new(3, fast());
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        d.beat(1, 2); // observer 1 heard from 2; observer 0 did not
        assert_eq!(d.sweep(0), vec![1, 2]);
        assert_eq!(d.sweep(1), vec![0]);
        assert!(d.is_suspected(0, 2));
        assert!(!d.is_suspected(1, 2));
    }

    #[test]
    fn reset_observer_grants_a_fresh_window() {
        let d = FailureDetector::new(2, fast());
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        assert_eq!(d.sweep(0), vec![1]);
        d.reset_observer(0);
        assert!(!d.is_suspected(0, 1));
        assert!(
            d.sweep(0).is_empty(),
            "reset must restart the silence clock"
        );
    }

    #[test]
    fn a_node_never_suspects_itself() {
        let d = FailureDetector::new(1, fast());
        std::thread::sleep(d.config().threshold() + Duration::from_millis(5));
        assert!(d.sweep(0).is_empty());
        assert!(!d.is_suspected(0, 0));
    }
}
