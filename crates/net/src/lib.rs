//! The inter-node design (§7.3): a simulated cluster of ActorSpace nodes
//! connected by a coordinator bus.
//!
//! "The local coordinator connects to coordinators on other nodes using a
//! (virtual) coordinator bus. … A coordinator process uses the network
//! connection to broadcast information to other coordinators in order to
//! maintain coherence of the state of ActorSpace. This state includes
//! 'live' actors and actorSpaces as well as visibility of actors. The
//! coordinators automatically determine the location of an actor given its
//! name and forward any outgoing messages to the appropriate node. …
//! the current design needs a global ordering on individual broadcasts
//! between coordinators to order visibility changes globally, so that all
//! nodes have the same view of visibility in ActorSpace (although not
//! necessarily the same order on broadcasts to actors)."
//!
//! What the paper's testbed provided in hardware is simulated here
//! (substitution documented in DESIGN.md):
//!
//! * **Nodes** are full [`ActorSystem`](actorspace_runtime::ActorSystem)s
//!   with disjoint address ranges ([`directory`]).
//! * **Links** ([`link`]) are in-memory channels with configurable latency,
//!   jitter, drop, and duplication; [`reliable`] adds seq/ack/retransmit so
//!   data delivery stays "only finitely delayed" (§5.6) under faults.
//! * **The coordinator bus** carries state-change events ([`bus`]) under a
//!   global total order, via either of the two protocols the paper cites:
//!   a centralized [`sequencer`] (Chang–Maxemchuk style \[9]) or a rotating
//!   [`tokenbus`] (Amoeba style \[23]).
//! * **State coherence**: every node holds a full replica of the
//!   ActorSpace state and applies bus events in sequence order; pattern
//!   resolution is purely local, and resolved recipients are forwarded
//!   point-to-point ([`cluster`]).
//!
//! Data messages between actors take the direct links and are *not*
//! ordered — matching the paper's explicit non-guarantee for broadcasts.

#![deny(unsafe_code)]

pub mod bus;
pub mod cluster;
pub mod directory;
pub mod failure;
pub mod link;
pub mod obs_stream;
pub mod reliable;
pub mod sequencer;
pub mod tokenbus;

pub use bus::{BusEvent, BusOp, EventLog, OrderedBroadcast, SeqEvent};
pub use cluster::{Cluster, ClusterConfig, NodeHandle, NodeStats, OrderingProtocol};
pub use directory::{id_base, id_range, node_of_actor, NodeId};
pub use failure::{FailureConfig, FailureDetector};
pub use link::{Link, LinkConfig};
pub use obs_stream::{ObsFrame, ObsStream};
