//! Interpreted actors running on the real runtime: become, create,
//! self-visibility, pattern communication, and a miniature of the paper's
//! §6 process pool written entirely in the behavior language.

use std::sync::Arc;
use std::time::Duration;

use actorspace_interp::{BehaviorLib, InterpBehavior};
use actorspace_pattern::pattern;
use actorspace_runtime::{ActorSystem, Config, Value};

const TIMEOUT: Duration = Duration::from_secs(10);

fn sys() -> ActorSystem {
    ActorSystem::new(Config {
        workers: 3,
        ..Config::default()
    })
}

#[test]
fn counter_with_set_state() {
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior counter (n out)
              (on m
                (if (= m 'get)
                    (send-addr out n)
                    (set! n (+ n 1)))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    let c = s.spawn(
        InterpBehavior::new(lib, "counter", vec![Value::int(0), Value::Addr(inbox)]).unwrap(),
    );
    for _ in 0..7 {
        c.send(Value::atom("inc"));
    }
    c.send(Value::atom("get"));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(7));
    s.shutdown();
}

#[test]
fn become_switches_behavior() {
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior open (out)
              (on m
                (if (= m 'close)
                    (become closed out)
                    (send-addr out (list 'open m)))))
            (behavior closed (out)
              (on m (send-addr out (list 'closed m))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    let door = s.spawn(InterpBehavior::new(lib, "open", vec![Value::Addr(inbox)]).unwrap());
    door.send(Value::int(1));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body.as_list().unwrap()[0],
        Value::atom("open")
    );
    door.send(Value::atom("close"));
    s.await_idle(TIMEOUT);
    door.send(Value::int(2));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body.as_list().unwrap()[0],
        Value::atom("closed")
    );
    s.shutdown();
}

#[test]
fn interpreted_actor_advertises_itself_and_serves_patterns() {
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior fib-server (space)
              (init (make-visible "srv/fib" space))
              (on m
                ; m = (n reply-to)
                (let ((n (nth m 0)) (reply-to (nth m 1)))
                  (send-addr reply-to (* n n)))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let space = s.create_space(None).unwrap();
    let (inbox, rx) = s.inbox();
    let _srv = s.spawn(InterpBehavior::new(lib, "fib-server", vec![Value::Space(space)]).unwrap());
    s.await_idle(TIMEOUT);
    s.send_pattern(
        &pattern("srv/*"),
        space,
        Value::list([Value::int(9), Value::Addr(inbox)]),
        None,
    )
    .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(81));
    s.shutdown();
}

#[test]
fn interpreted_divide_and_conquer_pool() {
    // The paper's §6 example shape: a job is split if too big, else
    // processed; results are merged by interpreted collector actors.
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior summer ()
              (on m
                ; m = (lo hi reply-to)
                (let ((lo (nth m 0)) (hi (nth m 1)) (reply-to (nth m 2)))
                  (if (<= (- hi lo) 8)
                      (begin
                        (define s 0)
                        (define i lo)
                        (while (< i hi) (set! s (+ s i)) (set! i (+ i 1)))
                        (send-addr reply-to s))
                      (let ((mid (/ (+ lo hi) 2))
                            (joiner (create joiner reply-to nil)))
                        (send-addr (create summer) (list lo mid joiner))
                        (send-addr (create summer) (list mid hi joiner)))))))
            (behavior joiner (reply-to first)
              (on m
                (if (= first nil)
                    (set! first m)
                    (begin (send-addr reply-to (+ first m)) (stop)))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    let root = s.spawn(InterpBehavior::new(lib, "summer", vec![]).unwrap());
    root.send(Value::list([
        Value::int(0),
        Value::int(500),
        Value::Addr(inbox),
    ]));
    let got = rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap();
    assert_eq!(got, (0..500i64).sum::<i64>());
    s.shutdown();
}

#[test]
fn match_based_message_dispatch() {
    // The idiomatic behavior shape: one `match` over tagged messages.
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior account (balance out)
              (on m
                (match m
                  (('deposit n) (set! balance (+ balance n)))
                  (('withdraw n)
                    (if (<= n balance)
                        (set! balance (- balance n))
                        (send-addr out 'insufficient)))
                  (('query) (send-addr out balance))
                  (else (send-addr out 'unknown-message)))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    let acct = s.spawn(
        InterpBehavior::new(lib, "account", vec![Value::int(100), Value::Addr(inbox)]).unwrap(),
    );
    acct.send(Value::list([Value::atom("deposit"), Value::int(50)]));
    acct.send(Value::list([Value::atom("withdraw"), Value::int(30)]));
    acct.send(Value::list([Value::atom("query")]));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(120));
    acct.send(Value::list([Value::atom("withdraw"), Value::int(999)]));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body,
        Value::atom("insufficient")
    );
    acct.send(Value::str("garbage"));
    assert_eq!(
        rx.recv_timeout(TIMEOUT).unwrap().body,
        Value::atom("unknown-message")
    );
    s.shutdown();
}

#[test]
fn native_and_interpreted_actors_interoperate() {
    let lib = Arc::new(
        BehaviorLib::load("(behavior forward (to) (on m (send-addr to (* m 10))))").unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    // Native actor adds 1, then forwards to the interpreted multiplier.
    let multiplier =
        s.spawn(InterpBehavior::new(lib, "forward", vec![Value::Addr(inbox)]).unwrap());
    let mul_id = multiplier.id();
    let adder = s.spawn(actorspace_runtime::from_fn(move |ctx, msg| {
        let n = msg.body.as_int().unwrap();
        ctx.send_addr(mul_id, Value::int(n + 1));
    }));
    adder.send(Value::int(4));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(50));
    s.shutdown();
}

#[test]
fn bad_handler_drops_message_but_actor_survives() {
    let lib = Arc::new(
        BehaviorLib::load(
            r#"
            (behavior shaky (out)
              (on m
                (if (= m 'bad)
                    (head (list))      ; runtime error
                    (send-addr out m))))
            "#,
        )
        .unwrap(),
    );
    let s = sys();
    let (inbox, rx) = s.inbox();
    let a = s.spawn(InterpBehavior::new(lib, "shaky", vec![Value::Addr(inbox)]).unwrap());
    a.send(Value::atom("bad"));
    a.send(Value::int(5));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(5));
    s.shutdown();
}

#[test]
fn runtime_loading_of_new_behaviors() {
    // §7: "An interpreter gives us the additional flexibility of easily
    // loading behaviors at run-time." Load a second library version and
    // spawn from it while the system runs.
    let mut lib = BehaviorLib::load("(behavior v1 (out) (on m (send-addr out 1)))").unwrap();
    let s = sys();
    let (inbox, rx) = s.inbox();
    let a = s.spawn(
        InterpBehavior::new(
            Arc::new(BehaviorLib::load("(behavior v1 (out) (on m (send-addr out 1)))").unwrap()),
            "v1",
            vec![Value::Addr(inbox)],
        )
        .unwrap(),
    );
    a.send(Value::Unit);
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(1));
    // Hot-load v2 into a new library snapshot and spawn it.
    lib.load_more("(behavior v2 (out) (on m (send-addr out 2)))")
        .unwrap();
    let lib = Arc::new(lib);
    let b = s.spawn(InterpBehavior::new(lib, "v2", vec![Value::Addr(inbox)]).unwrap());
    b.send(Value::Unit);
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(2));
    s.shutdown();
}
