//! S-expression tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `'` (quote shorthand)
    Quote,
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (escapes `\"` `\\` `\n` `\t` handled).
    Str(String),
    /// A symbol (identifiers, operators, attribute paths like `srv/fib`).
    Sym(String),
}

/// A lexical error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_sym_char(c: char) -> bool {
    !c.is_whitespace() && !matches!(c, '(' | ')' | '\'' | '"' | ';')
}

/// Tokenizes `src`. Comments run from `;` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut it = src.char_indices().peekable();
    while let Some(&(i, c)) = it.peek() {
        match c {
            c if c.is_whitespace() => {
                it.next();
            }
            ';' => {
                for (_, c) in it.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                it.next();
                out.push(Token::LParen);
            }
            ')' => {
                it.next();
                out.push(Token::RParen);
            }
            '\'' => {
                it.next();
                out.push(Token::Quote);
            }
            '"' => {
                it.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some((j, c)) = it.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match it.next() {
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            other => {
                                return Err(LexError {
                                    offset: j,
                                    message: format!("bad escape: {other:?}"),
                                })
                            }
                        },
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated string".into(),
                    });
                }
                out.push(Token::Str(s));
            }
            _ => {
                let mut s = String::new();
                while let Some(&(_, c)) = it.peek() {
                    if is_sym_char(c) {
                        s.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                // Numbers: an optional sign followed by digits (and at most
                // one dot) is numeric; everything else is a symbol.
                let tok = parse_number(&s).unwrap_or(Token::Sym(s));
                out.push(tok);
            }
        }
    }
    Ok(out)
}

fn parse_number(s: &str) -> Option<Token> {
    let body = s.strip_prefix('-').unwrap_or(s);
    if body.is_empty() || !body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Token::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Some(Token::Float(f));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("(+ 1 -2 3.5 \"hi\" foo)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Sym("+".into()),
                Token::Int(1),
                Token::Int(-2),
                Token::Float(3.5),
                Token::Str("hi".into()),
                Token::Sym("foo".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("; whole line\n(a ; trailing\n b)").unwrap();
        assert_eq!(toks.len(), 4); // ( a b )
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a\nb\"c\\d""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\nb\"c\\d".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn quote_shorthand() {
        let toks = lex("'x").unwrap();
        assert_eq!(toks, vec![Token::Quote, Token::Sym("x".into())]);
    }

    #[test]
    fn symbols_with_slashes_and_stars() {
        // Attribute paths and patterns are plain symbols to the lexer.
        let toks = lex("srv/fib/* **").unwrap();
        assert_eq!(
            toks,
            vec![Token::Sym("srv/fib/*".into()), Token::Sym("**".into())]
        );
    }

    #[test]
    fn negative_vs_minus() {
        assert_eq!(lex("-5").unwrap(), vec![Token::Int(-5)]);
        assert_eq!(lex("-").unwrap(), vec![Token::Sym("-".into())]);
        assert_eq!(lex("-x").unwrap(), vec![Token::Sym("-x".into())]);
    }
}
