//! The prototype's behavior interpreter (§7).
//!
//! "Instead of building a compiler … we have chosen to build a small
//! sequential interpreter for interpreting the code associated with each
//! method definition. An interpreter gives us the additional flexibility of
//! easily loading behaviors at run-time."
//!
//! Behaviors are written in a small s-expression language and loaded into a
//! [`BehaviorLib`]; [`InterpBehavior`] adapts a named behavior to the
//! runtime's [`Behavior`](actorspace_runtime::Behavior) trait, so
//! interpreted and native actors coexist in one system.
//!
//! # The language
//!
//! ```lisp
//! (behavior echo (owner)            ; parameters become actor state
//!   (on msg                         ; handler: binds `msg`, `sender`, `self`
//!     (send-addr owner msg)))
//! ```
//!
//! Special forms: `if`, `cond`, `match` (list destructuring for
//! tagged-message dispatch), `let`, `begin`, `set!`, `define`,
//! `quote`/`'x`, `and`, `or`, `while`. ActorSpace primitives: `send-addr`, `send`, `broadcast`,
//! `reply`, `create`, `become`, `stop`, `make-visible`, `make-invisible`,
//! `create-space`, `new-capability`, `self`, `sender`, `host-space`.
//! General builtins: arithmetic/comparison, list operations, strings.
//!
//! ```
//! use actorspace_interp::{BehaviorLib, InterpBehavior};
//! use actorspace_runtime::{ActorSystem, Config, Value};
//! use std::sync::Arc;
//!
//! let lib = Arc::new(BehaviorLib::load(r#"
//!   (behavior doubler (out)
//!     (on msg (send-addr out (* 2 msg))))
//! "#).unwrap());
//!
//! let sys = ActorSystem::new(Config::default());
//! let (inbox, rx) = sys.inbox();
//! let d = sys.spawn(InterpBehavior::new(lib, "doubler", vec![Value::Addr(inbox)]).unwrap());
//! d.send(Value::int(21));
//! assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap().body, Value::int(42));
//! sys.shutdown();
//! ```

#![deny(unsafe_code)]

pub mod eval;
pub mod lex;
pub mod lib_loader;
pub mod parse;

pub use eval::{eval_str, Env, EvalError};
pub use lib_loader::{eval_with_ctx, BehaviorLib, InterpBehavior};
pub use parse::{parse_all, parse_one, Sexp};
