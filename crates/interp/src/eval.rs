//! The sequential evaluator.
//!
//! Evaluation is environment-based over [`Value`]s, with actor effects
//! routed through the [`ActorOps`] trait so the same evaluator runs pure
//! (expression tests, `eval_str`) and effectful (inside a behavior, wired
//! to the runtime's [`Ctx`](actorspace_runtime::Ctx)).

use std::collections::HashMap;
use std::fmt;

use actorspace_runtime::Value;

use crate::parse::{parse_one, Sexp};

/// An evaluation error (unbound variable, type mismatch, arity, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

fn err<T>(msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError(msg.into()))
}

/// Lexical environment: a stack of scopes.
#[derive(Debug, Default, Clone)]
pub struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    /// An environment with one (base) scope holding `bindings`.
    pub fn with_base(bindings: HashMap<String, Value>) -> Env {
        Env {
            scopes: vec![bindings],
        }
    }

    /// Pushes a fresh scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Pops the innermost scope.
    pub fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Defines `name` in the innermost scope.
    pub fn define(&mut self, name: &str, v: Value) {
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        self.scopes
            .last_mut()
            .expect("non-empty")
            .insert(name.to_owned(), v);
    }

    /// Reads a variable, innermost scope first.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Assigns to an *existing* variable (`set!` semantics).
    pub fn set(&mut self, name: &str, v: Value) -> Result<(), EvalError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        err(format!("set! of unbound variable `{name}`"))
    }

    /// The base (outermost) scope — an actor's persistent state. Panics on
    /// an environment with no scopes (construct with [`Env::with_base`]).
    pub fn base(&self) -> &HashMap<String, Value> {
        self.scopes.first().expect("environment has a base scope")
    }
}

/// Actor effects the evaluator can request. A pure evaluation context
/// rejects them all.
pub trait ActorOps {
    /// This actor's address.
    fn self_id(&mut self) -> Result<Value, EvalError>;
    /// The current message's sender.
    fn sender(&mut self) -> Result<Value, EvalError>;
    /// The host space.
    fn host_space(&mut self) -> Result<Value, EvalError>;
    /// Point-to-point send.
    fn send_addr(&mut self, to: Value, msg: Value) -> Result<(), EvalError>;
    /// Pattern send; `space` of `None` means the host space.
    fn send_pattern(
        &mut self,
        pat: &str,
        space: Option<Value>,
        msg: Value,
    ) -> Result<(), EvalError>;
    /// Pattern broadcast.
    fn broadcast(&mut self, pat: &str, space: Option<Value>, msg: Value) -> Result<(), EvalError>;
    /// Reply to the sender.
    fn reply(&mut self, msg: Value) -> Result<(), EvalError>;
    /// Create an actor from a named behavior with creation arguments.
    fn create(&mut self, behavior: &str, args: Vec<Value>) -> Result<Value, EvalError>;
    /// Replace this actor's behavior after the current message.
    fn become_(&mut self, behavior: &str, args: Vec<Value>) -> Result<(), EvalError>;
    /// Stop this actor after the current message.
    fn stop(&mut self) -> Result<(), EvalError>;
    /// Make this actor visible under an attribute in a space.
    fn make_visible(&mut self, attr: &str, space: Value) -> Result<(), EvalError>;
    /// Make this actor invisible in a space.
    fn make_invisible(&mut self, space: Value) -> Result<(), EvalError>;
    /// Create a new actorSpace.
    fn create_space(&mut self) -> Result<Value, EvalError>;
}

/// The pure context: every actor op is an error.
pub struct PureOps;

impl ActorOps for PureOps {
    fn self_id(&mut self) -> Result<Value, EvalError> {
        err("`self` outside an actor")
    }
    fn sender(&mut self) -> Result<Value, EvalError> {
        err("`sender` outside an actor")
    }
    fn host_space(&mut self) -> Result<Value, EvalError> {
        err("`host-space` outside an actor")
    }
    fn send_addr(&mut self, _: Value, _: Value) -> Result<(), EvalError> {
        err("`send-addr` outside an actor")
    }
    fn send_pattern(&mut self, _: &str, _: Option<Value>, _: Value) -> Result<(), EvalError> {
        err("`send` outside an actor")
    }
    fn broadcast(&mut self, _: &str, _: Option<Value>, _: Value) -> Result<(), EvalError> {
        err("`broadcast` outside an actor")
    }
    fn reply(&mut self, _: Value) -> Result<(), EvalError> {
        err("`reply` outside an actor")
    }
    fn create(&mut self, _: &str, _: Vec<Value>) -> Result<Value, EvalError> {
        err("`create` outside an actor")
    }
    fn become_(&mut self, _: &str, _: Vec<Value>) -> Result<(), EvalError> {
        err("`become` outside an actor")
    }
    fn stop(&mut self) -> Result<(), EvalError> {
        err("`stop` outside an actor")
    }
    fn make_visible(&mut self, _: &str, _: Value) -> Result<(), EvalError> {
        err("`make-visible` outside an actor")
    }
    fn make_invisible(&mut self, _: Value) -> Result<(), EvalError> {
        err("`make-invisible` outside an actor")
    }
    fn create_space(&mut self) -> Result<Value, EvalError> {
        err("`create-space` outside an actor")
    }
}

/// Evaluates one expression string in an empty pure environment — for
/// tests and the examples' smoke checks.
///
/// ```
/// use actorspace_interp::eval_str;
/// use actorspace_runtime::Value;
/// assert_eq!(eval_str("(+ 1 (* 2 3))").unwrap(), Value::int(7));
/// ```
pub fn eval_str(src: &str) -> Result<Value, EvalError> {
    let sexp = parse_one(src).map_err(|e| EvalError(e.to_string()))?;
    let mut env = Env::with_base(HashMap::new());
    eval(&sexp, &mut env, &mut PureOps)
}

/// Evaluates `expr` in `env` with actor effects routed to `ops`.
pub fn eval(expr: &Sexp, env: &mut Env, ops: &mut dyn ActorOps) -> Result<Value, EvalError> {
    match expr {
        Sexp::Int(i) => Ok(Value::Int(*i)),
        Sexp::Float(f) => Ok(Value::Float(*f)),
        Sexp::Str(s) => Ok(Value::str(s)),
        Sexp::Sym(s) => match s.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "nil" => Ok(Value::Unit),
            "self" => ops.self_id(),
            "sender" => ops.sender(),
            "host-space" => ops.host_space(),
            _ => env
                .get(s)
                .cloned()
                .ok_or_else(|| EvalError(format!("unbound variable `{s}`"))),
        },
        Sexp::List(items) => {
            let Some(head) = items.first() else {
                return Ok(Value::Unit);
            };
            let args = &items[1..];
            let Some(form) = head.as_sym() else {
                return err(format!("cannot apply non-symbol {head}"));
            };
            match form {
                // ---- special forms ----
                "quote" => {
                    arity(args, 1, "quote")?;
                    Ok(quote_value(&args[0]))
                }
                "if" => {
                    if args.len() < 2 || args.len() > 3 {
                        return err("if needs 2 or 3 arguments");
                    }
                    let c = eval(&args[0], env, ops)?;
                    if c.truthy() {
                        eval(&args[1], env, ops)
                    } else if let Some(e) = args.get(2) {
                        eval(e, env, ops)
                    } else {
                        Ok(Value::Unit)
                    }
                }
                "let" => {
                    // (let ((x 1) (y 2)) body...)
                    let Some(bindings) = args.first().and_then(Sexp::as_list) else {
                        return err("let needs a binding list");
                    };
                    let bindings = bindings.to_vec();
                    env.push();
                    let result = (|| {
                        for b in &bindings {
                            let pair = b.as_list().filter(|l| l.len() == 2);
                            let Some(pair) = pair else {
                                return err("let binding must be (name expr)");
                            };
                            let Some(name) = pair[0].as_sym().map(str::to_owned) else {
                                return err("let binding name must be a symbol");
                            };
                            let v = eval(&pair[1], env, ops)?;
                            env.define(&name, v);
                        }
                        eval_body(&args[1..], env, ops)
                    })();
                    env.pop();
                    result
                }
                "begin" => eval_body(args, env, ops),
                "cond" => {
                    // (cond (test body…)… (else body…))
                    for clause in args {
                        let Some(parts) = clause.as_list().filter(|l| !l.is_empty()) else {
                            return err("cond clause must be (test body…)");
                        };
                        let is_else = parts[0].as_sym() == Some("else");
                        if is_else || eval(&parts[0], env, ops)?.truthy() {
                            return eval_body(&parts[1..], env, ops);
                        }
                    }
                    Ok(Value::Unit)
                }
                "set!" => {
                    arity(args, 2, "set!")?;
                    let Some(name) = args[0].as_sym() else {
                        return err("set! needs a variable name");
                    };
                    let v = eval(&args[1], env, ops)?;
                    env.set(name, v.clone())?;
                    Ok(v)
                }
                "define" => {
                    arity(args, 2, "define")?;
                    let Some(name) = args[0].as_sym() else {
                        return err("define needs a variable name");
                    };
                    let v = eval(&args[1], env, ops)?;
                    env.define(name, v.clone());
                    Ok(v)
                }
                "and" => {
                    let mut last = Value::Bool(true);
                    for a in args {
                        last = eval(a, env, ops)?;
                        if !last.truthy() {
                            return Ok(Value::Bool(false));
                        }
                    }
                    Ok(last)
                }
                "or" => {
                    for a in args {
                        let v = eval(a, env, ops)?;
                        if v.truthy() {
                            return Ok(v);
                        }
                    }
                    Ok(Value::Bool(false))
                }
                "match" => {
                    // (match expr (pattern body…)… (else body…))
                    //
                    // Patterns: literals match by equality; 'sym matches
                    // that atom; `_` matches anything; a bare symbol binds;
                    // a list destructures element-wise (exact arity).
                    if args.is_empty() {
                        return err("match needs a subject expression");
                    }
                    let subject = eval(&args[0], env, ops)?;
                    for clause in &args[1..] {
                        let Some(parts) = clause.as_list().filter(|l| !l.is_empty()) else {
                            return err("match clause must be (pattern body…)");
                        };
                        if parts[0].as_sym() == Some("else") {
                            return eval_body(&parts[1..], env, ops);
                        }
                        let mut bindings = Vec::new();
                        if match_value(&parts[0], &subject, &mut bindings)? {
                            env.push();
                            for (name, v) in bindings {
                                env.define(&name, v);
                            }
                            let result = eval_body(&parts[1..], env, ops);
                            env.pop();
                            return result;
                        }
                    }
                    Ok(Value::Unit)
                }
                "while" => {
                    if args.is_empty() {
                        return err("while needs a condition");
                    }
                    let mut guard = 0u32;
                    while eval(&args[0], env, ops)?.truthy() {
                        eval_body(&args[1..], env, ops)?;
                        guard += 1;
                        if guard > 1_000_000 {
                            return err("while: iteration limit exceeded");
                        }
                    }
                    Ok(Value::Unit)
                }

                // ---- actor primitives ----
                "send-addr" => {
                    arity(args, 2, "send-addr")?;
                    let to = eval(&args[0], env, ops)?;
                    let msg = eval(&args[1], env, ops)?;
                    ops.send_addr(to, msg)?;
                    Ok(Value::Unit)
                }
                "send" | "broadcast" => {
                    // (send "pat" msg) or (send "pat" space msg)
                    if args.len() < 2 || args.len() > 3 {
                        return err(format!("{form} needs 2 or 3 arguments"));
                    }
                    let pat = match eval(&args[0], env, ops)? {
                        Value::Str(s) => s.to_string(),
                        Value::Atom(a) => a.as_str().to_owned(),
                        other => {
                            return err(format!("{form}: pattern must be a string, got {other}"))
                        }
                    };
                    let (space, msg) = if args.len() == 3 {
                        (Some(eval(&args[1], env, ops)?), eval(&args[2], env, ops)?)
                    } else {
                        (None, eval(&args[1], env, ops)?)
                    };
                    if form == "send" {
                        ops.send_pattern(&pat, space, msg)?;
                    } else {
                        ops.broadcast(&pat, space, msg)?;
                    }
                    Ok(Value::Unit)
                }
                "reply" => {
                    arity(args, 1, "reply")?;
                    let msg = eval(&args[0], env, ops)?;
                    ops.reply(msg)?;
                    Ok(Value::Unit)
                }
                "create" => {
                    if args.is_empty() {
                        return err("create needs a behavior name");
                    }
                    let Some(name) = args[0].as_sym() else {
                        return err("create: behavior name must be a symbol");
                    };
                    let mut vals = Vec::new();
                    for a in &args[1..] {
                        vals.push(eval(a, env, ops)?);
                    }
                    ops.create(name, vals)
                }
                "become" => {
                    if args.is_empty() {
                        return err("become needs a behavior name");
                    }
                    let Some(name) = args[0].as_sym() else {
                        return err("become: behavior name must be a symbol");
                    };
                    let mut vals = Vec::new();
                    for a in &args[1..] {
                        vals.push(eval(a, env, ops)?);
                    }
                    ops.become_(name, vals)?;
                    Ok(Value::Unit)
                }
                "stop" => {
                    ops.stop()?;
                    Ok(Value::Unit)
                }
                "make-visible" => {
                    arity(args, 2, "make-visible")?;
                    let attr = match eval(&args[0], env, ops)? {
                        Value::Str(s) => s.to_string(),
                        Value::Atom(a) => a.as_str().to_owned(),
                        other => {
                            return err(format!(
                                "make-visible: attribute must be a string, got {other}"
                            ))
                        }
                    };
                    let space = eval(&args[1], env, ops)?;
                    ops.make_visible(&attr, space)?;
                    Ok(Value::Unit)
                }
                "make-invisible" => {
                    arity(args, 1, "make-invisible")?;
                    let space = eval(&args[0], env, ops)?;
                    ops.make_invisible(space)?;
                    Ok(Value::Unit)
                }
                "create-space" => {
                    arity(args, 0, "create-space")?;
                    ops.create_space()
                }

                // ---- builtins ----
                _ => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(eval(a, env, ops)?);
                    }
                    builtin(form, &vals)
                }
            }
        }
    }
}

/// Structural match of `pattern` against `value`, collecting bindings.
/// Returns Ok(false) on mismatch, Err on malformed patterns.
fn match_value(
    pattern: &Sexp,
    value: &Value,
    bindings: &mut Vec<(String, Value)>,
) -> Result<bool, EvalError> {
    match pattern {
        Sexp::Int(i) => Ok(value == &Value::Int(*i)),
        Sexp::Float(f) => Ok(value == &Value::Float(*f)),
        Sexp::Str(s) => Ok(value.as_str() == Some(s)),
        Sexp::Sym(s) if s == "_" => Ok(true),
        Sexp::Sym(s) if s == "true" => Ok(value == &Value::Bool(true)),
        Sexp::Sym(s) if s == "false" => Ok(value == &Value::Bool(false)),
        Sexp::Sym(s) if s == "nil" => Ok(value == &Value::Unit),
        Sexp::Sym(name) => {
            bindings.push((name.clone(), value.clone()));
            Ok(true)
        }
        Sexp::List(items) => {
            // 'sym — the quoted-atom literal.
            if let [Sexp::Sym(q), Sexp::Sym(atom_name)] = items.as_slice() {
                if q == "quote" {
                    return Ok(value == &Value::atom(atom_name));
                }
            }
            let Some(vals) = value.as_list() else {
                return Ok(false);
            };
            if vals.len() != items.len() {
                return Ok(false);
            }
            for (p, v) in items.iter().zip(vals) {
                if !match_value(p, v, bindings)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

fn eval_body(body: &[Sexp], env: &mut Env, ops: &mut dyn ActorOps) -> Result<Value, EvalError> {
    let mut last = Value::Unit;
    for e in body {
        last = eval(e, env, ops)?;
    }
    Ok(last)
}

fn arity(args: &[Sexp], n: usize, form: &str) -> Result<(), EvalError> {
    if args.len() != n {
        return err(format!("{form} needs {n} argument(s), got {}", args.len()));
    }
    Ok(())
}

/// Quotation: symbols become atoms, lists become value lists.
fn quote_value(s: &Sexp) -> Value {
    match s {
        Sexp::Int(i) => Value::Int(*i),
        Sexp::Float(f) => Value::Float(*f),
        Sexp::Str(st) => Value::str(st),
        Sexp::Sym(sym) => Value::atom(sym),
        Sexp::List(items) => Value::list(items.iter().map(quote_value).collect::<Vec<_>>()),
    }
}

fn num2(vals: &[Value], name: &str) -> Result<(i64, i64), EvalError> {
    match (vals[0].as_int(), vals[1].as_int()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => err(format!(
            "{name}: expected integers, got {} {}",
            vals[0], vals[1]
        )),
    }
}

fn builtin(name: &str, vals: &[Value]) -> Result<Value, EvalError> {
    match name {
        "+" | "*" => {
            let mut acc: i64 = if name == "+" { 0 } else { 1 };
            let mut facc: f64 = if name == "+" { 0.0 } else { 1.0 };
            let mut float = false;
            for v in vals {
                match v {
                    Value::Int(i) => {
                        acc = if name == "+" {
                            acc.wrapping_add(*i)
                        } else {
                            acc.wrapping_mul(*i)
                        };
                        facc = if name == "+" {
                            facc + *i as f64
                        } else {
                            facc * *i as f64
                        };
                    }
                    Value::Float(f) => {
                        float = true;
                        facc = if name == "+" { facc + f } else { facc * f };
                    }
                    other => return err(format!("{name}: not a number: {other}")),
                }
            }
            Ok(if float {
                Value::Float(facc)
            } else {
                Value::Int(acc)
            })
        }
        "-" => {
            if vals.is_empty() {
                return err("-: needs arguments");
            }
            if vals.len() == 1 {
                return vals[0]
                    .as_int()
                    .map(|i| Value::Int(-i))
                    .ok_or_else(|| EvalError("-: not an integer".into()));
            }
            let (a, b) = num2(vals, "-")?;
            Ok(Value::Int(a.wrapping_sub(b)))
        }
        "/" => {
            let (a, b) = num2(vals, "/")?;
            if b == 0 {
                return err("/: division by zero");
            }
            Ok(Value::Int(a / b))
        }
        "mod" => {
            let (a, b) = num2(vals, "mod")?;
            if b == 0 {
                return err("mod: division by zero");
            }
            Ok(Value::Int(a.rem_euclid(b)))
        }
        "<" | ">" | "<=" | ">=" => {
            let (a, b) = match (vals[0].as_float(), vals[1].as_float()) {
                (Some(a), Some(b)) => (a, b),
                _ => return err(format!("{name}: expected numbers")),
            };
            Ok(Value::Bool(match name {
                "<" => a < b,
                ">" => a > b,
                "<=" => a <= b,
                _ => a >= b,
            }))
        }
        "=" => Ok(Value::Bool(vals.len() == 2 && vals[0] == vals[1])),
        "!=" => Ok(Value::Bool(vals.len() == 2 && vals[0] != vals[1])),
        "not" => Ok(Value::Bool(
            !vals.first().map(Value::truthy).unwrap_or(false),
        )),
        "min" => {
            let (a, b) = num2(vals, "min")?;
            Ok(Value::Int(a.min(b)))
        }
        "max" => {
            let (a, b) = num2(vals, "max")?;
            Ok(Value::Int(a.max(b)))
        }
        "list" => Ok(Value::list(vals.to_vec())),
        "head" => match vals.first().and_then(|v| v.as_list()) {
            Some([first, ..]) => Ok(first.clone()),
            Some([]) => err("head: empty list"),
            None => err("head: not a list"),
        },
        "tail" => match vals.first().and_then(|v| v.as_list()) {
            Some([_, rest @ ..]) => Ok(Value::list(rest.to_vec())),
            Some([]) => err("tail: empty list"),
            None => err("tail: not a list"),
        },
        "len" => match vals.first() {
            Some(Value::List(l)) => Ok(Value::Int(l.len() as i64)),
            Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
            _ => err("len: not a list or string"),
        },
        "nth" => {
            let idx = vals
                .get(1)
                .and_then(Value::as_int)
                .ok_or(EvalError("nth: bad index".into()))?;
            match vals.first().and_then(|v| v.as_list()) {
                Some(items) => items
                    .get(idx as usize)
                    .cloned()
                    .ok_or_else(|| EvalError(format!("nth: index {idx} out of range"))),
                None => err("nth: not a list"),
            }
        }
        "cons" => {
            if vals.len() != 2 {
                return err("cons: needs 2 arguments");
            }
            let mut out = vec![vals[0].clone()];
            match vals[1].as_list() {
                Some(rest) => out.extend(rest.iter().cloned()),
                None => return err("cons: second argument must be a list"),
            }
            Ok(Value::list(out))
        }
        "append" => {
            let mut out = Vec::new();
            for v in vals {
                match v.as_list() {
                    Some(items) => out.extend(items.iter().cloned()),
                    None => return err("append: all arguments must be lists"),
                }
            }
            Ok(Value::list(out))
        }
        "str" => {
            let mut s = String::new();
            for v in vals {
                match v {
                    Value::Str(inner) => s.push_str(inner),
                    other => s.push_str(&other.to_string()),
                }
            }
            Ok(Value::str(s))
        }
        "list?" => Ok(Value::Bool(matches!(vals.first(), Some(Value::List(_))))),
        "int?" => Ok(Value::Bool(matches!(vals.first(), Some(Value::Int(_))))),
        "addr?" => Ok(Value::Bool(matches!(vals.first(), Some(Value::Addr(_))))),
        _ => err(format!("unknown function `{name}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> Value {
        eval_str(src).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("(+ 1 2 3)"), Value::int(6));
        assert_eq!(ev("(* 2 3 4)"), Value::int(24));
        assert_eq!(ev("(- 10 4)"), Value::int(6));
        assert_eq!(ev("(- 5)"), Value::int(-5));
        assert_eq!(ev("(/ 9 2)"), Value::int(4));
        assert_eq!(ev("(mod 7 3)"), Value::int(1));
        assert_eq!(ev("(mod -1 3)"), Value::int(2));
        assert_eq!(ev("(+ 1 2.5)"), Value::Float(3.5));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("(< 1 2)"), Value::Bool(true));
        assert_eq!(ev("(>= 2 2)"), Value::Bool(true));
        assert_eq!(ev("(= 3 3)"), Value::Bool(true));
        assert_eq!(ev("(!= 3 4)"), Value::Bool(true));
        assert_eq!(ev("(not false)"), Value::Bool(true));
        assert_eq!(ev("(and 1 2 3)"), Value::int(3));
        assert_eq!(ev("(and 1 false 3)"), Value::Bool(false));
        assert_eq!(ev("(or false 7)"), Value::int(7));
        assert_eq!(ev("(or false false)"), Value::Bool(false));
    }

    #[test]
    fn conditionals() {
        assert_eq!(ev("(if true 1 2)"), Value::int(1));
        assert_eq!(ev("(if false 1 2)"), Value::int(2));
        assert_eq!(ev("(if false 1)"), Value::Unit);
        assert_eq!(ev("(if (< 5 3) \"a\" \"b\")"), Value::str("b"));
    }

    #[test]
    fn cond_selects_first_true_clause() {
        assert_eq!(
            ev("(cond ((< 2 1) 'a) ((< 1 2) 'b) (else 'c))"),
            Value::atom("b")
        );
        assert_eq!(ev("(cond ((< 2 1) 'a) (else 'c))"), Value::atom("c"));
        assert_eq!(ev("(cond ((< 2 1) 'a))"), Value::Unit);
        // Bodies may be multi-expression.
        assert_eq!(ev("(cond (true (define x 1) (+ x 1)))"), Value::int(2));
        assert!(eval_str("(cond bad-clause)").is_err());
    }

    #[test]
    fn let_scoping_and_shadowing() {
        assert_eq!(ev("(let ((x 2) (y 3)) (+ x y))"), Value::int(5));
        assert_eq!(ev("(let ((x 1)) (let ((x 2)) x))"), Value::int(2));
        assert_eq!(ev("(let ((x 1)) (begin (let ((x 2)) x) x))"), Value::int(1));
    }

    #[test]
    fn match_destructures_lists() {
        // Tagged-message dispatch, the shape behaviors use.
        let src = r#"
            (match (list 'job 3 9)
              (('bound b) (list "bound" b))
              (('job lo hi) (list "job" (- hi lo)))
              (else "other"))
        "#;
        assert_eq!(ev(src), Value::list([Value::str("job"), Value::int(6)]));
    }

    #[test]
    fn match_literals_and_wildcards() {
        assert_eq!(ev("(match 5 (5 'five) (else 'other))"), Value::atom("five"));
        assert_eq!(
            ev("(match 6 (5 'five) (else 'other))"),
            Value::atom("other")
        );
        assert_eq!(ev("(match \"x\" (\"x\" 1) (else 2))"), Value::int(1));
        assert_eq!(ev("(match 'tag ('tag 1) (else 2))"), Value::int(1));
        assert_eq!(ev("(match (list 1 2) ((_ b) b))"), Value::int(2));
        assert_eq!(
            ev("(match true (true 'yes) (else 'no))"),
            Value::atom("yes")
        );
        assert_eq!(
            ev("(match nil (nil 'unit) (else 'no))"),
            Value::atom("unit")
        );
    }

    #[test]
    fn match_arity_must_agree() {
        assert_eq!(
            ev("(match (list 1 2 3) ((a b) 'two) ((a b c) 'three))"),
            Value::atom("three")
        );
        // No clause matches → Unit.
        assert_eq!(ev("(match (list 1) ((a b) a))"), Value::Unit);
    }

    #[test]
    fn match_bindings_are_scoped_to_the_clause() {
        assert_eq!(
            ev("(begin (define v 1) (match 9 (x (+ x 1))) v)"),
            Value::int(1),
            "clause binding must not leak"
        );
    }

    #[test]
    fn match_errors_on_malformed_clause() {
        assert!(eval_str("(match 1 notaclause)").is_err());
        assert!(eval_str("(match)").is_err());
    }

    #[test]
    fn set_and_define_and_while() {
        assert_eq!(
            ev("(let ((i 0) (sum 0)) (while (< i 5) (set! sum (+ sum i)) (set! i (+ i 1))) sum)"),
            Value::int(10)
        );
        assert_eq!(ev("(begin (define z 4) (* z z))"), Value::int(16));
    }

    #[test]
    fn set_of_unbound_fails() {
        assert!(eval_str("(set! nope 1)").is_err());
    }

    #[test]
    fn lists() {
        assert_eq!(ev("(len (list 1 2 3))"), Value::int(3));
        assert_eq!(ev("(head (list 7 8))"), Value::int(7));
        assert_eq!(
            ev("(tail (list 7 8 9))"),
            Value::list([Value::int(8), Value::int(9)])
        );
        assert_eq!(ev("(nth (list 5 6 7) 1)"), Value::int(6));
        assert_eq!(
            ev("(cons 1 (list 2))"),
            Value::list([Value::int(1), Value::int(2)])
        );
        assert_eq!(
            ev("(append (list 1) (list 2 3))"),
            Value::list([Value::int(1), Value::int(2), Value::int(3)])
        );
        assert!(eval_str("(head (list))").is_err());
    }

    #[test]
    fn quoting() {
        assert_eq!(ev("'foo"), Value::atom("foo"));
        assert_eq!(ev("'(a 1)"), Value::list([Value::atom("a"), Value::int(1)]));
        assert_eq!(
            ev("(quote (1 2))"),
            Value::list([Value::int(1), Value::int(2)])
        );
    }

    #[test]
    fn strings() {
        assert_eq!(ev("(str \"a\" 1 'b)"), Value::str("a1b"));
        assert_eq!(ev("(len \"abc\")"), Value::int(3));
    }

    #[test]
    fn predicates() {
        assert_eq!(ev("(list? (list))"), Value::Bool(true));
        assert_eq!(ev("(int? 3)"), Value::Bool(true));
        assert_eq!(ev("(int? \"3\")"), Value::Bool(false));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "(unknown-fn 1)",
            "(+ 1 \"x\")",
            "(/ 1 0)",
            "(mod 1 0)",
            "nosuchvar",
            "(send \"p\" 1)", // actor op outside an actor
            "(if)",
        ] {
            assert!(eval_str(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn while_guard_prevents_infinite_loops() {
        assert!(eval_str("(while true 1)").is_err());
    }
}
