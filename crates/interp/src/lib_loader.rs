//! Behavior definitions and the runtime adapter.
//!
//! A behavior library is loaded from source text containing
//! `(behavior <name> (<params>…) (on <msg-var> <body>…))` forms — the
//! "parsed representation of the behavior specification" the prototype's
//! interpreter uses (§7.2). [`InterpBehavior`] then adapts any named
//! behavior to the runtime's [`Behavior`] trait; `create` and `become`
//! instantiate other behaviors from the same library, which is how new
//! code is "loaded at run time".

use std::collections::HashMap;
use std::sync::Arc;

use actorspace_atoms::Path;
use actorspace_core::{MemberId, SpaceId};
use actorspace_pattern::Pattern;
use actorspace_runtime::{Behavior, Ctx, Message, Value};

use crate::eval::{eval, ActorOps, Env, EvalError};
use crate::parse::{parse_all, Sexp};

/// One behavior definition.
#[derive(Debug, Clone)]
pub struct BehaviorDef {
    /// Creation parameters — they become the actor's persistent state.
    pub params: Vec<String>,
    /// The message-variable name bound in the handler (`msg` by
    /// convention).
    pub msg_var: String,
    /// Handler body expressions.
    pub body: Vec<Sexp>,
    /// Optional `(init …)` expressions run once at actor start.
    pub init: Vec<Sexp>,
}

/// A library of named behaviors, loadable at run time.
#[derive(Debug, Default)]
pub struct BehaviorLib {
    defs: HashMap<String, BehaviorDef>,
}

impl BehaviorLib {
    /// Parses `(behavior …)` forms from source text.
    pub fn load(src: &str) -> Result<BehaviorLib, EvalError> {
        let mut lib = BehaviorLib::default();
        lib.load_more(src)?;
        Ok(lib)
    }

    /// Adds definitions from more source text (run-time loading). Existing
    /// names are replaced.
    pub fn load_more(&mut self, src: &str) -> Result<(), EvalError> {
        let forms = parse_all(src).map_err(|e| EvalError(e.to_string()))?;
        for form in forms {
            let def = parse_behavior(&form)?;
            self.defs.insert(def.0, def.1);
        }
        Ok(())
    }

    /// Looks up a behavior by name.
    pub fn get(&self, name: &str) -> Option<&BehaviorDef> {
        self.defs.get(name)
    }

    /// Defined behavior names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(String::as_str)
    }
}

fn parse_behavior(form: &Sexp) -> Result<(String, BehaviorDef), EvalError> {
    let items = form
        .as_list()
        .ok_or_else(|| EvalError("top-level form must be (behavior …)".into()))?;
    match items {
        [Sexp::Sym(kw), Sexp::Sym(name), Sexp::List(params), rest @ ..] if kw == "behavior" => {
            let params: Result<Vec<String>, EvalError> = params
                .iter()
                .map(|p| {
                    p.as_sym()
                        .map(str::to_owned)
                        .ok_or_else(|| EvalError("behavior parameter must be a symbol".into()))
                })
                .collect();
            let params = params?;
            let mut init = Vec::new();
            let mut handler: Option<(String, Vec<Sexp>)> = None;
            for clause in rest {
                let c = clause
                    .as_list()
                    .ok_or_else(|| EvalError("behavior clause must be a list".into()))?;
                match c {
                    [Sexp::Sym(kw), rest2 @ ..] if kw == "init" => {
                        init.extend(rest2.iter().cloned());
                    }
                    [Sexp::Sym(kw), Sexp::Sym(var), body @ ..] if kw == "on" => {
                        if handler.is_some() {
                            return Err(EvalError("behavior has two (on …) clauses".into()));
                        }
                        handler = Some((var.clone(), body.to_vec()));
                    }
                    _ => return Err(EvalError(format!("unknown behavior clause: {clause}"))),
                }
            }
            let (msg_var, body) =
                handler.ok_or_else(|| EvalError(format!("behavior {name} lacks (on …)")))?;
            Ok((
                name.clone(),
                BehaviorDef {
                    params,
                    msg_var,
                    body,
                    init,
                },
            ))
        }
        _ => Err(EvalError(format!("not a behavior definition: {form}"))),
    }
}

/// An interpreted actor: a named behavior plus its state bindings.
pub struct InterpBehavior {
    lib: Arc<BehaviorLib>,
    name: String,
    state: HashMap<String, Value>,
}

impl InterpBehavior {
    /// Instantiates `name` from `lib` with creation arguments (must match
    /// the declared parameter count).
    pub fn new(
        lib: Arc<BehaviorLib>,
        name: &str,
        args: Vec<Value>,
    ) -> Result<InterpBehavior, EvalError> {
        let def = lib
            .get(name)
            .ok_or_else(|| EvalError(format!("unknown behavior `{name}`")))?;
        if def.params.len() != args.len() {
            return Err(EvalError(format!(
                "behavior `{name}` takes {} argument(s), got {}",
                def.params.len(),
                args.len()
            )));
        }
        let state = def.params.iter().cloned().zip(args).collect();
        Ok(InterpBehavior {
            lib,
            name: name.to_owned(),
            state,
        })
    }

    /// The behavior's current name (changes on `become`).
    pub fn behavior_name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, ctx: &mut Ctx<'_>, msg: Option<Message>, run_init: bool) {
        let Some(def) = self.lib.get(&self.name).cloned() else {
            return;
        };
        let mut env = Env::with_base(self.state.clone());
        if let Some(m) = &msg {
            env.define(&def.msg_var, m.body.clone());
        }
        let mut ops = CtxOps {
            ctx,
            lib: &self.lib,
            pending_become: None,
        };
        let body = if run_init { &def.init } else { &def.body };
        for expr in body {
            if let Err(e) = eval(expr, &mut env, &mut ops) {
                // A failing handler drops the message, actor survives
                // (fail-soft, mirroring the native runtime's panic policy).
                eprintln!("[interp] behavior `{}`: {e}", self.name);
                break;
            }
        }
        let pending = ops.pending_become.take();
        // Persist base-scope mutations (set! on state variables).
        self.state = env.base().clone();
        // Apply become: swap name and state to the new instantiation.
        if let Some((name, args)) = pending {
            match InterpBehavior::new(self.lib.clone(), &name, args) {
                Ok(next) => {
                    self.name = next.name;
                    self.state = next.state;
                }
                Err(e) => eprintln!("[interp] become failed: {e}"),
            }
        }
    }
}

impl Behavior for InterpBehavior {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.run(ctx, None, true);
    }

    fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        self.run(ctx, Some(msg), false);
    }
}

/// A `become` requested during evaluation: behavior name plus creation
/// arguments.
pub type PendingBecome = (String, Vec<Value>);

/// Evaluates one expression with full actor effects, against `lib` for
/// `create`/`become` lookups — the entry point for drivers that embed the
/// interpreter inside a hand-written behavior (e.g. the `asi` REPL).
///
/// Returns the value plus any `become` the expression requested (which the
/// caller may apply or ignore).
pub fn eval_with_ctx(
    lib: &Arc<BehaviorLib>,
    env: &mut Env,
    ctx: &mut Ctx<'_>,
    expr: &Sexp,
) -> Result<(Value, Option<PendingBecome>), EvalError> {
    let mut ops = CtxOps {
        ctx,
        lib,
        pending_become: None,
    };
    let v = eval(expr, env, &mut ops)?;
    Ok((v, ops.pending_become))
}

/// Routes evaluator effects into the runtime [`Ctx`].
struct CtxOps<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    lib: &'a Arc<BehaviorLib>,
    pending_become: Option<(String, Vec<Value>)>,
}

fn space_of(v: &Value) -> Result<SpaceId, EvalError> {
    v.as_space()
        .ok_or_else(|| EvalError(format!("expected a space, got {v}")))
}

fn pattern_of(text: &str) -> Result<Pattern, EvalError> {
    Pattern::parse(text).map_err(|e| EvalError(format!("bad pattern {text:?}: {e}")))
}

impl ActorOps for CtxOps<'_, '_> {
    fn self_id(&mut self) -> Result<Value, EvalError> {
        Ok(Value::Addr(self.ctx.self_id()))
    }

    fn sender(&mut self) -> Result<Value, EvalError> {
        Ok(self.ctx.sender().map(Value::Addr).unwrap_or(Value::Unit))
    }

    fn host_space(&mut self) -> Result<Value, EvalError> {
        Ok(Value::Space(self.ctx.host_space()))
    }

    fn send_addr(&mut self, to: Value, msg: Value) -> Result<(), EvalError> {
        let to = to
            .as_addr()
            .ok_or_else(|| EvalError(format!("send-addr: not an address: {to}")))?;
        self.ctx.send_addr(to, msg);
        Ok(())
    }

    fn send_pattern(
        &mut self,
        pat: &str,
        space: Option<Value>,
        msg: Value,
    ) -> Result<(), EvalError> {
        let pattern = pattern_of(pat)?;
        let result = match space {
            Some(s) => self.ctx.send_pattern(&pattern, space_of(&s)?, msg),
            None => self.ctx.send_here(&pattern, msg),
        };
        result.map(|_| ()).map_err(|e| EvalError(e.to_string()))
    }

    fn broadcast(&mut self, pat: &str, space: Option<Value>, msg: Value) -> Result<(), EvalError> {
        let pattern = pattern_of(pat)?;
        let result = match space {
            Some(s) => self.ctx.broadcast(&pattern, space_of(&s)?, msg),
            None => self.ctx.broadcast_here(&pattern, msg),
        };
        result.map(|_| ()).map_err(|e| EvalError(e.to_string()))
    }

    fn reply(&mut self, msg: Value) -> Result<(), EvalError> {
        if !self.ctx.reply(msg) {
            return Err(EvalError("reply: no sender to reply to".into()));
        }
        Ok(())
    }

    fn create(&mut self, behavior: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let b = InterpBehavior::new(self.lib.clone(), behavior, args)?;
        Ok(Value::Addr(self.ctx.create(b)))
    }

    fn become_(&mut self, behavior: &str, args: Vec<Value>) -> Result<(), EvalError> {
        if self.lib.get(behavior).is_none() {
            return Err(EvalError(format!("become: unknown behavior `{behavior}`")));
        }
        self.pending_become = Some((behavior.to_owned(), args));
        Ok(())
    }

    fn stop(&mut self) -> Result<(), EvalError> {
        self.ctx.stop();
        Ok(())
    }

    fn make_visible(&mut self, attr: &str, space: Value) -> Result<(), EvalError> {
        let path = Path::parse(attr).map_err(|e| EvalError(e.to_string()))?;
        let me = MemberId::Actor(self.ctx.self_id());
        self.ctx
            .make_visible(me, vec![path], space_of(&space)?, None)
            .map_err(|e| EvalError(e.to_string()))
    }

    fn make_invisible(&mut self, space: Value) -> Result<(), EvalError> {
        self.ctx
            .make_self_invisible(space_of(&space)?, None)
            .map_err(|e| EvalError(e.to_string()))
    }

    fn create_space(&mut self) -> Result<Value, EvalError> {
        Ok(Value::Space(self.ctx.create_space(None)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_parses_definitions() {
        let lib = BehaviorLib::load(
            r#"
            (behavior a (x y) (on m (reply m)))
            (behavior b () (init (make-visible "w" host-space)) (on m (stop)))
            "#,
        )
        .unwrap();
        let a = lib.get("a").unwrap();
        assert_eq!(a.params, vec!["x", "y"]);
        assert_eq!(a.msg_var, "m");
        assert!(a.init.is_empty());
        let b = lib.get("b").unwrap();
        assert!(b.params.is_empty());
        assert_eq!(b.init.len(), 1);
        let mut names: Vec<&str> = lib.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn load_rejects_malformed_definitions() {
        for bad in [
            "(behavior)",
            "(behavior x)",
            "(behavior x (p))",                   // no handler
            "(behavior x (p) (on m 1) (on m 2))", // two handlers
            "(behavior x (1) (on m 1))",          // non-symbol param
            "(notbehavior x () (on m 1))",
            "(behavior x () (weird 1))",
        ] {
            assert!(BehaviorLib::load(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn instantiation_checks_arity() {
        let lib = Arc::new(BehaviorLib::load("(behavior a (x) (on m m))").unwrap());
        assert!(InterpBehavior::new(lib.clone(), "a", vec![Value::int(1)]).is_ok());
        assert!(InterpBehavior::new(lib.clone(), "a", vec![]).is_err());
        assert!(InterpBehavior::new(lib, "nope", vec![]).is_err());
    }

    #[test]
    fn load_more_replaces() {
        let mut lib = BehaviorLib::load("(behavior a () (on m 1))").unwrap();
        lib.load_more("(behavior a (x) (on m 2))").unwrap();
        assert_eq!(lib.get("a").unwrap().params.len(), 1);
    }
}
