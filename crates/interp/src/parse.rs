//! S-expression reader.

use std::fmt;

use crate::lex::{lex, LexError, Token};

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A symbol.
    Sym(String),
    /// A parenthesized list.
    List(Vec<Sexp>),
}

impl Sexp {
    /// The symbol name, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Sexp::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Int(i) => write!(f, "{i}"),
            Sexp::Float(x) => write!(f, "{x}"),
            Sexp::Str(s) => write!(f, "{s:?}"),
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A reader error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Structure was malformed.
    Syntax(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Reads every top-level form in `src`.
pub fn parse_all(src: &str) -> Result<Vec<Sexp>, ParseError> {
    let toks = lex(src)?;
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < toks.len() {
        let (sexp, next) = read(&toks, pos)?;
        out.push(sexp);
        pos = next;
    }
    Ok(out)
}

/// Reads exactly one form.
pub fn parse_one(src: &str) -> Result<Sexp, ParseError> {
    let all = parse_all(src)?;
    match all.len() {
        1 => Ok(all.into_iter().next().expect("len checked")),
        n => Err(ParseError::Syntax(format!("expected one form, found {n}"))),
    }
}

fn read(toks: &[Token], pos: usize) -> Result<(Sexp, usize), ParseError> {
    match toks.get(pos) {
        None => Err(ParseError::Syntax("unexpected end of input".into())),
        Some(Token::Int(i)) => Ok((Sexp::Int(*i), pos + 1)),
        Some(Token::Float(f)) => Ok((Sexp::Float(*f), pos + 1)),
        Some(Token::Str(s)) => Ok((Sexp::Str(s.clone()), pos + 1)),
        Some(Token::Sym(s)) => Ok((Sexp::Sym(s.clone()), pos + 1)),
        Some(Token::Quote) => {
            let (inner, next) = read(toks, pos + 1)?;
            Ok((Sexp::List(vec![Sexp::Sym("quote".into()), inner]), next))
        }
        Some(Token::LParen) => {
            let mut items = Vec::new();
            let mut p = pos + 1;
            loop {
                match toks.get(p) {
                    Some(Token::RParen) => return Ok((Sexp::List(items), p + 1)),
                    None => return Err(ParseError::Syntax("unclosed `(`".into())),
                    _ => {
                        let (item, next) = read(toks, p)?;
                        items.push(item);
                        p = next;
                    }
                }
            }
        }
        Some(Token::RParen) => Err(ParseError::Syntax("unexpected `)`".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_lists() {
        assert_eq!(parse_one("42").unwrap(), Sexp::Int(42));
        assert_eq!(parse_one("x").unwrap(), Sexp::Sym("x".into()));
        assert_eq!(
            parse_one("(a (b 1) \"s\")").unwrap(),
            Sexp::List(vec![
                Sexp::Sym("a".into()),
                Sexp::List(vec![Sexp::Sym("b".into()), Sexp::Int(1)]),
                Sexp::Str("s".into()),
            ])
        );
    }

    #[test]
    fn quote_expands() {
        assert_eq!(
            parse_one("'foo").unwrap(),
            Sexp::List(vec![Sexp::Sym("quote".into()), Sexp::Sym("foo".into())])
        );
    }

    #[test]
    fn multiple_top_level_forms() {
        let forms = parse_all("(a) (b) 3").unwrap();
        assert_eq!(forms.len(), 3);
    }

    #[test]
    fn errors() {
        assert!(parse_one("(a").is_err());
        assert!(parse_one(")").is_err());
        assert!(parse_one("(a) (b)").is_err()); // parse_one wants exactly one
        assert!(parse_one("").is_err());
    }

    #[test]
    fn display_round_trip() {
        let src = "(behavior w (x) (on msg (send-addr x msg)))";
        let s = parse_one(src).unwrap();
        assert_eq!(parse_one(&s.to_string()).unwrap(), s);
    }
}
