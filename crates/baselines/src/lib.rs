//! Baseline systems the paper positions ActorSpace against (§3).
//!
//! To reproduce the paper's comparative claims we implement the three
//! coordination styles it discusses:
//!
//! * [`tuple_space`] — a Linda-style generative-communication store with
//!   `out`/`in`/`rd` (blocking) and `inp`/`rdp` (non-blocking). Used to
//!   demonstrate the §3 claims: tuple retrieval races between concurrent
//!   readers, communication "cannot be made secure against arbitrary
//!   readers", and processes must actively poll.
//! * [`name_server`] — the global naming service of conventional open
//!   systems: "objects may register themselves if they want other objects
//!   to send messages to them." Exact-name lookup only — the queries a
//!   pattern can express (wildcards, alternation) have no equivalent.
//! * [`process_group`] — Amoeba/V/ISIS-style process groups: "an
//!   association of one name with a set of names", with explicit join/leave
//!   membership and group send/multicast. Group changes must be explicitly
//!   communicated, unlike attribute patterns.

#![deny(unsafe_code)]

pub mod name_server;
pub mod process_group;
pub mod tuple_space;

pub use name_server::NameServer;
pub use process_group::{GroupError, ProcessGroups};
pub use tuple_space::{Field, Tuple, TuplePattern, TupleSpace};
