//! A global name service — the conventional open-system alternative (§3).
//!
//! "Open systems which use explicit references to objects and message
//! passing as coordination primitives usually offer a global naming service
//! to which all objects have a reference. This naming service can then be
//! queried for other references … Objects may register themselves if they
//! want other objects to send messages to them."
//!
//! The service maps exact string names to actor ids, with optional blocking
//! lookups (wait for registration). What it *cannot* do — and what the
//! repository benchmark (E11) quantifies — is answer pattern queries or
//! group sends; callers must know exact names in advance.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use actorspace_atoms::Atom;
use actorspace_lockcheck::{Condvar, LockClass, Mutex};

/// An exact-name registry of actor ids.
pub struct NameServer {
    names: Mutex<HashMap<Atom, u64>>,
    registered: Condvar,
}

impl Default for NameServer {
    fn default() -> NameServer {
        NameServer {
            names: Mutex::new(LockClass::Baselines, HashMap::new()),
            registered: Condvar::new(),
        }
    }
}

impl NameServer {
    /// An empty server.
    pub fn new() -> NameServer {
        NameServer::default()
    }

    /// Registers (or replaces) a name binding.
    pub fn register(&self, name: Atom, id: u64) {
        self.names.lock().insert(name, id);
        self.registered.notify_all();
    }

    /// Removes a binding; returns the old id if present.
    pub fn unregister(&self, name: Atom) -> Option<u64> {
        self.names.lock().remove(&name)
    }

    /// Exact lookup.
    pub fn lookup(&self, name: Atom) -> Option<u64> {
        self.names.lock().get(&name).copied()
    }

    /// Lookup that blocks until the name is registered or `timeout`
    /// passes.
    pub fn lookup_blocking(&self, name: Atom, timeout: Duration) -> Option<u64> {
        let deadline = Instant::now() + timeout;
        let mut names = self.names.lock();
        loop {
            if let Some(&id) = names.get(&name) {
                return Some(id);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let _ = self.registered.wait_until(&mut names, deadline);
        }
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.names.lock().len()
    }

    /// True if no names are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::atom;
    use std::sync::Arc;

    #[test]
    fn register_lookup_unregister() {
        let ns = NameServer::new();
        let n = atom("ns/printer");
        assert_eq!(ns.lookup(n), None);
        ns.register(n, 42);
        assert_eq!(ns.lookup(n), Some(42));
        assert_eq!(ns.unregister(n), Some(42));
        assert_eq!(ns.lookup(n), None);
    }

    #[test]
    fn reregistration_replaces() {
        let ns = NameServer::new();
        let n = atom("ns/svc");
        ns.register(n, 1);
        ns.register(n, 2);
        assert_eq!(ns.lookup(n), Some(2));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn blocking_lookup_waits_for_registration() {
        let ns = Arc::new(NameServer::new());
        let ns2 = ns.clone();
        let n = atom("ns/late");
        let h = std::thread::spawn(move || ns2.lookup_blocking(n, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        ns.register(n, 9);
        assert_eq!(h.join().unwrap(), Some(9));
    }

    #[test]
    fn blocking_lookup_times_out() {
        let ns = NameServer::new();
        assert_eq!(
            ns.lookup_blocking(atom("ns/never"), Duration::from_millis(40)),
            None
        );
    }

    #[test]
    fn exact_names_only_no_pattern_queries() {
        // The structural limitation vs. ActorSpace: registering
        // "srv/fib" does not make "srv/*"-style queries possible — a
        // lookup for a different exact string finds nothing.
        let ns = NameServer::new();
        ns.register(atom("srv/fib"), 1);
        assert_eq!(ns.lookup(atom("srv/*")), None);
        assert_eq!(ns.lookup(atom("srv")), None);
    }
}
