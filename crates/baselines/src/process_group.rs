//! Explicit process groups — the Amoeba / V / ISIS style (§3).
//!
//! "Object groups can be viewed as an association of one name with a set of
//! names (corresponding to members of the group), which when bundled with
//! primitives for manipulation of groups and extension of communication
//! primitives to groups of receivers support group oriented communication."
//!
//! Membership is *explicit*: processes join and leave by group name, and
//! senders address the whole group or one member. The contrast the
//! benchmarks draw: every membership change is an explicit operation by the
//! member (or its manager), there is no attribute-based selection *within*
//! a group, and overlapping a member into many groups means many explicit
//! joins.

use std::collections::HashMap;

use actorspace_atoms::Atom;
use actorspace_lockcheck::{LockClass, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Errors from group operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// The named group has no members (or does not exist).
    EmptyGroup,
    /// The member was not in the group.
    NotAMember,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::EmptyGroup => write!(f, "group is empty or unknown"),
            GroupError::NotAMember => write!(f, "not a member of the group"),
        }
    }
}

impl std::error::Error for GroupError {}

struct Inner {
    groups: HashMap<Atom, Vec<u64>>,
    rng: SmallRng,
}

/// A registry of named process groups over opaque member ids.
pub struct ProcessGroups {
    inner: Mutex<Inner>,
}

impl ProcessGroups {
    /// An empty registry. A seed may be supplied for deterministic
    /// one-of-group selection in tests.
    pub fn new(seed: Option<u64>) -> ProcessGroups {
        let rng = match seed {
            Some(s) => SmallRng::seed_from_u64(s),
            None => SmallRng::from_entropy(),
        };
        ProcessGroups {
            inner: Mutex::new(
                LockClass::Baselines,
                Inner {
                    groups: HashMap::new(),
                    rng,
                },
            ),
        }
    }

    /// Adds `member` to `group` (creating the group on first join).
    /// Idempotent.
    pub fn join(&self, group: Atom, member: u64) {
        let mut inner = self.inner.lock();
        let members = inner.groups.entry(group).or_default();
        if !members.contains(&member) {
            members.push(member);
        }
    }

    /// Removes `member` from `group`.
    pub fn leave(&self, group: Atom, member: u64) -> Result<(), GroupError> {
        let mut inner = self.inner.lock();
        let members = inner.groups.get_mut(&group).ok_or(GroupError::NotAMember)?;
        let before = members.len();
        members.retain(|&m| m != member);
        if members.len() == before {
            return Err(GroupError::NotAMember);
        }
        Ok(())
    }

    /// The group's current membership (copy).
    pub fn members(&self, group: Atom) -> Vec<u64> {
        self.inner
            .lock()
            .groups
            .get(&group)
            .cloned()
            .unwrap_or_default()
    }

    /// Selects one member (the "send to group, one receives" style used for
    /// replicated services).
    pub fn pick_one(&self, group: Atom) -> Result<u64, GroupError> {
        let mut inner = self.inner.lock();
        let Inner { groups, rng } = &mut *inner;
        let members = groups
            .get(&group)
            .filter(|m| !m.is_empty())
            .ok_or(GroupError::EmptyGroup)?;
        Ok(members[rng.gen_range(0..members.len())])
    }

    /// Multicast: invokes `deliver` for every member.
    pub fn multicast(
        &self,
        group: Atom,
        mut deliver: impl FnMut(u64),
    ) -> Result<usize, GroupError> {
        let members = self.members(group);
        if members.is_empty() {
            return Err(GroupError::EmptyGroup);
        }
        let n = members.len();
        for m in members {
            deliver(m);
        }
        Ok(n)
    }

    /// Number of groups with at least one member.
    pub fn group_count(&self) -> usize {
        self.inner
            .lock()
            .groups
            .values()
            .filter(|m| !m.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_atoms::atom;

    #[test]
    fn join_members_leave() {
        let g = ProcessGroups::new(Some(1));
        let grp = atom("pg/workers");
        g.join(grp, 1);
        g.join(grp, 2);
        g.join(grp, 2); // idempotent
        assert_eq!(g.members(grp), vec![1, 2]);
        g.leave(grp, 1).unwrap();
        assert_eq!(g.members(grp), vec![2]);
        assert_eq!(g.leave(grp, 1), Err(GroupError::NotAMember));
    }

    #[test]
    fn pick_one_selects_members_only() {
        let g = ProcessGroups::new(Some(2));
        let grp = atom("pg/replicas");
        for i in 0..4 {
            g.join(grp, i);
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let m = g.pick_one(grp).unwrap();
            assert!(m < 4);
            seen.insert(m);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn empty_group_errors() {
        let g = ProcessGroups::new(Some(3));
        let grp = atom("pg/none");
        assert_eq!(g.pick_one(grp), Err(GroupError::EmptyGroup));
        assert_eq!(g.multicast(grp, |_| {}), Err(GroupError::EmptyGroup));
        g.join(grp, 7);
        g.leave(grp, 7).unwrap();
        assert_eq!(g.pick_one(grp), Err(GroupError::EmptyGroup));
    }

    #[test]
    fn multicast_hits_everyone_once() {
        let g = ProcessGroups::new(Some(4));
        let grp = atom("pg/all");
        for i in 0..10 {
            g.join(grp, i);
        }
        let mut got = Vec::new();
        let n = g.multicast(grp, |m| got.push(m)).unwrap();
        assert_eq!(n, 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn overlapping_groups_require_explicit_joins() {
        // The contrast with attribute patterns: visibility in two "views"
        // costs two explicit joins.
        let g = ProcessGroups::new(Some(5));
        let fast = atom("pg/fast");
        let all = atom("pg/every");
        g.join(fast, 1);
        g.join(all, 1);
        g.join(all, 2);
        assert_eq!(g.members(fast), vec![1]);
        assert_eq!(g.members(all), vec![1, 2]);
        assert_eq!(g.group_count(), 2);
    }
}
