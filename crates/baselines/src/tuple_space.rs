//! A Linda-style tuple space (Gelernter \[16] in the paper's references).
//!
//! "Linda provides process interaction through a globally shared memory
//! with associative operations on the contents" (§3). The operations are
//! the classic four:
//!
//! * `out(tuple)` — deposit a tuple;
//! * `in(pattern)` — *remove* a matching tuple, blocking until one exists;
//! * `rd(pattern)` — read (copy) a matching tuple, blocking;
//! * `inp`/`rdp` — non-blocking variants returning `Option`.
//!
//! The implementation is a mutex-protected bag with a condition variable
//! for blocked readers — deliberately the simplest faithful realization,
//! since the benchmarks compare *coordination styles*, not storage
//! engineering. The §3 contrasts the tests exercise: concurrent `in`s race
//! for the same tuple (exactly one wins), and any process can consume any
//! tuple (no access control).

use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_lockcheck::{Condvar, LockClass, Mutex};

/// One field of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An integer.
    Int(i64),
    /// A string.
    Str(Arc<str>),
}

impl Field {
    /// A string field.
    pub fn str(s: impl AsRef<str>) -> Field {
        Field::Str(Arc::from(s.as_ref()))
    }
}

impl From<i64> for Field {
    fn from(i: i64) -> Self {
        Field::Int(i)
    }
}

impl From<&str> for Field {
    fn from(s: &str) -> Self {
        Field::str(s)
    }
}

/// A tuple: an ordered list of fields.
pub type Tuple = Vec<Field>;

/// One slot of a retrieval pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// Matches exactly this field.
    Exact(Field),
    /// A formal parameter: matches any field (Linda's `?x`).
    Wild,
}

/// A retrieval pattern: arity must match, each slot must match.
#[derive(Debug, Clone, PartialEq)]
pub struct TuplePattern(pub Vec<Slot>);

impl TuplePattern {
    /// Builds a pattern from slots.
    pub fn new(slots: impl Into<Vec<Slot>>) -> TuplePattern {
        TuplePattern(slots.into())
    }

    /// Does this pattern match `tuple`?
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.0.len() == tuple.len()
            && self.0.iter().zip(tuple).all(|(s, f)| match s {
                Slot::Wild => true,
                Slot::Exact(e) => e == f,
            })
    }
}

/// Shorthand slot constructors.
pub fn exact(f: impl Into<Field>) -> Slot {
    Slot::Exact(f.into())
}

/// A wildcard slot.
pub fn wild() -> Slot {
    Slot::Wild
}

#[derive(Default)]
struct Bag {
    tuples: Vec<Tuple>,
}

/// The shared tuple space.
pub struct TupleSpace {
    bag: Mutex<Bag>,
    arrived: Condvar,
}

impl Default for TupleSpace {
    fn default() -> TupleSpace {
        TupleSpace {
            bag: Mutex::new(LockClass::Baselines, Bag::default()),
            arrived: Condvar::new(),
        }
    }
}

impl TupleSpace {
    /// An empty space.
    pub fn new() -> TupleSpace {
        TupleSpace::default()
    }

    /// `out`: deposits a tuple, waking blocked readers.
    pub fn out(&self, tuple: Tuple) {
        self.bag.lock().tuples.push(tuple);
        self.arrived.notify_all();
    }

    /// `inp`: removes and returns a matching tuple if one exists now.
    pub fn inp(&self, pattern: &TuplePattern) -> Option<Tuple> {
        let mut bag = self.bag.lock();
        let idx = bag.tuples.iter().position(|t| pattern.matches(t))?;
        Some(bag.tuples.swap_remove(idx))
    }

    /// `rdp`: copies a matching tuple if one exists now.
    pub fn rdp(&self, pattern: &TuplePattern) -> Option<Tuple> {
        let bag = self.bag.lock();
        bag.tuples.iter().find(|t| pattern.matches(t)).cloned()
    }

    /// `in`: removes a matching tuple, blocking up to `timeout`.
    pub fn in_(&self, pattern: &TuplePattern, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut bag = self.bag.lock();
        loop {
            if let Some(idx) = bag.tuples.iter().position(|t| pattern.matches(t)) {
                return Some(bag.tuples.swap_remove(idx));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.arrived.wait_until(&mut bag, deadline).timed_out() {
                // Loop re-checks once more before giving up.
            }
        }
    }

    /// `rd`: copies a matching tuple, blocking up to `timeout`.
    pub fn rd(&self, pattern: &TuplePattern, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut bag = self.bag.lock();
        loop {
            if let Some(t) = bag.tuples.iter().find(|t| pattern.matches(t)) {
                return Some(t.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let _ = self.arrived.wait_until(&mut bag, deadline);
        }
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.bag.lock().tuples.len()
    }

    /// True when the space holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Field::Int(v)).collect()
    }

    #[test]
    fn out_then_inp() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::str("job"), Field::Int(1)]);
        let got = ts.inp(&TuplePattern::new([exact("job"), wild()])).unwrap();
        assert_eq!(got[1], Field::Int(1));
        assert!(ts.is_empty());
    }

    #[test]
    fn inp_returns_none_without_match() {
        let ts = TupleSpace::new();
        ts.out(t(&[1, 2]));
        assert!(ts.inp(&TuplePattern::new([exact(9i64), wild()])).is_none());
        // Arity mismatch never matches.
        assert!(ts.inp(&TuplePattern::new([wild()])).is_none());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn rdp_does_not_consume() {
        let ts = TupleSpace::new();
        ts.out(t(&[5]));
        assert!(ts.rdp(&TuplePattern::new([exact(5i64)])).is_some());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn blocking_in_waits_for_out() {
        let ts = Arc::new(TupleSpace::new());
        let ts2 = ts.clone();
        let h = std::thread::spawn(move || {
            ts2.in_(
                &TuplePattern::new([exact("k"), wild()]),
                Duration::from_secs(10),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        ts.out(vec![Field::str("k"), Field::Int(7)]);
        let got = h.join().unwrap().unwrap();
        assert_eq!(got[1], Field::Int(7));
    }

    #[test]
    fn blocking_in_times_out() {
        let ts = TupleSpace::new();
        let got = ts.in_(
            &TuplePattern::new([exact("never")]),
            Duration::from_millis(50),
        );
        assert!(got.is_none());
    }

    #[test]
    fn concurrent_ins_race_exactly_one_wins_per_tuple() {
        // §3: "race conditions may occur as a result of concurrent access by
        // different processes to a tuple space" — each tuple is consumed by
        // exactly one reader.
        let ts = Arc::new(TupleSpace::new());
        let n_tuples = 100;
        let n_readers = 8;
        for i in 0..n_tuples {
            ts.out(t(&[i]));
        }
        let mut handles = Vec::new();
        for _ in 0..n_readers {
            let ts = ts.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(tu) = ts.inp(&TuplePattern::new([wild()])) {
                    got.push(match tu[0] {
                        Field::Int(i) => i,
                        _ => unreachable!(),
                    });
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<i64> = (0..n_tuples).collect();
        assert_eq!(all, want, "every tuple consumed exactly once");
    }

    #[test]
    fn no_access_control_any_reader_can_consume() {
        // §3: in Linda "there is no way of abstractly specifying that a
        // process with certain attributes may not consume a tuple." Model a
        // 'malicious' reader stealing another's reply.
        let ts = Arc::new(TupleSpace::new());
        ts.out(vec![Field::str("reply-for-alice"), Field::Int(42)]);
        // Bob consumes Alice's reply with a wildcard: nothing stops him.
        let stolen = ts.inp(&TuplePattern::new([wild(), wild()]));
        assert!(stolen.is_some());
        // Alice now blocks forever (times out).
        let alice = ts.in_(
            &TuplePattern::new([exact("reply-for-alice"), wild()]),
            Duration::from_millis(50),
        );
        assert!(alice.is_none());
    }

    #[test]
    fn rd_blocks_until_available() {
        let ts = Arc::new(TupleSpace::new());
        let ts2 = ts.clone();
        let h = std::thread::spawn(move || {
            ts2.rd(&TuplePattern::new([exact(1i64)]), Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(30));
        ts.out(t(&[1]));
        assert!(h.join().unwrap().is_some());
        assert_eq!(ts.len(), 1, "rd must not consume");
    }
}
