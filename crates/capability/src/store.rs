//! Guards: attaching capabilities to protected targets.
//!
//! "When creating an actor or an actorSpace, a capability may be bound to
//! it, and only if this capability is presented, may an actor's visibility
//! be changed. A capability may also be bound to more than one actor or
//! actorSpace." (§5.4)
//!
//! A [`Guard`] is the per-target record: either open (no capability bound)
//! or requiring a specific key. Validation takes the presented capability
//! and the rights the operation needs.

use serde::{Deserialize, Serialize};

use crate::key::{CapKey, Capability};
use crate::rights::Rights;

/// The protection state of one actor or actorSpace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Guard {
    /// No capability bound: every request is authorized. The paper's
    /// default when creation supplies no capability.
    Open,
    /// A capability with this key (and sufficient rights) must be
    /// presented.
    Locked(CapKey),
}

/// Why a guarded operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// The target is locked and no capability was presented.
    Missing,
    /// A capability was presented but its key does not match.
    WrongKey,
    /// The key matched but the capability lacks the needed rights
    /// (it was [restricted](crate::Capability::restrict)).
    InsufficientRights {
        /// What the operation required.
        needed: Rights,
        /// What the capability conveyed.
        held: Rights,
    },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Missing => write!(f, "target is capability-protected; none presented"),
            GuardError::WrongKey => write!(f, "presented capability does not match the guard"),
            GuardError::InsufficientRights { needed, held } => {
                write!(
                    f,
                    "capability lacks rights: needs {needed:?}, holds {held:?}"
                )
            }
        }
    }
}

impl std::error::Error for GuardError {}

impl Guard {
    /// Builds the guard for a creation call: `Some(cap)` locks the target
    /// to that capability's key, `None` leaves it open.
    pub fn from_creation(cap: Option<&Capability>) -> Guard {
        match cap {
            Some(c) => Guard::Locked(c.key()),
            None => Guard::Open,
        }
    }

    /// Validates an operation needing `needed` rights, given the presented
    /// capability (if any).
    pub fn check(&self, presented: Option<&Capability>, needed: Rights) -> Result<(), GuardError> {
        match self {
            Guard::Open => Ok(()),
            Guard::Locked(key) => {
                let cap = presented.ok_or(GuardError::Missing)?;
                if cap.key() != *key {
                    return Err(GuardError::WrongKey);
                }
                if !cap.rights().covers(needed) {
                    return Err(GuardError::InsufficientRights {
                        needed,
                        held: cap.rights(),
                    });
                }
                Ok(())
            }
        }
    }

    /// True when no capability is required.
    pub fn is_open(&self) -> bool {
        matches!(self, Guard::Open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::CapMinter;

    #[test]
    fn open_guard_allows_anything() {
        let g = Guard::Open;
        assert!(g.check(None, Rights::ALL).is_ok());
        assert!(g.check(None, Rights::NONE).is_ok());
    }

    #[test]
    fn locked_guard_requires_presentation() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let g = Guard::from_creation(Some(&cap));
        assert_eq!(g.check(None, Rights::VISIBILITY), Err(GuardError::Missing));
        assert!(g.check(Some(&cap), Rights::VISIBILITY).is_ok());
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let other = mint.new_capability();
        let g = Guard::from_creation(Some(&cap));
        assert_eq!(
            g.check(Some(&other), Rights::VISIBILITY),
            Err(GuardError::WrongKey)
        );
    }

    #[test]
    fn restricted_capability_cannot_exceed_its_rights() {
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let weak = cap.restrict(Rights::VISIBILITY);
        let g = Guard::from_creation(Some(&cap));
        assert!(g.check(Some(&weak), Rights::VISIBILITY).is_ok());
        let err = g.check(Some(&weak), Rights::MANAGE).unwrap_err();
        assert!(matches!(err, GuardError::InsufficientRights { .. }));
    }

    #[test]
    fn one_capability_can_guard_many_targets() {
        // §5.4: "A capability may also be bound to more than one actor or
        // actorSpace."
        let mint = CapMinter::new();
        let cap = mint.new_capability();
        let guards: Vec<Guard> = (0..5).map(|_| Guard::from_creation(Some(&cap))).collect();
        for g in &guards {
            assert!(g.check(Some(&cap), Rights::ALL).is_ok());
        }
    }

    #[test]
    fn from_creation_none_is_open() {
        assert!(Guard::from_creation(None).is_open());
    }

    #[test]
    fn errors_display() {
        let e = GuardError::InsufficientRights {
            needed: Rights::MANAGE,
            held: Rights::NONE,
        };
        assert!(e.to_string().contains("MANAGE"));
        assert!(!GuardError::Missing.to_string().is_empty());
        assert!(!GuardError::WrongKey.to_string().is_empty());
    }
}
