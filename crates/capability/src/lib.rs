//! Capabilities — unforgeable keys for secure access control (paper §5.4).
//!
//! "We provide security by the standard technique of introducing
//! capabilities: only the holder of the capability for an actor or an
//! actorSpace can change its visibility. Capabilities are unforgeable
//! unique keys that can only be created by calling the underlying system
//! with the primitive `new_capability()`. Capabilities can be stored,
//! compared, copied and, in some systems, communicated in messages."
//!
//! Unforgeability is enforced twice over:
//!
//! 1. **By type** — [`CapKey`] has no public constructor; the only way to
//!    obtain one is [`CapMinter::new_capability`] (the paper's
//!    `new_capability()` primitive). A [`Capability`] can be copied, stored
//!    and sent in messages, but its rights can only shrink
//!    ([`Capability::restrict`]), never grow.
//! 2. **By entropy** — keys are 128 random bits from a CSPRNG, so even code
//!    that bypasses the type system (e.g. a remote peer speaking the wire
//!    protocol) cannot guess a key.

#![deny(unsafe_code)]

pub mod key;
pub mod rights;
pub mod store;

pub use key::{CapKey, CapMinter, Capability};
pub use rights::Rights;
pub use store::{Guard, GuardError};
