//! Key minting — the paper's `new_capability()` primitive.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::rights::Rights;

/// An unforgeable 128-bit key. No public constructor: keys exist only
/// because a [`CapMinter`] minted them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CapKey(u128);

impl CapKey {
    pub(crate) fn from_raw(raw: u128) -> CapKey {
        CapKey(raw)
    }

    /// The raw key bits — for wire codecs moving capabilities between
    /// nodes of one trust domain (§5.4: capabilities may be "communicated
    /// in messages"). Possession of the bits *is* the capability: handle
    /// them like the capability itself. Unforgeability against outsiders
    /// rests on the 128 bits of CSPRNG entropy, not on type privacy.
    pub fn to_bits(self) -> u128 {
        self.0
    }

    /// Rebuilds a key from wire bits (the receiving side of
    /// [`CapKey::to_bits`]).
    pub fn from_bits(bits: u128) -> CapKey {
        CapKey(bits)
    }
}

impl fmt::Debug for CapKey {
    /// Deliberately redacts all but one byte — keys must not leak whole
    /// into logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CapKey(…{:02x})", (self.0 & 0xff) as u8)
    }
}

/// A capability: a key plus the rights this copy conveys.
///
/// Capabilities are `Copy` ("can be stored, compared, copied and …
/// communicated in messages", §5.4). [`Capability::restrict`] produces a
/// weaker copy; nothing produces a stronger one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Capability {
    key: CapKey,
    rights: Rights,
}

impl Capability {
    pub(crate) fn new(key: CapKey, rights: Rights) -> Capability {
        Capability { key, rights }
    }

    /// Reassembles a capability from wire parts (see [`CapKey::to_bits`]).
    pub fn from_parts(key: CapKey, rights: Rights) -> Capability {
        Capability { key, rights }
    }

    /// The key identity. Two capabilities with the same key authenticate
    /// against the same guards (possibly with different rights).
    pub fn key(&self) -> CapKey {
        self.key
    }

    /// The rights this copy conveys.
    pub fn rights(&self) -> Rights {
        self.rights
    }

    /// A copy conveying only `self.rights() ∩ keep` — attenuation for
    /// delegation. E.g. hand a client a visibility-only capability while
    /// the manager retains `Rights::ALL`.
    pub fn restrict(&self, keep: Rights) -> Capability {
        Capability {
            key: self.key,
            rights: self.rights.intersect(keep),
        }
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Capability({:?}, {:?})", self.key, self.rights)
    }
}

/// The mint. One per node in practice (the Coordinator owns it); the
/// paper's "underlying system" that `new_capability()` calls into.
#[derive(Debug, Default)]
pub struct CapMinter {
    _private: (),
}

impl CapMinter {
    /// Creates a mint.
    pub fn new() -> CapMinter {
        CapMinter { _private: () }
    }

    /// Mints a fresh, full-rights capability with 128 bits of OS-seeded
    /// CSPRNG entropy — the `new_capability()` primitive of §5.4.
    pub fn new_capability(&self) -> Capability {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        Capability::new(CapKey::from_raw(u128::from_le_bytes(bytes)), Rights::ALL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_keys_are_distinct() {
        let mint = CapMinter::new();
        let mut keys = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(keys.insert(mint.new_capability().key()), "key collision");
        }
    }

    #[test]
    fn minted_capability_has_all_rights() {
        let cap = CapMinter::new().new_capability();
        assert_eq!(cap.rights(), Rights::ALL);
    }

    #[test]
    fn restrict_only_shrinks() {
        let cap = CapMinter::new().new_capability();
        let weak = cap.restrict(Rights::VISIBILITY);
        assert_eq!(weak.rights(), Rights::VISIBILITY);
        assert_eq!(weak.key(), cap.key());
        // Restricting a weak capability with a broader mask does not grow it.
        let attempt = weak.restrict(Rights::ALL);
        assert_eq!(attempt.rights(), Rights::VISIBILITY);
    }

    #[test]
    fn restrict_to_none_is_useless_but_valid() {
        let cap = CapMinter::new().new_capability();
        let none = cap.restrict(Rights::NONE);
        assert!(none.rights().is_none());
        assert_eq!(none.key(), cap.key());
    }

    #[test]
    fn debug_redacts_key_material() {
        let cap = CapMinter::new().new_capability();
        let shown = format!("{:?}", cap.key());
        // "CapKey(…xx)" — 2 hex digits only.
        assert!(shown.len() < 16, "debug output leaks key material: {shown}");
    }

    #[test]
    fn copies_compare_equal() {
        let cap = CapMinter::new().new_capability();
        let copy = cap;
        assert_eq!(cap, copy);
    }
}
