//! Rights carried by a capability.

use std::fmt;
use std::ops::{BitAnd, BitOr};

use serde::{Deserialize, Serialize};

/// A small rights mask. The paper distinguishes ordinary clients/servers
/// from *managers*, which "have authorization to perform powerful
/// operations such as manipulating actorSpaces" (§2); the mask encodes
/// which operations a capability authorizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rights(u8);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// May make the target visible/invisible in actorSpaces (§5.4).
    pub const VISIBILITY: Rights = Rights(1 << 0);
    /// May change the target's registered attributes (`change_attributes`).
    pub const ATTRIBUTES: Rights = Rights(1 << 1);
    /// May manage the target actorSpace: set policies, destroy it (§2, §8).
    pub const MANAGE: Rights = Rights(1 << 2);
    /// All of the above — what `new_capability()` mints.
    pub const ALL: Rights = Rights(0b111);

    /// True if `self` includes every right in `needed`.
    pub fn covers(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// The intersection of two rights masks.
    pub fn intersect(self, other: Rights) -> Rights {
        Rights(self.0 & other.0)
    }

    /// The union of two rights masks.
    pub fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }

    /// True if no rights are present.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        self.union(rhs)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        self.intersect(rhs)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.covers(Rights::VISIBILITY) {
            parts.push("VISIBILITY");
        }
        if self.covers(Rights::ATTRIBUTES) {
            parts.push("ATTRIBUTES");
        }
        if self.covers(Rights::MANAGE) {
            parts.push("MANAGE");
        }
        if parts.is_empty() {
            parts.push("NONE");
        }
        write!(f, "Rights({})", parts.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_everything() {
        assert!(Rights::ALL.covers(Rights::VISIBILITY));
        assert!(Rights::ALL.covers(Rights::ATTRIBUTES));
        assert!(Rights::ALL.covers(Rights::MANAGE));
        assert!(Rights::ALL.covers(Rights::ALL));
        assert!(Rights::ALL.covers(Rights::NONE));
    }

    #[test]
    fn none_covers_only_none() {
        assert!(Rights::NONE.covers(Rights::NONE));
        assert!(!Rights::NONE.covers(Rights::VISIBILITY));
    }

    #[test]
    fn union_and_intersection() {
        let vm = Rights::VISIBILITY | Rights::MANAGE;
        assert!(vm.covers(Rights::VISIBILITY));
        assert!(vm.covers(Rights::MANAGE));
        assert!(!vm.covers(Rights::ATTRIBUTES));
        assert_eq!(vm & Rights::MANAGE, Rights::MANAGE);
        assert_eq!(vm & Rights::ATTRIBUTES, Rights::NONE);
        assert!((vm & Rights::ATTRIBUTES).is_none());
    }

    #[test]
    fn covers_is_subset_relation() {
        let a = Rights::VISIBILITY | Rights::ATTRIBUTES;
        assert!(a.covers(Rights::VISIBILITY));
        assert!(!Rights::VISIBILITY.covers(a));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Rights::NONE), "Rights(NONE)");
        assert_eq!(
            format!("{:?}", Rights::VISIBILITY | Rights::MANAGE),
            "Rights(VISIBILITY|MANAGE)"
        );
    }
}
