//! Interned atoms and attribute paths — the vocabulary of ActorSpace.
//!
//! The ActorSpace prototype (paper §7.1) represents an actor's *attributes*
//! as "concatenations of atoms", combined with a special `/` operator "much
//! as is the case with file names in a conventional file-system". Patterns
//! are regular expressions over those atoms.
//!
//! This crate provides the two foundational types:
//!
//! * [`Atom`] — a cheap, copyable handle to an interned string. Equality and
//!   hashing are O(1) integer operations, which is what makes NFA-based
//!   pattern matching over attribute paths fast.
//! * [`Path`] — a sequence of atoms (`srv/fib/fast`), the unit attributes
//!   are expressed in and patterns are matched against.
//!
//! Interning is global by default  (see [`atom()`](atom()) / [`Atom::intern`]) so that
//! atoms created anywhere in a process compare equal; a scoped
//! [`AtomTable`] is also available for tests that need isolation.

#![deny(unsafe_code)]

pub mod atom;
pub mod path;
pub mod table;

pub use atom::{atom, Atom};
pub use path::{path, Path};
pub use table::AtomTable;
