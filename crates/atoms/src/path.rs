//! [`Path`] — an attribute: a `/`-combined sequence of atoms.
//!
//! Paper §7.1: "attributes are concatenations of atoms … The attributes of
//! actorSpaces and actors may be combined to form a structured attribute
//! (with a special combination operator `/`), much as is the case with file
//! names in a conventional file-system."

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::atom::{atom, Atom};

/// An attribute path such as `srv/fib/fast`.
///
/// Paths are small vectors of [`Atom`]s. They are what actors register as
/// attributes when made visible in an actorSpace, and what patterns are
/// matched against.
///
/// ```
/// use actorspace_atoms::{path, Path};
/// let p = path("srv/fib/fast");
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.to_string(), "srv/fib/fast");
/// let q = p.join(&path("v2"));
/// assert_eq!(q.to_string(), "srv/fib/fast/v2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Path(Vec<Atom>);

impl Path {
    /// The empty path (zero atoms). Matches only the empty pattern.
    pub fn empty() -> Path {
        Path(Vec::new())
    }

    /// Builds a path from atoms.
    pub fn from_atoms(atoms: impl Into<Vec<Atom>>) -> Path {
        Path(atoms.into())
    }

    /// Parses `a/b/c` into a path. Empty segments are rejected except for
    /// the empty string, which parses to the empty path.
    pub fn parse(s: &str) -> Result<Path, PathError> {
        if s.is_empty() {
            return Ok(Path::empty());
        }
        let mut atoms = Vec::new();
        for seg in s.split('/') {
            if seg.is_empty() {
                return Err(PathError::EmptySegment(s.to_owned()));
            }
            atoms.push(atom(seg));
        }
        Ok(Path(atoms))
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-atom path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The atoms, in order.
    pub fn atoms(&self) -> &[Atom] {
        &self.0
    }

    /// Appends another path: `a/b` joined with `c` is `a/b/c` — the paper's
    /// `/` combination operator for structured attributes.
    pub fn join(&self, other: &Path) -> Path {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Path(v)
    }

    /// Appends a single atom.
    pub fn child(&self, a: Atom) -> Path {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(a);
        Path(v)
    }

    /// True if `prefix` is a (non-strict) prefix of `self`.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// Strips `prefix`, returning the remainder if `self` starts with it.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if self.starts_with(prefix) {
            Some(Path(self.0[prefix.0.len()..].to_vec()))
        } else {
            None
        }
    }

    /// Iterates over the atoms.
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.0.iter().copied()
    }
}

/// Shorthand for `Path::parse(s).unwrap()` — for literals in examples and
/// tests. Panics on malformed input.
pub fn path(s: &str) -> Path {
    Path::parse(s).expect("invalid path literal")
}

/// Errors from [`Path::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The input contained an empty `/`-segment, e.g. `a//b` or `/a`.
    EmptySegment(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::EmptySegment(s) => write!(f, "empty segment in path {s:?}"),
        }
    }
}

impl std::error::Error for PathError {}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            f.write_str(a.as_str())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

impl FromStr for Path {
    type Err = PathError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

impl From<Atom> for Path {
    fn from(a: Atom) -> Self {
        Path(vec![a])
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        path(s)
    }
}

impl Index<usize> for Path {
    type Output = Atom;
    fn index(&self, i: usize) -> &Atom {
        &self.0[i]
    }
}

impl FromIterator<Atom> for Path {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Path(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["a", "a/b", "srv/fib/fast", "x/y/z/w/v"] {
            assert_eq!(path(s).to_string(), s);
        }
    }

    #[test]
    fn empty_path_parses_and_prints_empty() {
        let p = Path::parse("").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn empty_segments_rejected() {
        for s in ["/a", "a/", "a//b", "/"] {
            assert!(Path::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn join_is_concatenation() {
        assert_eq!(path("a/b").join(&path("c/d")), path("a/b/c/d"));
        assert_eq!(path("a").join(&Path::empty()), path("a"));
        assert_eq!(Path::empty().join(&path("a")), path("a"));
    }

    #[test]
    fn child_appends_one_atom() {
        assert_eq!(path("a/b").child(atom("c")), path("a/b/c"));
    }

    #[test]
    fn prefix_relations() {
        let p = path("srv/fib/fast");
        assert!(p.starts_with(&path("srv")));
        assert!(p.starts_with(&path("srv/fib")));
        assert!(p.starts_with(&p));
        assert!(p.starts_with(&Path::empty()));
        assert!(!p.starts_with(&path("srv/fact")));
        assert_eq!(p.strip_prefix(&path("srv")), Some(path("fib/fast")));
        assert_eq!(p.strip_prefix(&path("nope")), None);
    }

    #[test]
    fn indexing_and_iteration() {
        let p = path("a/b/c");
        assert_eq!(p[1], atom("b"));
        let v: Vec<&str> = p.iter().map(|a| a.as_str()).collect();
        assert_eq!(v, ["a", "b", "c"]);
    }

    #[test]
    fn from_iterator_collects() {
        let p: Path = ["x", "y"].into_iter().map(atom).collect();
        assert_eq!(p, path("x/y"));
    }
}
