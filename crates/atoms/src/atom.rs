//! [`Atom`] — a handle to an interned string.

use std::fmt;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::table;

/// An interned string: the alphabet symbol of ActorSpace patterns.
///
/// Atoms are `Copy`, compare in O(1), and hash in O(1); the textual form is
/// recovered with [`Atom::as_str`]. Two atoms interned from equal strings
/// (in the same process) are equal.
///
/// ```
/// use actorspace_atoms::Atom;
/// let a = Atom::intern("server");
/// let b = Atom::intern("server");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "server");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// Interns `name` in the process-global table.
    pub fn intern(name: &str) -> Atom {
        Atom(table::global().intern(name))
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        table::global().resolve(self.0)
    }

    /// The dense interner id. Stable within a process run; do not persist.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Rebuilds an atom from an id previously returned by [`Atom::id`].
    ///
    /// Only valid for ids produced in this process; resolving a fabricated
    /// id panics.
    pub fn from_id(id: u32) -> Atom {
        Atom(id)
    }
}

/// Shorthand for [`Atom::intern`].
pub fn atom(name: &str) -> Atom {
    Atom::intern(name)
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atom({:?})", self.as_str())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::intern(s)
    }
}

impl Serialize for Atom {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Atom {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Atom::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_equal_atoms() {
        assert_eq!(atom("fib"), atom("fib"));
        assert_ne!(atom("fib"), atom("fact"));
    }

    #[test]
    fn round_trip_through_id() {
        let a = atom("round-trip");
        let b = Atom::from_id(a.id());
        assert_eq!(a, b);
        assert_eq!(b.as_str(), "round-trip");
    }

    #[test]
    fn display_and_debug() {
        let a = atom("printer");
        assert_eq!(a.to_string(), "printer");
        assert_eq!(format!("{a:?}"), "Atom(\"printer\")");
    }

    #[test]
    fn ordering_is_consistent() {
        // Ord is by interner id (first-use order), not lexicographic — but it
        // must at least be a total order consistent with Eq.
        let a = atom("ord-a");
        let b = atom("ord-b");
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn atoms_are_copy_and_hashable() {
        use std::collections::HashSet;
        let a = atom("hash-me");
        let b = a; // Copy
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn serde_round_trip() {
        // Serialize as the string, not the id, so atoms survive processes.
        let a = atom("persisted");
        let json = serde_json_like(&a);
        assert_eq!(json, "\"persisted\"");
    }

    /// Minimal serializer to avoid a serde_json dependency: Atom serializes
    /// via `serialize_str`, which we capture here.
    fn serde_json_like(a: &Atom) -> String {
        format!("{:?}", a.as_str())
    }
}
