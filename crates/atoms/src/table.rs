//! The string interner behind [`Atom`](crate::Atom).
//!
//! A classic two-way interner: a hash map from string to index plus a vector
//! of the interned strings. Interned strings are leaked (`Box::leak`) so
//! that resolution can hand out `&'static str` without a lock being held by
//! the caller; an interner's working set is bounded by the distinct atoms a
//! program ever uses, which is the standard trade-off symbol tables make.

use std::collections::HashMap;
use std::sync::OnceLock;

use actorspace_lockcheck::{LockClass, RwLock};

/// A table interning strings to dense `u32` ids.
///
/// Most users never touch this type directly and go through
/// [`Atom::intern`](crate::Atom::intern), which uses the process-global
/// table. A private table is useful for tests that want to observe ids from
/// a known-empty state.
#[derive(Debug)]
pub struct AtomTable {
    inner: RwLock<Inner>,
}

impl Default for AtomTable {
    fn default() -> Self {
        AtomTable {
            inner: RwLock::new(LockClass::Atoms, Inner::default()),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

impl AtomTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense id. Idempotent: the same string
    /// always maps to the same id within one table.
    pub fn intern(&self, name: &str) -> u32 {
        // Fast path: read lock only.
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        // Double-check under the write lock (another thread may have won).
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(inner.names.len()).expect("atom table overflow");
        inner.names.push(leaked);
        inner.by_name.insert(leaked, id);
        id
    }

    /// Resolves an id back to its string. Panics on an id not produced by
    /// this table — that would indicate an `Atom` crossing table boundaries.
    pub fn resolve(&self, id: u32) -> &'static str {
        self.inner.read().names[id as usize]
    }

    /// Returns the id for `name` without interning, if present.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Number of distinct atoms interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-global interner used by [`Atom::intern`](crate::Atom::intern).
pub(crate) fn global() -> &'static AtomTable {
    static GLOBAL: OnceLock<AtomTable> = OnceLock::new();
    GLOBAL.get_or_init(AtomTable::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = AtomTable::new();
        let a = t.intern("server");
        let b = t.intern("server");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let t = AtomTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let t = AtomTable::new();
        assert_eq!(t.get("missing"), None);
        assert!(t.is_empty());
        let id = t.intern("present");
        assert_eq!(t.get("present"), Some(id));
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_use() {
        let t = AtomTable::new();
        for i in 0..100 {
            assert_eq!(t.intern(&format!("atom-{i}")), i as u32);
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = std::sync::Arc::new(AtomTable::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|i| t.intern(&format!("k{}", i % 50)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "all threads must observe identical ids");
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn empty_string_is_a_valid_atom() {
        let t = AtomTable::new();
        let id = t.intern("");
        assert_eq!(t.resolve(id), "");
    }
}
