//! Seeded-contention coverage for the lock-timing export: two threads
//! fighting over one shard mutex (taken under the meta lock, per the
//! coordinator's two-level protocol, so the scenario is valid under
//! `--features lockcheck` too) must produce nonzero `lock.wait.shard`
//! samples in exported snapshots — and untouched classes must export
//! nothing.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use actorspace_lockcheck::{LockClass, Mutex, RwLock};
use actorspace_obs::{Obs, Snapshot};

#[test]
fn seeded_shard_contention_shows_in_lock_wait() {
    // A space id no real coordinator uses, so the contention seen on the
    // (class-aggregated) shard series is attributable to this test alone
    // when the binary runs in isolation.
    const SPACE: u64 = 900_001;
    static META: RwLock<()> = RwLock::new(LockClass::Meta, ());
    static SHARD: Mutex<()> = Mutex::new(LockClass::Shard(SPACE), ());

    let obs = Obs::default();
    let waits = |snap: &Snapshot| {
        snap.histogram("lock.wait.shard", 0)
            .map(|h| h.count)
            .unwrap_or(0)
    };
    let before = waits(&obs.snapshot());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        // One round of seeded contention: the holder grabs the shard,
        // signals, and dawdles; the contender then almost always finds
        // the shard taken and blocks. A lost race just costs a retry.
        let rendezvous = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _meta = META.read();
                let _shard = SHARD.lock();
                rendezvous.wait();
                std::thread::sleep(Duration::from_millis(2));
            });
            rendezvous.wait();
            let _meta = META.read();
            drop(SHARD.lock());
        });
        let snap = obs.snapshot();
        if waits(&snap) > before {
            let wait = snap.histogram("lock.wait.shard", 0).expect("wait exported");
            assert!(wait.sum > 0, "a blocked acquisition queued for >0ns");
            // Hold times ride along for the same class.
            let hold = snap.histogram("lock.hold.shard", 0).expect("hold exported");
            assert!(hold.count >= 2, "both fighters held the shard");
            // Classes this test never touched export no series at all.
            assert!(snap.histogram("lock.wait.baselines", 0).is_none());
            assert!(snap.histogram("lock.hold.baselines", 0).is_none());
            return;
        }
        assert!(Instant::now() < deadline, "no shard wait observed");
    }
}
