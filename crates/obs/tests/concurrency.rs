//! Snapshot consistency under concurrency: counters and histograms are
//! updated from many threads while a reader snapshots continuously. Every
//! snapshot must be internally sane (no torn reads — a counter is a single
//! atomic load) and totals must be monotone from one snapshot to the next.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use actorspace_obs::{MetricsRegistry, Snapshot};

const THREADS: usize = 8;
const PER_THREAD: u64 = 20_000;

#[test]
fn parallel_increments_yield_monotone_untorn_snapshots() {
    let reg = Arc::new(MetricsRegistry::new());
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                let c = reg.counter("test.ops", t as u16 % 4);
                let h = reg.histogram("test.latency_ns", t as u16 % 4);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i % 1024);
                }
            })
        })
        .collect();

    let reader = {
        let reg = reg.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut last_ops = 0u64;
            let mut last_hist = 0u64;
            let mut snaps = 0u64;
            while !done.load(Ordering::Acquire) {
                let s: Snapshot = reg.snapshot(0);
                let ops = s.counter_total("test.ops");
                let hist = s.histogram_total("test.latency_ns").count;
                assert!(ops >= last_ops, "counter total went backwards");
                assert!(hist >= last_hist, "histogram count went backwards");
                assert!(ops <= THREADS as u64 * PER_THREAD, "counter over-counted");
                last_ops = ops;
                last_hist = hist;
                snaps += 1;
            }
            snaps
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    let s = reg.snapshot(0);
    assert_eq!(s.counter_total("test.ops"), THREADS as u64 * PER_THREAD);
    assert_eq!(
        s.histogram_total("test.latency_ns").count,
        THREADS as u64 * PER_THREAD
    );
    // Per-node slices add up to the whole.
    let by_node: u64 = (0..4u16)
        .map(|n| s.counter("test.ops", n).unwrap_or(0))
        .sum();
    assert_eq!(by_node, THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_quantiles_are_ordered_after_concurrent_recording() {
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                let h = reg.histogram("test.h", 0);
                for i in 0..10_000u64 {
                    h.record(i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let h = reg.histogram("test.h", 0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 40_000);
    assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max);
}
