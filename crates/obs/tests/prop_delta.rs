//! Property tests for the snapshot delta codec and the `ClusterView`
//! aggregator: exact roundtrip over randomized registry histories, and
//! convergence plus counter monotonicity under out-of-order and
//! duplicated frame delivery.

use actorspace_obs::{ClusterView, MetricsRegistry, Snapshot};
use proptest::prelude::*;

const COUNTERS: [&str; 3] = ["c.alpha", "c.beta", "c.gamma"];

/// One randomized registry mutation.
#[derive(Debug, Clone)]
enum Op {
    Inc { k: usize, node: u16, n: u64 },
    Set { k: usize, v: i64 },
    Rec { k: usize, v: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0u16..2, 1u64..100).prop_map(|(k, node, n)| Op::Inc { k, node, n }),
        (0usize..3, -50i64..50).prop_map(|(k, v)| Op::Set { k, v }),
        (0usize..3, 0u64..10_000).prop_map(|(k, v)| Op::Rec { k, v }),
    ]
}

fn apply(r: &MetricsRegistry, op: &Op) {
    match *op {
        Op::Inc { k, node, n } => r.counter(COUNTERS[k], node).add(n),
        Op::Set { k, v } => r.gauge(&format!("g.{}", COUNTERS[k]), 0).set(v),
        Op::Rec { k, v } => r.histogram(&format!("h.{}", COUNTERS[k]), 0).record(v),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// For any mutation history: every adjacent delta roundtrips exactly,
    /// and a view fed the frames in a scrambled order with duplicates
    /// converges to the final snapshot with cluster counter totals
    /// monotone along the way.
    #[test]
    fn delta_roundtrip_and_view_convergence(
        batches in proptest::collection::vec(proptest::collection::vec(arb_op(), 0..8), 1..12),
        swaps in proptest::collection::vec((0usize..16, 0usize..16), 0..10),
        dups in proptest::collection::vec(0usize..16, 0..5),
    ) {
        let r = MetricsRegistry::new();
        let mut snaps = vec![Snapshot::default()];
        for (i, batch) in batches.iter().enumerate() {
            for op in batch {
                apply(&r, op);
            }
            snaps.push(r.snapshot((i as u64 + 1) * 10));
        }

        // Exact roundtrip per adjacent pair.
        let mut frames = Vec::new();
        for w in snaps.windows(2) {
            let d = w[1].delta_since(&w[0]);
            prop_assert_eq!(w[0].apply_delta(&d), w[1].clone());
            frames.push(d);
        }

        // Scramble delivery: random transpositions, then duplicates.
        let mut deliveries: Vec<usize> = (0..frames.len()).collect();
        for &(a, b) in &swaps {
            let (a, b) = (a % deliveries.len(), b % deliveries.len());
            deliveries.swap(a, b);
        }
        for &d in &dups {
            deliveries.push(d % frames.len());
        }

        let view = ClusterView::new();
        let mut last_totals: Option<Vec<u64>> = None;
        for &i in &deliveries {
            view.apply_frame(0, i as u64, frames[i].clone());
            let m = view.merged();
            let totals: Vec<u64> = COUNTERS.iter().map(|n| m.counter_total(n)).collect();
            if let Some(prev) = &last_totals {
                for (new, old) in totals.iter().zip(prev) {
                    prop_assert!(new >= old, "cluster totals went backwards");
                }
            }
            last_totals = Some(totals);
        }
        prop_assert_eq!(view.node_snapshot(0), Some(snaps.last().unwrap().clone()));
    }
}
