//! Message-lifecycle tracing: every (sampled) send/broadcast gets a
//! [`TraceId`] and emits ring-buffered [`TraceEvent`]s at each delivery
//! stage, with monotonic per-stage timestamps taken from a single shared
//! epoch so events from different nodes of one in-process cluster are
//! directly comparable.
//!
//! The ring is bounded: once `capacity` events are held, the oldest are
//! evicted (counted in [`Tracer::dropped`]). Unsampled messages carry
//! [`TraceId::NONE`] and every tracing call on them is a no-op.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use actorspace_lockcheck::{LockClass, Mutex};

/// Identifier correlating all lifecycle events of one send/broadcast.
/// `TraceId::NONE` (0) marks an unsampled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id: the message is not being traced.
    pub const NONE: TraceId = TraceId(0);

    /// True for [`TraceId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True for a real (sampled) trace id.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A lifecycle stage of a pattern-directed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The send/broadcast entered the registry.
    Submitted {
        /// True for broadcast, false for single-destination send.
        broadcast: bool,
    },
    /// Pattern resolution found candidates.
    Matched {
        /// Number of matching visible actors.
        candidates: u32,
    },
    /// The message was handed to the uplink toward a remote node.
    Routed {
        /// Destination node.
        node: u16,
    },
    /// No match; the message was parked pending a visibility change (§5.6).
    Suspended,
    /// A visibility change woke the suspended message for re-resolution.
    Woken,
    /// A node failure re-resolved the message away from its old home.
    FailedOver {
        /// Node the message was originally headed to (or held on).
        from: u16,
        /// Node that performed the re-resolution.
        to: u16,
    },
    /// The recipient processed the message. Emitted at processing time —
    /// not at mailbox accept — because an accepted-but-unprocessed message
    /// can still be harvested and failed over when its node crashes.
    Delivered,
    /// The message was dropped with no recipient.
    DeadLettered,
}

impl Stage {
    /// Canonical lowercase stage name (stable; used in exports).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Submitted { .. } => "submitted",
            Stage::Matched { .. } => "matched",
            Stage::Routed { .. } => "routed",
            Stage::Suspended => "suspended",
            Stage::Woken => "woken",
            Stage::FailedOver { .. } => "failed_over",
            Stage::Delivered => "delivered",
            Stage::DeadLettered => "dead_lettered",
        }
    }

    /// True for the two terminal stages (`delivered`, `dead_lettered`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Stage::Delivered | Stage::DeadLettered)
    }

    /// Parses the export form back into a stage (arguments included).
    /// Used by tests that reconstruct lifecycles from exports alone.
    pub fn parse(name: &str, args: &[(&str, u64)]) -> Option<Stage> {
        let arg = |k: &str| args.iter().find(|(n, _)| *n == k).map(|(_, v)| *v);
        Some(match name {
            "submitted" => Stage::Submitted {
                broadcast: arg("broadcast")? != 0,
            },
            "matched" => Stage::Matched {
                candidates: arg("candidates")? as u32,
            },
            "routed" => Stage::Routed {
                node: arg("target")? as u16,
            },
            "suspended" => Stage::Suspended,
            "woken" => Stage::Woken,
            "failed_over" => Stage::FailedOver {
                from: arg("from")? as u16,
                to: arg("to")? as u16,
            },
            "delivered" => Stage::Delivered,
            "dead_lettered" => Stage::DeadLettered,
            _ => return None,
        })
    }
}

/// One ring-buffered lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// Monotonic nanoseconds since the tracer's epoch.
    pub at_nanos: u64,
    /// Node that emitted the event.
    pub node: u16,
    /// The lifecycle stage.
    pub stage: Stage,
}

impl TraceEvent {
    /// One JSON object (no trailing newline), e.g.
    /// `{"trace":3,"at_nanos":120,"node":1,"stage":"routed","target":2}`.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"trace\":{},\"at_nanos\":{},\"node\":{},\"stage\":\"{}\"",
            self.trace.0,
            self.at_nanos,
            self.node,
            self.stage.name()
        );
        match self.stage {
            Stage::Submitted { broadcast } => {
                out.push_str(&format!(",\"broadcast\":{}", broadcast as u8));
            }
            Stage::Matched { candidates } => {
                out.push_str(&format!(",\"candidates\":{candidates}"));
            }
            Stage::Routed { node } => {
                out.push_str(&format!(",\"target\":{node}"));
            }
            Stage::FailedOver { from, to } => {
                out.push_str(&format!(",\"from\":{from},\"to\":{to}"));
            }
            Stage::Suspended | Stage::Woken | Stage::Delivered | Stage::DeadLettered => {}
        }
        out.push('}');
        out
    }

    /// Parses a line produced by [`TraceEvent::to_json_line`]. Only the
    /// export's own flat shape is understood — this is a test/offline
    /// convenience, not a general JSON parser.
    pub fn parse_json_line(line: &str) -> Option<TraceEvent> {
        let line = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut trace = None;
        let mut at = None;
        let mut node = None;
        let mut stage_name = None;
        let mut args: Vec<(String, u64)> = Vec::new();
        for field in line.split(',') {
            let (k, v) = field.split_once(':')?;
            let k = k.trim().trim_matches('"');
            let v = v.trim();
            match k {
                "trace" => trace = v.parse().ok().map(TraceId),
                "at_nanos" => at = v.parse().ok(),
                "node" => node = v.parse().ok(),
                "stage" => stage_name = Some(v.trim_matches('"').to_string()),
                other => {
                    if let Ok(n) = v.parse::<u64>() {
                        args.push((other.to_string(), n));
                    }
                }
            }
        }
        let borrowed: Vec<(&str, u64)> = args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        Some(TraceEvent {
            trace: trace?,
            at_nanos: at?,
            node: node?,
            stage: Stage::parse(&stage_name?, &borrowed)?,
        })
    }
}

/// Allocates trace ids (with sampling) and buffers lifecycle events.
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    sample_every: u64,
    tick: AtomicU64,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl Tracer {
    /// A tracer sampling one in `sample_every` sends (0 disables tracing
    /// entirely) into a ring of at most `capacity` events.
    pub fn new(sample_every: u64, capacity: usize) -> Tracer {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            sample_every,
            tick: AtomicU64::new(0),
            capacity,
            dropped: AtomicU64::new(0),
            ring: Mutex::new(LockClass::Trace, VecDeque::new()),
        }
    }

    /// Monotonic nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Starts a trace for a new send/broadcast, subject to sampling.
    /// Returns [`TraceId::NONE`] when this message is not sampled.
    #[inline]
    pub fn begin(&self) -> TraceId {
        if self.sample_every == 0 {
            return TraceId::NONE;
        }
        if self.sample_every > 1 {
            let t = self.tick.fetch_add(1, Ordering::Relaxed);
            if !t.is_multiple_of(self.sample_every) {
                return TraceId::NONE;
            }
        }
        TraceId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Appends one lifecycle event; no-op for [`TraceId::NONE`].
    pub fn record(&self, trace: TraceId, node: u16, stage: Stage) {
        if trace.is_none() || self.capacity == 0 {
            return;
        }
        let ev = TraceEvent {
            trace,
            at_nanos: self.now_nanos(),
            node,
            stage,
        };
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().copied().collect()
    }

    /// All buffered events of one trace, oldest first.
    pub fn events_for(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .iter()
            .filter(|e| e.trace == trace)
            .copied()
            .collect()
    }

    /// Ids of buffered traces that have reached a terminal stage.
    pub fn complete_traces(&self) -> Vec<TraceId> {
        let ring = self.ring.lock();
        let mut done: Vec<TraceId> = ring
            .iter()
            .filter(|e| e.stage.is_terminal())
            .map(|e| e.trace)
            .collect();
        done.sort_unstable();
        done.dedup();
        done
    }

    /// The whole ring as JSON lines (one event per line).
    pub fn export_json_lines(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::with_capacity(ring.len() * 80);
        for e in ring.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// The whole ring in Chrome `trace_event` format (load via
    /// `chrome://tracing` or Perfetto): instant events, `pid` = node,
    /// `tid` = trace id, `ts` in microseconds.
    pub fn export_chrome_trace(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::from("[");
        for (i, e) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                e.stage.name(),
                e.at_nanos / 1_000,
                e.node,
                e.trace.0,
                chrome_args(&e.stage),
            ));
        }
        out.push(']');
        out
    }
}

fn chrome_args(stage: &Stage) -> String {
    match stage {
        Stage::Submitted { broadcast } => format!("{{\"broadcast\":{broadcast}}}"),
        Stage::Matched { candidates } => format!("{{\"candidates\":{candidates}}}"),
        Stage::Routed { node } => format!("{{\"target\":{node}}}"),
        Stage::FailedOver { from, to } => format!("{{\"from\":{from},\"to\":{to}}}"),
        _ => "{}".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_id_is_noop() {
        let t = Tracer::new(1, 16);
        t.record(TraceId::NONE, 0, Stage::Delivered);
        assert!(t.is_empty());
        assert!(TraceId::NONE.is_none());
        assert!(TraceId(3).is_some());
    }

    #[test]
    fn sampling_rates() {
        let off = Tracer::new(0, 16);
        assert_eq!(off.begin(), TraceId::NONE);
        let all = Tracer::new(1, 16);
        assert!(all.begin().is_some());
        assert!(all.begin().is_some());
        let every4 = Tracer::new(4, 16);
        let sampled = (0..100).filter(|_| every4.begin().is_some()).count();
        assert_eq!(sampled, 25);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(1, 3);
        for _ in 0..5 {
            let id = t.begin();
            t.record(id, 0, Stage::Delivered);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let evs = t.events();
        assert_eq!(evs.first().unwrap().trace, TraceId(3));
    }

    #[test]
    fn events_query_and_completion() {
        let t = Tracer::new(1, 64);
        let a = t.begin();
        let b = t.begin();
        t.record(a, 0, Stage::Submitted { broadcast: false });
        t.record(b, 0, Stage::Submitted { broadcast: true });
        t.record(a, 1, Stage::Delivered);
        assert_eq!(t.events_for(a).len(), 2);
        assert_eq!(t.events_for(b).len(), 1);
        assert_eq!(t.complete_traces(), vec![a]);
        let evs = t.events_for(a);
        assert!(evs[0].at_nanos <= evs[1].at_nanos);
    }

    #[test]
    fn json_lines_roundtrip() {
        let t = Tracer::new(1, 64);
        let id = t.begin();
        t.record(id, 0, Stage::Submitted { broadcast: false });
        t.record(id, 0, Stage::Matched { candidates: 2 });
        t.record(id, 0, Stage::Routed { node: 3 });
        t.record(id, 3, Stage::FailedOver { from: 3, to: 1 });
        t.record(id, 1, Stage::Delivered);
        let export = t.export_json_lines();
        let parsed: Vec<TraceEvent> = export
            .lines()
            .map(|l| TraceEvent::parse_json_line(l).expect("parse"))
            .collect();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new(1, 8);
        let id = t.begin();
        t.record(id, 2, Stage::Matched { candidates: 1 });
        let json = t.export_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"matched\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"args\":{\"candidates\":1}"));
    }

    #[test]
    fn stage_names_and_terminality() {
        assert!(Stage::Delivered.is_terminal());
        assert!(Stage::DeadLettered.is_terminal());
        assert!(!Stage::Woken.is_terminal());
        assert_eq!(Stage::FailedOver { from: 1, to: 2 }.name(), "failed_over");
        assert_eq!(
            Stage::parse("failed_over", &[("from", 1), ("to", 2)]),
            Some(Stage::FailedOver { from: 1, to: 2 })
        );
        assert_eq!(Stage::parse("bogus", &[]), None);
    }
}
