//! Delta codec for [`Snapshot`]s: compact monotone diffs for streaming a
//! node's metrics over the wire.
//!
//! A full snapshot of a busy node repeats hundreds of series every tick,
//! almost all unchanged. [`Snapshot::delta_since`] emits only the series
//! that moved — counters and histogram count/sum as *increments*, gauges
//! and histogram quantiles as *last-write* — and [`Snapshot::apply_delta`]
//! replays a delta onto the receiver's copy. For snapshots taken from one
//! registry (counters monotone, per the `MetricsRegistry` contract) the
//! codec is exact:
//!
//! ```text
//! prev.apply_delta(&next.delta_since(&prev)) == next
//! ```
//!
//! Series never disappear from a registry, so deltas carry no removals; a
//! series a receiver has never seen arrives as its full current value
//! (an increment from zero). The dead-letter ring is last-write-wins: it
//! is included only on change, as the ring's full current contents.
//!
//! Deltas compose only in order — each one is relative to the previous
//! published snapshot. Transports deliver them in-order per node (the
//! [`ClusterView`](crate::cluster::ClusterView) aggregator additionally
//! reorders and dedups by sequence number, tolerating out-of-order and
//! duplicated delivery).

use std::collections::BTreeMap;

use crate::dead_letter::DeadLetter;
use crate::metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot};

/// The change to one metric series carried by a [`SnapshotDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaValue {
    /// Counter increase since the previous snapshot.
    CounterInc(u64),
    /// Gauge value (last-write-wins).
    GaugeSet(i64),
    /// Histogram change: count/sum as increments, quantile summaries as
    /// last-write (bucket detail is not on the wire).
    Histogram {
        /// Samples recorded since the previous snapshot.
        count_inc: u64,
        /// Sum recorded since the previous snapshot.
        sum_inc: u64,
        /// Current median (bucket upper bound).
        p50: u64,
        /// Current 90th percentile.
        p90: u64,
        /// Current 99th percentile.
        p99: u64,
        /// Current highest occupied bucket's upper bound.
        max: u64,
    },
}

/// One changed series in a [`SnapshotDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Metric name.
    pub name: String,
    /// Node label.
    pub node: u16,
    /// ActorSpace label for per-space series.
    pub space: Option<u64>,
    /// The change.
    pub change: DeltaValue,
}

/// The difference between two successive [`Snapshot`]s of one registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Timestamp of the snapshot this delta is relative to.
    pub from_nanos: u64,
    /// Timestamp of the snapshot this delta advances to.
    pub to_nanos: u64,
    /// Changed series only, ordered like snapshot entries.
    pub entries: Vec<DeltaEntry>,
    /// Full dead-letter ring contents, present only when they changed.
    pub dead_letters: Option<Vec<DeadLetter>>,
}

impl SnapshotDelta {
    /// True when nothing changed but the timestamp.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.dead_letters.is_none()
    }
}

type Key<'a> = (&'a str, u16, Option<u64>);

fn unchanged(prev: &MetricValue, next: &MetricValue) -> bool {
    prev == next
}

/// The wire change taking `prev` (a series absent from the previous
/// snapshot reads as zero) to `next`.
fn diff(prev: Option<&MetricValue>, next: &MetricValue) -> DeltaValue {
    match next {
        MetricValue::Counter(v) => {
            let base = match prev {
                Some(MetricValue::Counter(p)) => *p,
                _ => 0,
            };
            DeltaValue::CounterInc(v.saturating_sub(base))
        }
        MetricValue::Gauge(v) => DeltaValue::GaugeSet(*v),
        MetricValue::Histogram(h) => {
            let base = match prev {
                Some(MetricValue::Histogram(p)) => *p,
                _ => HistogramSnapshot::from_buckets(0, &[]),
            };
            DeltaValue::Histogram {
                count_inc: h.count.saturating_sub(base.count),
                sum_inc: h.sum.saturating_sub(base.sum),
                p50: h.p50,
                p90: h.p90,
                p99: h.p99,
                max: h.max,
            }
        }
    }
}

impl Snapshot {
    /// The compact difference taking `prev` to `self`. Exact as long as
    /// both snapshots came (in this order) from the same registry; see
    /// the module docs for the roundtrip guarantee.
    pub fn delta_since(&self, prev: &Snapshot) -> SnapshotDelta {
        let before: BTreeMap<Key<'_>, &MetricValue> = prev
            .entries
            .iter()
            .map(|e| ((e.name.as_str(), e.node, e.space), &e.value))
            .collect();
        let entries = self
            .entries
            .iter()
            .filter_map(|e| {
                let old = before.get(&(e.name.as_str(), e.node, e.space)).copied();
                // New series are always announced, even at zero, so the
                // receiver learns the full series set.
                if let Some(old) = old {
                    if unchanged(old, &e.value) {
                        return None;
                    }
                }
                Some(DeltaEntry {
                    name: e.name.clone(),
                    node: e.node,
                    space: e.space,
                    change: diff(old, &e.value),
                })
            })
            .collect();
        SnapshotDelta {
            from_nanos: prev.at_nanos,
            to_nanos: self.at_nanos,
            entries,
            dead_letters: (self.dead_letters != prev.dead_letters)
                .then(|| self.dead_letters.clone()),
        }
    }

    /// Replays `delta` onto `self`, returning the advanced snapshot.
    /// Unmentioned series carry over; mentioned-but-unknown series are
    /// created from zero.
    pub fn apply_delta(&self, delta: &SnapshotDelta) -> Snapshot {
        let mut merged: BTreeMap<(String, u16, Option<u64>), MetricValue> = self
            .entries
            .iter()
            .map(|e| ((e.name.clone(), e.node, e.space), e.value.clone()))
            .collect();
        for d in &delta.entries {
            let key = (d.name.clone(), d.node, d.space);
            let prior = merged.get(&key);
            let value = match d.change {
                DeltaValue::CounterInc(inc) => {
                    let base = match prior {
                        Some(MetricValue::Counter(p)) => *p,
                        _ => 0,
                    };
                    // Saturate rather than overflow: a delta applied to
                    // the wrong base (mis-sequenced or malformed input)
                    // should degrade, not panic, mirroring the
                    // saturating_sub on the encode side.
                    MetricValue::Counter(base.saturating_add(inc))
                }
                DeltaValue::GaugeSet(v) => MetricValue::Gauge(v),
                DeltaValue::Histogram {
                    count_inc,
                    sum_inc,
                    p50,
                    p90,
                    p99,
                    max,
                } => {
                    let base = match prior {
                        Some(MetricValue::Histogram(p)) => *p,
                        _ => HistogramSnapshot::from_buckets(0, &[]),
                    };
                    MetricValue::Histogram(HistogramSnapshot {
                        count: base.count.saturating_add(count_inc),
                        sum: base.sum.saturating_add(sum_inc),
                        p50,
                        p90,
                        p99,
                        max,
                    })
                }
            };
            merged.insert(key, value);
        }
        Snapshot {
            at_nanos: delta.to_nanos,
            // BTreeMap iteration restores the (name, node, space) order.
            entries: merged
                .into_iter()
                .map(|((name, node, space), value)| MetricSnapshot {
                    name,
                    node,
                    space,
                    value,
                })
                .collect(),
            dead_letters: delta
                .dead_letters
                .clone()
                .unwrap_or_else(|| self.dead_letters.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dead_letter::DeadLetterReason;
    use crate::trace::TraceId;
    use crate::MetricsRegistry;

    #[test]
    fn roundtrip_over_registry_snapshots() {
        let r = MetricsRegistry::new();
        r.counter("sends", 0).add(3);
        r.gauge("depth", 0).set(5);
        r.histogram("lat", 0).record(100);
        let a = r.snapshot(10);
        r.counter("sends", 0).add(4);
        r.counter("sends", 1).inc(); // new series
        r.gauge("depth", 0).set(-1);
        r.histogram("lat", 0).record(7);
        let b = r.snapshot(20);
        let d = b.delta_since(&a);
        assert_eq!(a.apply_delta(&d), b);
        // Only changed series ride the delta.
        assert!(d.entries.iter().all(|e| e.name != "unchanged"));
        assert_eq!(d.from_nanos, 10);
        assert_eq!(d.to_nanos, 20);
    }

    #[test]
    fn unchanged_series_are_omitted() {
        let r = MetricsRegistry::new();
        r.counter("idle", 0).add(2);
        r.counter("busy", 0).add(1);
        let a = r.snapshot(1);
        r.counter("busy", 0).add(1);
        let b = r.snapshot(2);
        let d = b.delta_since(&a);
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].name, "busy");
        assert_eq!(d.entries[0].change, DeltaValue::CounterInc(1));
        assert!(d.dead_letters.is_none());
    }

    #[test]
    fn empty_delta_only_advances_the_clock() {
        let r = MetricsRegistry::new();
        r.counter("x", 0).inc();
        let a = r.snapshot(1);
        let b = r.snapshot(9);
        let d = b.delta_since(&a);
        assert!(d.is_empty());
        let applied = a.apply_delta(&d);
        assert_eq!(applied.at_nanos, 9);
        assert_eq!(applied, b);
    }

    #[test]
    fn new_series_arrive_from_zero_at_receiver() {
        let r = MetricsRegistry::new();
        let a = r.snapshot(1);
        r.counter("late", 0).add(7);
        let b = r.snapshot(2);
        let d = b.delta_since(&a);
        // A receiver that never saw the series builds it from zero.
        let empty = Snapshot::default();
        let got = empty.apply_delta(&d);
        assert_eq!(got.counter("late", 0), Some(7));
    }

    #[test]
    fn dead_letters_are_last_write_wins() {
        let dl = DeadLetter {
            at_nanos: 5,
            node: 0,
            to: None,
            trace: TraceId::NONE,
            reason: DeadLetterReason::NoRecipient,
        };
        let a = Snapshot {
            at_nanos: 1,
            ..Snapshot::default()
        };
        let mut b = Snapshot {
            at_nanos: 2,
            ..Snapshot::default()
        };
        b.dead_letters.push(dl);
        let d = b.delta_since(&a);
        assert_eq!(d.dead_letters.as_deref(), Some(&[dl][..]));
        assert_eq!(a.apply_delta(&d), b);
        // No change ⇒ not re-sent.
        let c = Snapshot {
            at_nanos: 3,
            dead_letters: vec![dl],
            ..Snapshot::default()
        };
        assert!(c.delta_since(&b).dead_letters.is_none());
        assert_eq!(b.apply_delta(&c.delta_since(&b)), c);
    }
}
