//! A bounded ring of recent dead letters plus a cumulative total, so
//! "message silently vanished" always leaves a visible residue: the
//! counter survives restarts (it lives in the shared observer) and the
//! ring holds the last N drops with reason, destination, and trace id.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use actorspace_lockcheck::{LockClass, Mutex};

use crate::trace::TraceId;

/// Why a message was dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterReason {
    /// The destination actor no longer exists (or never did).
    NoRecipient,
    /// The destination actor had already stopped when the message arrived.
    StoppedActor,
    /// The destination's behavior panicked while the message was queued.
    BehaviorPanic,
    /// No match and the space policy discards unmatched sends.
    Discarded,
    /// A send failed with no match under an erroring policy.
    NoMatch,
    /// The owning node crashed and the message could not be failed over
    /// (e.g. an already-delivered broadcast copy).
    NodeCrash,
    /// The transport could not deliver and gave up.
    Undeliverable,
}

impl DeadLetterReason {
    /// Canonical lowercase name (stable; used in exports and tables).
    pub fn name(&self) -> &'static str {
        match self {
            DeadLetterReason::NoRecipient => "no_recipient",
            DeadLetterReason::StoppedActor => "stopped_actor",
            DeadLetterReason::BehaviorPanic => "behavior_panic",
            DeadLetterReason::Discarded => "discarded",
            DeadLetterReason::NoMatch => "no_match",
            DeadLetterReason::NodeCrash => "node_crash",
            DeadLetterReason::Undeliverable => "undeliverable",
        }
    }
}

/// One recorded dead letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLetter {
    /// Monotonic nanoseconds since the observer epoch.
    pub at_nanos: u64,
    /// Node that dropped the message.
    pub node: u16,
    /// Raw destination actor id, when one was known.
    pub to: Option<u64>,
    /// Trace of the dropped message ([`TraceId::NONE`] if unsampled).
    pub trace: TraceId,
    /// Why it was dropped.
    pub reason: DeadLetterReason,
}

/// Last-N dead letters plus a cumulative total.
pub struct DeadLetterRing {
    capacity: usize,
    total: AtomicU64,
    ring: Mutex<VecDeque<DeadLetter>>,
}

impl DeadLetterRing {
    /// A ring holding at most `capacity` recent dead letters.
    pub fn new(capacity: usize) -> DeadLetterRing {
        DeadLetterRing {
            capacity,
            total: AtomicU64::new(0),
            ring: Mutex::new(LockClass::DeadLetters, VecDeque::new()),
        }
    }

    /// Records one dead letter (always counts; the ring may evict).
    pub fn record(&self, dl: DeadLetter) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(dl);
    }

    /// Cumulative dead letters recorded since the observer was created
    /// (survives component restarts).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The last-N dead letters, oldest first.
    pub fn recent(&self) -> Vec<DeadLetter> {
        self.ring.lock().iter().copied().collect()
    }

    /// The last-N dead letters dropped by `node`, oldest first.
    pub fn recent_for_node(&self, node: u16) -> Vec<DeadLetter> {
        self.ring
            .lock()
            .iter()
            .filter(|d| d.node == node)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl(node: u16, reason: DeadLetterReason) -> DeadLetter {
        DeadLetter {
            at_nanos: 0,
            node,
            to: Some(7),
            trace: TraceId::NONE,
            reason,
        }
    }

    #[test]
    fn counts_and_bounds() {
        let ring = DeadLetterRing::new(2);
        for _ in 0..5 {
            ring.record(dl(0, DeadLetterReason::NoRecipient));
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.recent().len(), 2);
    }

    #[test]
    fn per_node_filter() {
        let ring = DeadLetterRing::new(8);
        ring.record(dl(0, DeadLetterReason::NodeCrash));
        ring.record(dl(1, DeadLetterReason::StoppedActor));
        ring.record(dl(0, DeadLetterReason::BehaviorPanic));
        assert_eq!(ring.recent_for_node(0).len(), 2);
        assert_eq!(ring.recent_for_node(1).len(), 1);
        assert_eq!(ring.recent_for_node(2).len(), 0);
        assert_eq!(DeadLetterReason::NodeCrash.name(), "node_crash");
    }

    #[test]
    fn zero_capacity_still_counts() {
        let ring = DeadLetterRing::new(0);
        ring.record(dl(0, DeadLetterReason::Discarded));
        assert_eq!(ring.total(), 1);
        assert!(ring.recent().is_empty());
    }
}
