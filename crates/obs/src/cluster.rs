//! Cluster-wide metric aggregation: [`ClusterView`] merges per-node
//! snapshot deltas (see [`crate::delta`]) into one observable whole.
//!
//! Each publishing node streams `(seq, delta)` frames about itself; a
//! view keeps one [`Snapshot`] replica per peer, advanced by applying
//! deltas **in sequence order**. Out-of-order frames are parked in a
//! per-peer reorder buffer and drained once the gap fills; duplicates
//! (seq below the watermark, or already parked) are dropped — the same
//! watermark-plus-buffer scheme the coordinator bus applier uses. Within
//! one peer the replica is therefore exactly the publisher's history
//! replayed, and counters read from a view are monotone per applied
//! frame.
//!
//! Peers fail: the failure detector calls [`ClusterView::mark_down`], and
//! readers see the peer flagged (its last replica is kept — totals don't
//! jump backwards when a node dies). A *fresh* frame arriving from a
//! down-marked peer flips it back to live and counts a rejoin (stale and
//! duplicated frames are dropped first and leave liveness untouched);
//! staleness is otherwise judged by frame age ([`PeerStatus::is_stale`]),
//! so a silently frozen publisher degrades to *stale* rather than
//! reporting forever-fresh numbers.
//!
//! Subscribers may join mid-stream: [`ClusterView::seed`] installs a
//! peer's cumulative snapshot at a given watermark so a late view
//! converges immediately instead of waiting forever for frames that were
//! published before it existed.

use std::collections::BTreeMap;
use std::time::Duration;

use actorspace_lockcheck::{LockClass, Mutex};

use crate::delta::SnapshotDelta;
use crate::metrics::{MetricValue, Snapshot};
use crate::names;

/// Per-peer replica state.
struct PeerView {
    /// Next expected frame sequence number (the watermark).
    next_seq: u64,
    /// Out-of-order frames parked until the gap fills.
    buffer: BTreeMap<u64, SnapshotDelta>,
    /// The peer's snapshot as of the last in-order frame.
    snap: Snapshot,
    /// Publisher timestamp of the freshest applied frame.
    last_frame_nanos: u64,
    /// Set by [`ClusterView::mark_down`], cleared by the next frame.
    down: bool,
    /// Down→live transitions observed.
    rejoins: u64,
    /// In-order frames applied.
    frames_applied: u64,
}

impl PeerView {
    fn new() -> PeerView {
        PeerView {
            next_seq: 0,
            buffer: BTreeMap::new(),
            snap: Snapshot::default(),
            last_frame_nanos: 0,
            down: false,
            rejoins: 0,
            frames_applied: 0,
        }
    }
}

/// Externally visible liveness/progress of one peer in a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's node id.
    pub node: u16,
    /// True after [`ClusterView::mark_down`], until the next frame.
    pub down: bool,
    /// Down→live transitions observed.
    pub rejoins: u64,
    /// In-order frames applied.
    pub frames_applied: u64,
    /// Publisher timestamp of the freshest applied frame.
    pub last_frame_nanos: u64,
    /// Next expected frame sequence number.
    pub next_seq: u64,
}

impl PeerStatus {
    /// A peer is stale when it is marked down or its last frame is older
    /// than `stale_after` (timestamps on the publishers' shared clock).
    pub fn is_stale(&self, now_nanos: u64, stale_after: Duration) -> bool {
        let age = now_nanos.saturating_sub(self.last_frame_nanos);
        self.down || age as u128 > stale_after.as_nanos()
    }
}

/// An aggregated, delta-fed view of every publishing node's metrics.
pub struct ClusterView {
    peers: Mutex<BTreeMap<u16, PeerView>>,
}

impl Default for ClusterView {
    fn default() -> Self {
        ClusterView::new()
    }
}

impl ClusterView {
    /// An empty view; peers appear as their first frame (or down-mark)
    /// arrives.
    pub fn new() -> ClusterView {
        ClusterView {
            peers: Mutex::new(LockClass::ObsView, BTreeMap::new()),
        }
    }

    /// Ingests one frame from `node`. Returns `true` if the frame was
    /// fresh (applied now or parked for reordering), `false` for a
    /// duplicate. Only a fresh frame from a down-marked peer revives it:
    /// stale or duplicated frames are dropped before liveness is touched.
    pub fn apply_frame(&self, node: u16, seq: u64, delta: SnapshotDelta) -> bool {
        let mut peers = self.peers.lock();
        let peer = peers.entry(node).or_insert_with(PeerView::new);
        if seq < peer.next_seq || peer.buffer.contains_key(&seq) {
            return false;
        }
        if peer.down {
            peer.down = false;
            peer.rejoins += 1;
        }
        peer.buffer.insert(seq, delta);
        while let Some(d) = peer.buffer.remove(&peer.next_seq) {
            peer.snap = peer.snap.apply_delta(&d);
            peer.last_frame_nanos = peer.last_frame_nanos.max(d.to_nanos);
            peer.next_seq += 1;
            peer.frames_applied += 1;
        }
        true
    }

    /// Installs a full replica for `node` as of `next_seq`: the peer's
    /// snapshot becomes `snap`, the watermark jumps to `next_seq`, and
    /// any parked frames the seed already covers are discarded (frames
    /// parked beyond the watermark drain immediately). This is how a
    /// late subscriber catches up without replaying frames `0..next_seq`
    /// — the publisher hands it the cumulative state directly.
    ///
    /// Seeding is idempotent and never rewinds: a seed at or below the
    /// current watermark is ignored. It also does not touch `down` or
    /// `rejoins` — seed data is read from publisher state, not evidence
    /// the publisher is alive. An installed seed counts as one applied
    /// frame so the peer shows up in [`ClusterView::nodes`].
    pub fn seed(&self, node: u16, next_seq: u64, snap: Snapshot) {
        let mut peers = self.peers.lock();
        let peer = peers.entry(node).or_insert_with(PeerView::new);
        if next_seq <= peer.next_seq {
            return;
        }
        peer.buffer = peer.buffer.split_off(&next_seq);
        peer.last_frame_nanos = peer.last_frame_nanos.max(snap.at_nanos);
        peer.snap = snap;
        peer.next_seq = next_seq;
        peer.frames_applied += 1;
        while let Some(d) = peer.buffer.remove(&peer.next_seq) {
            peer.snap = peer.snap.apply_delta(&d);
            peer.last_frame_nanos = peer.last_frame_nanos.max(d.to_nanos);
            peer.next_seq += 1;
            peer.frames_applied += 1;
        }
    }

    /// Flags `node` as down (failure-detector hook). The peer's replica
    /// is kept; the next frame revives it and counts a rejoin. Creates
    /// the peer entry if the view has never heard from it.
    pub fn mark_down(&self, node: u16) {
        let mut peers = self.peers.lock();
        peers.entry(node).or_insert_with(PeerView::new).down = true;
    }

    /// The current replica of `node`'s snapshot, if any frame applied.
    pub fn node_snapshot(&self, node: u16) -> Option<Snapshot> {
        let peers = self.peers.lock();
        peers
            .get(&node)
            .filter(|p| p.frames_applied > 0)
            .map(|p| p.snap.clone())
    }

    /// Nodes with at least one applied frame, ascending.
    pub fn nodes(&self) -> Vec<u16> {
        let peers = self.peers.lock();
        peers
            .iter()
            .filter(|(_, p)| p.frames_applied > 0)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Liveness/progress of every known peer, ascending by node.
    pub fn peers(&self) -> Vec<PeerStatus> {
        let peers = self.peers.lock();
        peers
            .iter()
            .map(|(&node, p)| PeerStatus {
                node,
                down: p.down,
                rejoins: p.rejoins,
                frames_applied: p.frames_applied,
                last_frame_nanos: p.last_frame_nanos,
                next_seq: p.next_seq,
            })
            .collect()
    }

    /// Liveness/progress of one peer.
    pub fn peer(&self, node: u16) -> Option<PeerStatus> {
        self.peers().into_iter().find(|p| p.node == node)
    }

    /// All peers' replicas merged into one snapshot: entries keep their
    /// `node` label (each publisher only reports its own rows, so keys
    /// never collide), ordered by `(name, node, space)`; cross-node sums
    /// come from the existing [`Snapshot::counter_total`]-style helpers.
    /// Dead letters are concatenated oldest-first. The timestamp is the
    /// freshest applied frame's.
    pub fn merged(&self) -> Snapshot {
        let peers = self.peers.lock();
        let mut out = Snapshot::default();
        for p in peers.values() {
            out.at_nanos = out.at_nanos.max(p.snap.at_nanos);
            out.entries.extend(p.snap.entries.iter().cloned());
            out.dead_letters.extend(p.snap.dead_letters.iter().copied());
        }
        drop(peers);
        out.entries
            .sort_by(|a, b| (&a.name, a.node, a.space).cmp(&(&b.name, b.node, b.space)));
        out.dead_letters.sort_by_key(|d| d.at_nanos);
        out
    }

    /// Renders a compact text dashboard of the merged view: one row per
    /// peer (state, frames, headline counters), cluster totals, and the
    /// busiest `lock.wait.*` classes. `now_nanos` and `stale_after` feed
    /// [`PeerStatus::is_stale`].
    pub fn render(&self, now_nanos: u64, stale_after: Duration) -> String {
        let merged = self.merged();
        let peers = self.peers();
        let mut out = String::new();
        out.push_str("node  state  frames  deliveries  forwarded  failovers  dead\n");
        for p in &peers {
            let snap = self.node_snapshot(p.node).unwrap_or_default();
            let state = if p.down {
                "DOWN"
            } else if p.is_stale(now_nanos, stale_after) {
                "stale"
            } else {
                "live"
            };
            out.push_str(&format!(
                "{:<5} {:<6} {:<7} {:<11} {:<10} {:<10} {}\n",
                p.node,
                state,
                p.frames_applied,
                snap.counter(names::RT_DELIVERIES, p.node).unwrap_or(0),
                snap.counter(names::NET_FORWARDED, p.node).unwrap_or(0),
                snap.counter(names::RT_FAILOVERS, p.node).unwrap_or(0),
                snap.dead_letters.len(),
            ));
        }
        out.push_str(&format!(
            "cluster: {} node(s), deliveries={} forwarded={} dead_letters={}\n",
            peers.iter().filter(|p| p.frames_applied > 0).count(),
            merged.counter_total(names::RT_DELIVERIES),
            merged.counter_total(names::NET_FORWARDED),
            merged.dead_letters.len(),
        ));
        let mut waits: Vec<(&str, u64, u64)> = merged
            .entries
            .iter()
            .filter(|e| e.name.starts_with(names::LOCK_WAIT_PREFIX))
            .filter_map(|e| match &e.value {
                MetricValue::Histogram(h) if h.count > 0 => Some((e.name.as_str(), h.count, h.p99)),
                _ => None,
            })
            .collect();
        waits.sort_by_key(|&(_, count, _)| std::cmp::Reverse(count));
        for (name, count, p99) in waits.into_iter().take(5) {
            out.push_str(&format!("{name}: count={count} p99={p99}ns\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn delta(r: &MetricsRegistry, prev: &Snapshot, at: u64) -> (SnapshotDelta, Snapshot) {
        let next = r.snapshot(at);
        (next.delta_since(prev), next)
    }

    #[test]
    fn in_order_frames_converge_to_publisher_snapshot() {
        let r = MetricsRegistry::new();
        let view = ClusterView::new();
        let mut prev = Snapshot::default();
        for i in 0..5u64 {
            r.counter("sends", 3).add(i + 1);
            let (d, next) = delta(&r, &prev, i + 1);
            assert!(view.apply_frame(3, i, d));
            prev = next;
        }
        assert_eq!(view.node_snapshot(3), Some(prev));
        assert_eq!(view.nodes(), vec![3]);
        assert_eq!(view.peer(3).unwrap().frames_applied, 5);
    }

    #[test]
    fn out_of_order_and_duplicate_frames_are_handled() {
        let r = MetricsRegistry::new();
        let view = ClusterView::new();
        let mut frames = Vec::new();
        let mut prev = Snapshot::default();
        for i in 0..4u64 {
            r.counter("x", 0).inc();
            let (d, next) = delta(&r, &prev, i + 1);
            frames.push(d);
            prev = next;
        }
        // Deliver 0, 2, 3, 1 with a duplicate of 2 sprinkled in.
        assert!(view.apply_frame(0, 0, frames[0].clone()));
        assert!(view.apply_frame(0, 2, frames[2].clone()));
        assert!(!view.apply_frame(0, 2, frames[2].clone()), "parked dup");
        assert!(view.apply_frame(0, 3, frames[3].clone()));
        assert_eq!(view.peer(0).unwrap().frames_applied, 1, "gap at 1 holds");
        assert!(view.apply_frame(0, 1, frames[1].clone()));
        assert!(!view.apply_frame(0, 1, frames[1].clone()), "applied dup");
        assert_eq!(view.peer(0).unwrap().frames_applied, 4);
        assert_eq!(view.node_snapshot(0), Some(prev));
    }

    #[test]
    fn down_mark_and_rejoin() {
        let view = ClusterView::new();
        view.mark_down(7);
        let p = view.peer(7).unwrap();
        assert!(p.down);
        assert!(p.is_stale(0, Duration::from_secs(1)));
        assert_eq!(view.nodes(), Vec::<u16>::new(), "no frame applied yet");
        assert!(view.apply_frame(7, 0, SnapshotDelta::default()));
        let p = view.peer(7).unwrap();
        assert!(!p.down);
        assert_eq!(p.rejoins, 1);
    }

    #[test]
    fn stale_and_duplicate_frames_do_not_revive_a_down_peer() {
        let view = ClusterView::new();
        assert!(view.apply_frame(4, 0, SnapshotDelta::default()));
        view.mark_down(4);
        // A duplicate of the already-applied frame is dropped before
        // liveness is touched: the peer stays down, no rejoin counted.
        assert!(!view.apply_frame(4, 0, SnapshotDelta::default()));
        let p = view.peer(4).unwrap();
        assert!(p.down, "stale frame must not revive");
        assert_eq!(p.rejoins, 0);
        // A fresh-but-parked frame does revive (fresh = applied or
        // parked) — but a duplicate of it does not.
        assert!(view.apply_frame(4, 5, SnapshotDelta::default()), "parked");
        assert_eq!(view.peer(4).unwrap().rejoins, 1, "parked fresh revives");
        view.mark_down(4);
        assert!(!view.apply_frame(4, 5, SnapshotDelta::default()));
        let p = view.peer(4).unwrap();
        assert!(p.down, "parked duplicate must not revive");
        assert_eq!(p.rejoins, 1);
        // A genuinely fresh in-order frame revives again.
        assert!(view.apply_frame(4, 1, SnapshotDelta::default()));
        let p = view.peer(4).unwrap();
        assert!(!p.down);
        assert_eq!(p.rejoins, 2);
    }

    #[test]
    fn seed_installs_cumulative_state_for_late_joiners() {
        let r = MetricsRegistry::new();
        let view = ClusterView::new();
        let mut prev = Snapshot::default();
        let mut frames = Vec::new();
        for i in 0..4u64 {
            r.counter("sends", 9).add(i + 1);
            let (d, next) = delta(&r, &prev, i + 1);
            frames.push(d);
            prev = next;
        }
        // Frames 0..3 were published before this view existed; frame 3
        // arrives first and parks. The seed (state through frame 2,
        // watermark 3) unblocks it.
        assert!(view.apply_frame(9, 3, frames[3].clone()));
        assert_eq!(view.nodes(), Vec::<u16>::new(), "gap at 0..3 holds");
        let through_2 = Snapshot::default()
            .apply_delta(&frames[0])
            .apply_delta(&frames[1])
            .apply_delta(&frames[2]);
        view.seed(9, 3, through_2);
        assert_eq!(
            view.node_snapshot(9),
            Some(prev.clone()),
            "seed + parked frame 3"
        );
        assert_eq!(view.peer(9).unwrap().next_seq, 4);
        // Frames the seed covers are dropped as stale afterwards…
        assert!(!view.apply_frame(9, 1, frames[1].clone()));
        // …and a rewinding or duplicate seed is ignored.
        view.seed(9, 2, Snapshot::default());
        assert_eq!(view.node_snapshot(9), Some(prev.clone()));
        // Seeding never revives: mark down, re-seed higher, still down.
        view.mark_down(9);
        let mut later = prev.clone();
        later.at_nanos += 1;
        view.seed(9, 10, later.clone());
        let p = view.peer(9).unwrap();
        assert!(p.down, "seed data is not liveness evidence");
        assert_eq!(p.rejoins, 0);
        assert_eq!(view.node_snapshot(9), Some(later));
    }

    #[test]
    fn seed_at_zero_is_a_no_op() {
        let view = ClusterView::new();
        view.seed(5, 0, Snapshot::default());
        assert_eq!(view.nodes(), Vec::<u16>::new());
        assert!(view.peer(5).is_none() || view.peer(5).unwrap().frames_applied == 0);
    }

    #[test]
    fn staleness_by_frame_age() {
        let view = ClusterView::new();
        let d = SnapshotDelta {
            to_nanos: 1_000,
            ..SnapshotDelta::default()
        };
        view.apply_frame(2, 0, d);
        let p = view.peer(2).unwrap();
        assert!(!p.is_stale(1_500, Duration::from_micros(1)));
        assert!(p.is_stale(5_000_000, Duration::from_micros(1)));
    }

    #[test]
    fn merged_concatenates_and_sums_across_peers() {
        let view = ClusterView::new();
        for node in [0u16, 1] {
            let r = MetricsRegistry::new();
            r.counter("runtime.deliveries", node).add(10 + node as u64);
            let snap = r.snapshot(node as u64 + 1);
            view.apply_frame(node, 0, snap.delta_since(&Snapshot::default()));
        }
        let m = view.merged();
        assert_eq!(m.counter_total("runtime.deliveries"), 21);
        assert_eq!(m.counter("runtime.deliveries", 0), Some(10));
        assert_eq!(m.counter("runtime.deliveries", 1), Some(11));
        assert_eq!(m.at_nanos, 2);
        let dash = view.render(2, Duration::from_secs(60));
        assert!(dash.contains("cluster: 2 node(s)"), "got: {dash}");
        assert!(dash.contains("deliveries=21"), "got: {dash}");
    }
}
