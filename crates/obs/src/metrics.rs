//! Lock-light metrics: counters, gauges, and log2-bucketed histograms,
//! owned by a [`MetricsRegistry`] keyed on `(name, node, space-label)`.
//! Most metrics are node-level (no space label); the sharded coordinator
//! additionally registers per-actorSpace series (e.g. `core.space.sends`)
//! labeled with the space's raw id.
//!
//! The registry mutex is touched only at handle-resolution time; hot paths
//! hold pre-resolved `Arc` handles and update them with relaxed atomics.
//! `snapshot()` reads every atom with a single load each, so totals are
//! never torn and are monotone across successive snapshots (counters and
//! histogram counts only ever increase).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use actorspace_lockcheck::{LockClass, Mutex};

use crate::dead_letter::DeadLetter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (unregistered; prefer
    /// [`MetricsRegistry::counter`] for anything that should be reported).
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i > 0` covers `[2^(i-1), 2^i)`,
/// bucket 0 covers exactly `0`, and the last bucket absorbs the tail.
pub const N_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// `q`-th sample (`0.0 ..= 1.0`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    /// A point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot::from_buckets(self.sum.load(Ordering::Relaxed), &counts)
    }
}

/// Point-in-time histogram summary; quantiles are log2-bucket upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Upper bound of the highest occupied bucket.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Summarizes raw log2-bucket counts (the [`Histogram`] layout, also
    /// used by `actorspace-lockcheck`'s timing tables) into quantile
    /// upper bounds.
    pub fn from_buckets(sum: u64, counts: &[u64]) -> HistogramSnapshot {
        let total: u64 = counts.iter().sum();
        let q = |frac: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((frac * total as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(N_BUCKETS - 1)
        };
        let max = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper)
            .unwrap_or(0);
        HistogramSnapshot {
            count: total,
            sum,
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            max,
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A metric series key: `(name, node, space label)` — `space` is `None`
/// for node-level series.
type SeriesKey = (String, u16, Option<u64>);

/// Registry of named, node-labeled (and optionally space-labeled) metrics.
/// Resolving the same `(name, node, space)` triple always returns the same
/// underlying atom, so metrics survive component restarts for as long as
/// the registry lives.
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<SeriesKey, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            inner: Mutex::new(LockClass::Metrics, BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn counter_entry(&self, name: &str, node: u16, space: Option<u64>) -> Arc<Counter> {
        let mut map = self.inner.lock();
        match map
            .entry((name.to_string(), node, space))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name}@{node} is a {}, not a counter", other.kind()),
        }
    }

    /// Resolves (creating on first use) the counter `name` for `node`.
    ///
    /// # Panics
    /// If `(name, node)` was previously registered as a different kind.
    pub fn counter(&self, name: &str, node: u16) -> Arc<Counter> {
        self.counter_entry(name, node, None)
    }

    /// Resolves (creating on first use) the counter `name` for `node`,
    /// labeled with the actorSpace `space` — one independent series per
    /// space, reported next to the node-level series in snapshots.
    ///
    /// # Panics
    /// If the triple was previously registered as a different kind.
    pub fn counter_for_space(&self, name: &str, node: u16, space: u64) -> Arc<Counter> {
        self.counter_entry(name, node, Some(space))
    }

    /// Resolves (creating on first use) the gauge `name` for `node`.
    ///
    /// # Panics
    /// If `(name, node)` was previously registered as a different kind.
    pub fn gauge(&self, name: &str, node: u16) -> Arc<Gauge> {
        let mut map = self.inner.lock();
        match map
            .entry((name.to_string(), node, None))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name}@{node} is a {}, not a gauge", other.kind()),
        }
    }

    /// Resolves (creating on first use) the histogram `name` for `node`.
    ///
    /// # Panics
    /// If `(name, node)` was previously registered as a different kind.
    pub fn histogram(&self, name: &str, node: u16) -> Arc<Histogram> {
        let mut map = self.inner.lock();
        match map
            .entry((name.to_string(), node, None))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!(
                "metric {name}@{node} is a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// A consistent point-in-time report of every registered metric.
    /// `at_nanos` stamps the snapshot (monotonic, caller-supplied).
    pub fn snapshot(&self, at_nanos: u64) -> Snapshot {
        let map = self.inner.lock();
        let entries = map
            .iter()
            .map(|((name, node, space), m)| MetricSnapshot {
                name: name.clone(),
                node: *node,
                space: *space,
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot {
            at_nanos,
            entries,
            dead_letters: Vec::new(),
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One `(name, node, space)` entry in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name (see [`crate::names`]).
    pub name: String,
    /// Node label (0 for single-node systems).
    pub node: u16,
    /// ActorSpace label for per-space series (raw space id); `None` for
    /// node-level metrics.
    pub space: Option<u64>,
    /// The value.
    pub value: MetricValue,
}

/// A serializable point-in-time report of all metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic timestamp (nanoseconds since the observer's epoch).
    pub at_nanos: u64,
    /// All metrics, ordered by `(name, node, space)`.
    pub entries: Vec<MetricSnapshot>,
    /// Recent dead letters (the ring's current contents, oldest first);
    /// filled in by `Obs::snapshot`, empty for a bare registry snapshot.
    pub dead_letters: Vec<DeadLetter>,
}

impl Snapshot {
    /// True when no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The node-level counter `name` for `node`, if registered (per-space
    /// series are excluded; see [`Snapshot::counter_for_space`]).
    pub fn counter(&self, name: &str, node: u16) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name == name && e.node == node && e.space.is_none() => {
                Some(*v)
            }
            _ => None,
        })
    }

    /// The space-labeled counter `name` for `node` and `space`, if
    /// registered.
    pub fn counter_for_space(&self, name: &str, node: u16, space: u64) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Counter(v)
                if e.name == name && e.node == node && e.space == Some(space) =>
            {
                Some(*v)
            }
            _ => None,
        })
    }

    /// Sum of the counter `name` across all nodes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The histogram `name` for `node`, if registered.
    pub fn histogram(&self, name: &str, node: u16) -> Option<HistogramSnapshot> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Histogram(h) if e.name == name && e.node == node => Some(*h),
            _ => None,
        })
    }

    /// Histogram summaries for `name` merged across nodes (count/sum added,
    /// quantiles taken as the max over nodes — an upper bound).
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: 0,
            sum: 0,
            p50: 0,
            p90: 0,
            p99: 0,
            max: 0,
        };
        for e in self.entries.iter().filter(|e| e.name == name) {
            if let MetricValue::Histogram(h) = &e.value {
                out.count += h.count;
                out.sum += h.sum;
                out.p50 = out.p50.max(h.p50);
                out.p90 = out.p90.max(h.p90);
                out.p99 = out.p99.max(h.p99);
                out.max = out.max.max(h.max);
            }
        }
        out
    }

    /// The subset of this snapshot labeled with `node`: metric entries
    /// and dead letters of other nodes are dropped, the timestamp kept.
    /// This is what a node publishes about itself on the wire — in a
    /// cluster sharing one registry, each node streams only its own rows.
    pub fn filter_node(&self, node: u16) -> Snapshot {
        Snapshot {
            at_nanos: self.at_nanos,
            entries: self
                .entries
                .iter()
                .filter(|e| e.node == node)
                .cloned()
                .collect(),
            dead_letters: self
                .dead_letters
                .iter()
                .filter(|d| d.node == node)
                .copied()
                .collect(),
        }
    }

    /// Renders the snapshot as a JSON object:
    /// `{"at_nanos":..,"metrics":[{"name":..,"node":..,"kind":..,...},..]}`.
    /// Space-labeled entries additionally carry `"space":<raw id>`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 64);
        out.push_str("{\"at_nanos\":");
        out.push_str(&self.at_nanos.to_string());
        out.push_str(",\"metrics\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            // Metric names are code-controlled identifiers; escape anyway.
            for ch in e.name.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\",\"node\":");
            out.push_str(&e.node.to_string());
            if let Some(space) = e.space {
                out.push_str(",\"space\":");
                out.push_str(&space.to_string());
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(",\"kind\":\"counter\",\"value\":");
                    out.push_str(&v.to_string());
                }
                MetricValue::Gauge(v) => {
                    out.push_str(",\"kind\":\"gauge\",\"value\":");
                    out.push_str(&v.to_string());
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                        h.count, h.sum, h.p50, h.p90, h.p99, h.max
                    ));
                }
            }
            out.push('}');
        }
        out.push(']');
        if !self.dead_letters.is_empty() {
            out.push_str(",\"dead_letters\":[");
            for (i, d) in self.dead_letters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at_nanos\":{},\"node\":{},\"to\":{},\"trace\":{},\"reason\":\"{}\"}}",
                    d.at_nanos,
                    d.node,
                    d.to.map_or("null".to_string(), |t| t.to_string()),
                    d.trace.0,
                    d.reason.name(),
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_010);
        // Median of 7 samples is the 4th (value 3) → bucket [2,4) → upper 3.
        assert_eq!(h.quantile(0.5), 3);
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert!(s.max >= 1_000_000);
        assert!(s.p99 >= s.p50);
        assert_eq!(s.mean(), 1_001_010 / 7);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn registry_resolves_same_atom() {
        let r = MetricsRegistry::new();
        let a = r.counter("x", 1);
        let b = r.counter("x", 1);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.counter("x", 2).get(), 0); // different node label
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x", 0);
        let _ = r.gauge("x", 0);
    }

    #[test]
    fn space_labeled_counters_are_independent_series() {
        let r = MetricsRegistry::new();
        r.counter("core.space.sends", 0).add(1);
        r.counter_for_space("core.space.sends", 0, 7).add(5);
        r.counter_for_space("core.space.sends", 0, 8).add(2);
        // Same triple resolves the same atom.
        r.counter_for_space("core.space.sends", 0, 7).add(1);
        let s = r.snapshot(1);
        assert_eq!(s.counter("core.space.sends", 0), Some(1));
        assert_eq!(s.counter_for_space("core.space.sends", 0, 7), Some(6));
        assert_eq!(s.counter_for_space("core.space.sends", 0, 8), Some(2));
        assert_eq!(s.counter_for_space("core.space.sends", 0, 9), None);
        let json = s.to_json();
        assert!(json.contains("\"node\":0,\"space\":7,\"kind\":\"counter\",\"value\":6"));
        // The node-level series has no space label.
        assert!(json.contains("\"node\":0,\"kind\":\"counter\",\"value\":1"));
    }

    #[test]
    fn snapshot_reports_and_serializes() {
        let r = MetricsRegistry::new();
        r.counter("sends", 0).add(3);
        r.gauge("depth", 1).set(-2);
        r.histogram("lat", 0).record(5);
        let s = r.snapshot(42);
        assert!(!s.is_empty());
        assert_eq!(s.counter("sends", 0), Some(3));
        assert_eq!(s.counter("sends", 1), None);
        assert_eq!(s.counter_total("sends"), 3);
        assert_eq!(s.histogram("lat", 0).unwrap().count, 1);
        let json = s.to_json();
        assert!(json.starts_with("{\"at_nanos\":42,\"metrics\":["));
        assert!(json.contains("\"kind\":\"gauge\",\"value\":-2"));
        assert!(json.contains("\"kind\":\"histogram\",\"count\":1"));
    }
}
