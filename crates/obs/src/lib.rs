//! Observability for the ActorSpace runtime: a unified, lock-light
//! [`MetricsRegistry`] (counters / gauges / log2 histograms, labeled by
//! node) and end-to-end message-lifecycle [tracing](crate::trace) with a
//! bounded event ring, plus a [dead-letter ring](crate::dead_letter).
//!
//! One [`Obs`] instance is shared by every layer of a node — or by every
//! node of an in-process cluster — so counters survive node restarts and
//! timestamps from different nodes share a single monotonic epoch. Hot
//! paths hold pre-resolved `Arc` handles; the registry mutex is only
//! touched when resolving names.

#![deny(unsafe_code)]

pub mod cluster;
pub mod dead_letter;
pub mod delta;
pub mod metrics;
pub mod trace;

use std::sync::Arc;

pub use cluster::{ClusterView, PeerStatus};
pub use dead_letter::{DeadLetter, DeadLetterReason, DeadLetterRing};
pub use delta::{DeltaEntry, DeltaValue, SnapshotDelta};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
    Snapshot,
};
pub use trace::{Stage, TraceEvent, TraceId, Tracer};

/// Canonical metric names registered by the in-tree layers, labeled by
/// node id (0 for standalone systems). See the README's Observability
/// section for the full table.
pub mod names {
    /// Pattern-directed sends submitted (counter).
    pub const CORE_SENDS: &str = "core.sends";
    /// Pattern-directed broadcasts submitted (counter).
    pub const CORE_BROADCASTS: &str = "core.broadcasts";
    /// Candidate deliveries produced by matching (counter; a broadcast to
    /// n actors counts n).
    pub const CORE_MATCHED: &str = "core.matched";
    /// Sends/broadcasts parked on no match, §5.6 (counter).
    pub const CORE_SUSPENDED: &str = "core.suspended";
    /// Suspended messages woken by a visibility change (counter).
    pub const CORE_WOKEN: &str = "core.woken";
    /// Unmatched sends dropped by a discarding policy (counter).
    pub const CORE_DISCARDED: &str = "core.discarded";
    /// Pattern-resolution latency of sampled sends, nanoseconds (histogram).
    pub const CORE_MATCH_NS: &str = "core.match_ns";
    /// Suspension dwell time of sampled sends, nanoseconds (histogram).
    pub const CORE_DWELL_NS: &str = "core.suspension_dwell_ns";
    /// Sends resolved against a space, labeled per space (counter; the
    /// scope space of the pattern, not the recipient's direct container).
    pub const CORE_SPACE_SENDS: &str = "core.space.sends";
    /// Broadcasts resolved against a space, labeled per space (counter).
    pub const CORE_SPACE_BROADCASTS: &str = "core.space.broadcasts";
    /// Literal-pattern resolutions answered with a non-empty result via
    /// the exact-prefix index, labeled per scope space (counter; E12).
    pub const CORE_INDEX_HITS: &str = "core.index.hits";
    /// Literal-pattern resolutions that consulted the exact-prefix index
    /// and found nothing, labeled per scope space (counter; E12).
    pub const CORE_INDEX_MISSES: &str = "core.index.misses";
    /// Messages dropped with no recipient (counter; cumulative across
    /// node restarts).
    pub const RT_DEAD_LETTERS: &str = "runtime.dead_letters";
    /// Failure suspicions observed by the local system (counter).
    pub const RT_SUSPICIONS: &str = "runtime.suspicions";
    /// Routed messages re-resolved after a node failure (counter).
    pub const RT_FAILOVERS: &str = "runtime.failovers";
    /// Remote visibility (re-)registrations applied (counter; includes
    /// bus replay after a restart).
    pub const RT_REREGISTRATIONS: &str = "runtime.re_registrations";
    /// Envelopes accepted into local mailboxes (counter).
    pub const RT_DELIVERIES: &str = "runtime.deliveries";
    /// Envelopes forwarded to remote nodes (counter).
    pub const NET_FORWARDED: &str = "net.forwarded";
    /// Inbound wire packets that failed to decode (counter).
    pub const NET_DECODE_FAILURES: &str = "net.decode_failures";
    /// Reliable-pipe retransmissions sent (counter).
    pub const NET_RETRANSMITS: &str = "net.retransmits";
    /// Heartbeats emitted by the node's failure detector (counter).
    pub const NET_HEARTBEATS: &str = "net.heartbeats";
    /// Times this node was restarted via `restart_node` (counter).
    pub const NET_RESTARTS: &str = "net.restarts";
    /// Crash-to-redelivery reroute latency, nanoseconds (histogram,
    /// labeled by the node that performed the re-resolution).
    pub const NET_FAILOVER_REROUTE_NS: &str = "net.failover_reroute_ns";
    /// Prefix of the lock-order gauges exported when the workspace is
    /// built with `--features lockcheck`: one `lockcheck.edge.<from>-><to>`
    /// gauge per observed lock-class pair, whose value is how many
    /// acquisitions exercised that order (node label 0 — the order graph
    /// is process-global).
    pub const LOCKCHECK_EDGE_PREFIX: &str = "lockcheck.edge.";
    /// Prefix of the per-lock-class wait-time histograms exported in every
    /// build: `lock.wait.<class>` counts acquisitions that blocked and how
    /// long they queued, nanoseconds (node label 0 — the timing tables are
    /// process-global).
    pub const LOCK_WAIT_PREFIX: &str = "lock.wait.";
    /// Prefix of the per-lock-class hold-time histograms: one
    /// `lock.hold.<class>` histogram of guard lifetimes, nanoseconds.
    pub const LOCK_HOLD_PREFIX: &str = "lock.hold.";
}

/// Tuning for one [`Obs`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace one in `sample_every` sends; `1` traces everything, `0`
    /// disables tracing (metrics stay on).
    pub sample_every: u64,
    /// Maximum buffered trace events before the oldest are evicted.
    pub ring_capacity: usize,
    /// Maximum dead letters kept in the last-N ring (the total counter is
    /// unbounded).
    pub dead_letter_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            sample_every: 64,
            ring_capacity: 65_536,
            dead_letter_capacity: 256,
        }
    }
}

impl ObsConfig {
    /// Trace every message (tests, examples, offline inspection).
    pub fn all() -> ObsConfig {
        ObsConfig {
            sample_every: 1,
            ..ObsConfig::default()
        }
    }

    /// Metrics only, no tracing (overhead baselines).
    pub fn off() -> ObsConfig {
        ObsConfig {
            sample_every: 0,
            ..ObsConfig::default()
        }
    }
}

/// The observability bundle shared across a node (or a whole in-process
/// cluster): metrics registry + tracer + dead-letter ring.
pub struct Obs {
    config: ObsConfig,
    /// Named, node-labeled metrics.
    pub metrics: MetricsRegistry,
    /// Message-lifecycle tracer.
    pub tracer: Tracer,
    /// Recent dead letters and their cumulative total.
    pub dead_letters: DeadLetterRing,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new(ObsConfig::default())
    }
}

impl Obs {
    /// A fresh observer with the given tuning.
    pub fn new(config: ObsConfig) -> Obs {
        Obs {
            config,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(config.sample_every, config.ring_capacity),
            dead_letters: DeadLetterRing::new(config.dead_letter_capacity),
        }
    }

    /// `Arc`-wrapped constructor, for sharing across layers and nodes.
    pub fn shared(config: ObsConfig) -> Arc<Obs> {
        Arc::new(Obs::new(config))
    }

    /// The tuning this observer was built with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Nanoseconds since this observer's epoch — the shared monotonic
    /// clock every `at_nanos` stamp in the system should come from.
    pub fn now_nanos(&self) -> u64 {
        self.tracer.now_nanos()
    }

    /// A point-in-time metrics report stamped with the tracer's clock,
    /// including the per-class `lock.wait.*`/`lock.hold.*` histograms
    /// and the dead-letter ring's recent contents.
    pub fn snapshot(&self) -> Snapshot {
        self.sync_lock_order();
        // Collect the timing tables before touching the (instrumented)
        // metrics mutex — same nesting discipline as `sync_lock_order`.
        let timing = actorspace_lockcheck::lock_timing();
        let mut snap = self.metrics.snapshot(self.now_nanos());
        for t in timing {
            for (prefix, data) in [
                (names::LOCK_WAIT_PREFIX, t.wait),
                (names::LOCK_HOLD_PREFIX, t.hold),
            ] {
                if data.count == 0 {
                    continue;
                }
                snap.entries.push(MetricSnapshot {
                    name: format!("{prefix}{}", t.class),
                    // The timing tables are process-global, like the
                    // order graph: node label 0 by convention.
                    node: 0,
                    space: None,
                    value: MetricValue::Histogram(HistogramSnapshot::from_buckets(
                        data.sum,
                        &data.buckets,
                    )),
                });
            }
        }
        snap.entries
            .sort_by(|a, b| (&a.name, a.node, a.space).cmp(&(&b.name, b.node, b.space)));
        snap.dead_letters = self.dead_letters.recent();
        snap
    }

    /// Folds lockcheck's observed lock-order graph into
    /// `lockcheck.edge.<from>-><to>` gauges (count of acquisitions that
    /// exercised each class-pair order), so snapshots show which lock
    /// orders a run actually took. A no-op — the branch constant-folds
    /// away — unless the workspace is built with `--features lockcheck`.
    fn sync_lock_order(&self) {
        if !actorspace_lockcheck::ENABLED {
            return;
        }
        // Collect first: `order_graph` takes lockcheck's internal graph
        // lock, and the gauge updates below take the (instrumented)
        // metrics mutex; the two must not nest.
        let edges = actorspace_lockcheck::order_graph();
        for e in edges {
            let name = format!("{}{}->{}", names::LOCKCHECK_EDGE_PREFIX, e.from, e.to);
            self.metrics
                .gauge(&name, 0)
                .set(i64::try_from(e.count).unwrap_or(i64::MAX));
        }
    }

    /// Records a dead letter: bumps the node's `runtime.dead_letters`
    /// counter, appends to the last-N ring, and terminates the trace.
    pub fn dead_letter(
        &self,
        node: u16,
        to: Option<u64>,
        trace: TraceId,
        reason: DeadLetterReason,
    ) {
        self.metrics.counter(names::RT_DEAD_LETTERS, node).inc();
        self.dead_letters.record(DeadLetter {
            at_nanos: self.tracer.now_nanos(),
            node,
            to,
            trace,
            reason,
        });
        self.tracer.record(trace, node, Stage::DeadLettered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundle_defaults() {
        let obs = Obs::default();
        assert_eq!(obs.config().sample_every, 64);
        // A fresh observer registers no metrics of its own; everything in
        // its snapshot comes from the process-global lock instrumentation
        // (`lock.wait.*` / `lock.hold.*` / `lockcheck.edge.*`).
        assert!(obs
            .snapshot()
            .entries
            .iter()
            .all(|e| e.name.starts_with("lock")));
    }

    /// `lock.hold.*` (and, under contention, `lock.wait.*`) histograms
    /// ride every snapshot — with the lockcheck feature both on and off.
    #[test]
    fn snapshot_exports_lock_timing() {
        use actorspace_lockcheck::{LockClass, Mutex};
        let m = Mutex::new(LockClass::Other("obs_ut_timing"), ());
        drop(m.lock());
        let obs = Obs::default();
        // The first snapshot itself locks the registry mutex; the second
        // therefore always sees a `lock.hold.metrics` sample.
        let _ = obs.snapshot();
        let snap = obs.snapshot();
        let hold = snap
            .histogram("lock.hold.obs_ut_timing", 0)
            .expect("hold histogram exported");
        assert!(hold.count >= 1);
        // The snapshot's own registry lock shows up too.
        assert!(snap.histogram("lock.hold.metrics", 0).is_some());
        let json = snap.to_json();
        assert!(json.contains("lock.hold.obs_ut_timing"));
    }

    #[test]
    fn dead_letter_helper_wires_all_three() {
        let obs = Obs::new(ObsConfig::all());
        let id = obs.tracer.begin();
        obs.dead_letter(2, Some(9), id, DeadLetterReason::StoppedActor);
        assert_eq!(obs.dead_letters.total(), 1);
        assert_eq!(obs.snapshot().counter(names::RT_DEAD_LETTERS, 2), Some(1));
        let evs = obs.tracer.events_for(id);
        assert_eq!(evs.len(), 1);
        assert!(evs[0].stage.is_terminal());
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn snapshot_exports_lock_order_edges() {
        use actorspace_lockcheck::{LockClass, Mutex};
        let outer = Mutex::new(LockClass::Other("obs_ut_outer"), ());
        let inner = Mutex::new(LockClass::Other("obs_ut_inner"), ());
        {
            let _a = outer.lock();
            let _b = inner.lock();
        }
        let snap = Obs::default().snapshot();
        let name = format!("{}obs_ut_outer->obs_ut_inner", names::LOCKCHECK_EDGE_PREFIX);
        let edge = snap
            .entries
            .iter()
            .find(|e| e.name == name)
            .expect("order edge exported as a gauge");
        assert!(matches!(edge.value, MetricValue::Gauge(n) if n >= 1));
    }

    #[test]
    fn config_presets() {
        assert_eq!(ObsConfig::all().sample_every, 1);
        assert_eq!(ObsConfig::off().sample_every, 0);
        let obs = Obs::new(ObsConfig::off());
        assert!(obs.tracer.begin().is_none());
    }
}
