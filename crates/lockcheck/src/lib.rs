//! Lockdep-style lock-order and protocol analysis for the workspace.
//!
//! The sharded coordinator (`actorspace-core::shard`) is deadlock-free by
//! *convention*: meta before shards, shards in ascending `SpaceId` order,
//! sinks and manager callbacks never re-entering the coordinator. Those
//! rules used to live only in doc comments. This crate checks them — and
//! the lock ordering of every other lock in the workspace — mechanically,
//! in the style of the Linux kernel's lockdep:
//!
//! - [`Mutex`], [`RwLock`], and [`Condvar`] are drop-in wrappers around the
//!   `parking_lot` types. Each lock is tagged with a [`LockClass`] at
//!   construction. With the `lockcheck` feature **off** (the default) the
//!   order checker adds nothing: every method is a direct delegation plus
//!   the (runtime-switchable) timing probe described below.
//! - With the feature **on**, every acquisition pushes onto a per-thread
//!   held-lock stack and folds an edge per held lock into a global
//!   class-level *lock-order graph*. Inserting an edge whose reverse path
//!   already exists reports a potential inversion — with both acquisition
//!   sites — even if no interleaving ever actually deadlocked.
//! - Protocol assertions specific to this codebase fire on the acquiring
//!   thread: a shard mutex requires the meta lock, shards must be taken in
//!   ascending `SpaceId` order, the meta lock may never follow a shard,
//!   and no lock may be re-acquired while already held by the same thread.
//! - [`enter_coordinator`] / [`enter_callback`] mark coordinator entry
//!   points and sink/manager callback regions; entering the coordinator
//!   from inside a callback is reported as a re-entrancy violation before
//!   any lock is touched (so the report is a panic, not a deadlock).
//!
//! Violations panic with a message naming both involved acquisition sites
//! (`file:line:col`, via [`core::panic::Location`]); the test suite run
//! under `--features lockcheck` in CI therefore fails loudly on any
//! potential inversion introduced anywhere in the workspace. The observed
//! order graph is exported by [`order_graph`] and surfaced through `obs`
//! snapshots as `lockcheck.edge.*` gauges.
//!
//! Same-class edges are deliberately *not* folded into the graph: many
//! shards (or mailboxes) are one class, and ordering within the class is
//! either enforced by a dedicated assertion (ascending `SpaceId` for
//! shards) or impossible to violate (mailbox locks are never nested).
//!
//! Orthogonal to the order checker, the wrappers also record **wait and
//! hold timing** per class in every build (see [`timing`]): acquisitions
//! that block contribute to a `lock.wait.<class>` histogram, guard
//! lifetimes to `lock.hold.<class>`. The order checker answers "can this
//! deadlock?"; the timing histograms answer "where do threads actually
//! queue?" — and the latter matters most in exactly the release builds
//! that compile the checker out. Timing can be switched off at runtime
//! with [`set_lock_timing`]; `actorspace-obs` exports the histograms in
//! snapshots.
//!
//! This is the only first-party crate that may name `parking_lot`
//! directly: the checker's own state uses raw, uninstrumented locks so
//! the analysis cannot recurse into itself. `scripts/lint.rs` enforces
//! that boundary across the rest of the workspace.

#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(feature = "lockcheck")]
use std::panic::Location;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use parking_lot::WaitTimeoutResult;

pub mod timing;

pub use timing::{
    lock_timing, lock_timing_enabled, set_lock_timing, LockTiming, TimingData, N_TIMING_BUCKETS,
};
use timing::{ClassTiming, HoldTimer};

/// True when the `lockcheck` feature is compiled in. Exported as a `const`
/// so consumers can write `if lockcheck::ENABLED { ... }` and have the
/// branch folded away entirely in normal builds.
pub const ENABLED: bool = cfg!(feature = "lockcheck");

/// The class a lock belongs to in the order graph. Classes — not lock
/// instances — are the nodes of the graph: every shard mutex is the same
/// `Shard(_)` class, every mailbox queue the same `Mailbox` class, so an
/// ordering observed between two *instances* constrains all of them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockClass {
    /// The coordinator's cross-space tables (level 1 of the two-level
    /// protocol: actor records, visibility edges, the shard map itself).
    Meta,
    /// A per-actorSpace shard mutex (level 2); the payload is the raw
    /// `SpaceId`. Only acquirable under [`LockClass::Meta`], in ascending
    /// id order.
    Shard(u64),
    /// The runtime's actor-cell table.
    Actors,
    /// An actor mailbox queue (behavior / RPC / invocation lanes).
    Mailbox,
    /// A single actor's behavior slot (held while the behavior runs).
    Behavior,
    /// Scheduler coordination: the idle / sleep bookkeeping workers block
    /// on.
    Scheduler,
    /// Coordinator-bus state: appliers, event logs, sequencer and token
    /// ring buffers.
    Bus,
    /// Cluster node slots, bounce queues, and service-thread handles.
    Cluster,
    /// Reliable-delivery channel state (send windows, dedup sets, stop
    /// flags).
    Reliable,
    /// Failure-detector heartbeat tables.
    Failure,
    /// Trace ring buffers.
    Trace,
    /// The metrics registry's series table.
    Metrics,
    /// The dead-letter ring.
    DeadLetters,
    /// Cluster-view peer tables (remote snapshot aggregation in `obs`).
    ObsView,
    /// The global atom interner.
    Atoms,
    /// Baseline implementations (tuple space, name server, process
    /// groups).
    Baselines,
    /// Anything else; the payload names the class (used by tests and
    /// benches — pick a distinct name per purpose so unrelated test locks
    /// do not alias into one class).
    Other(&'static str),
}

impl LockClass {
    /// Canonical node name in the order graph. `Shard(_)` collapses to
    /// `"shard"`: all shards are one node, and intra-class ordering is
    /// enforced by the ascending-`SpaceId` assertion instead.
    pub const fn name(self) -> &'static str {
        match self {
            LockClass::Meta => "meta",
            LockClass::Shard(_) => "shard",
            LockClass::Actors => "actors",
            LockClass::Mailbox => "mailbox",
            LockClass::Behavior => "behavior",
            LockClass::Scheduler => "scheduler",
            LockClass::Bus => "bus",
            LockClass::Cluster => "cluster",
            LockClass::Reliable => "reliable",
            LockClass::Failure => "failure",
            LockClass::Trace => "trace",
            LockClass::Metrics => "metrics",
            LockClass::DeadLetters => "dead_letters",
            LockClass::ObsView => "obs_view",
            LockClass::Atoms => "atoms",
            LockClass::Baselines => "baselines",
            LockClass::Other(name) => name,
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockClass::Shard(id) => write!(f, "Shard({id})"),
            other => f.write_str(other.name()),
        }
    }
}

/// One observed edge in the lock-order graph: while holding a lock of
/// class `from`, a lock of class `to` was acquired `count` times.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OrderEdge {
    /// Class held at the time of acquisition.
    pub from: &'static str,
    /// Class acquired.
    pub to: &'static str,
    /// How many acquisitions contributed this edge.
    pub count: u64,
}

/// Sentinel token id for a guard whose held-stack entry was released
/// around a condvar wait; dropping such a token is a no-op.
#[cfg(feature = "lockcheck")]
const SUSPENDED: u64 = u64::MAX;

/// Held-stack registration carried by every guard. Registered on
/// acquisition, deregistered on drop; zero-sized and inert when the
/// feature is off.
#[cfg(feature = "lockcheck")]
struct Token {
    class: LockClass,
    addr: usize,
    id: u64,
}

#[cfg(feature = "lockcheck")]
impl Token {
    #[track_caller]
    fn acquire(class: LockClass, addr: usize, mode: check::Mode, blocking: bool) -> Token {
        let id = check::on_acquire(class, addr, mode, Location::caller(), blocking);
        Token { class, addr, id }
    }

    /// Releases the held-stack entry without unlocking (condvar wait);
    /// the caller re-acquires a fresh token when the wait returns.
    fn suspend(&mut self) -> (LockClass, usize) {
        check::on_release(self.id);
        self.id = SUSPENDED;
        (self.class, self.addr)
    }
}

#[cfg(feature = "lockcheck")]
impl Drop for Token {
    fn drop(&mut self) {
        check::on_release(self.id);
    }
}

#[cfg(not(feature = "lockcheck"))]
struct Token;

/// A class-tagged mutex; drop-in for `parking_lot::Mutex` except that
/// construction names the [`LockClass`]. There is deliberately no
/// `Default` impl: every lock must say what it protects.
pub struct Mutex<T> {
    class: LockClass,
    /// Per-instance cache of the class's timing slot, resolved (one
    /// registry lookup) on the first timed acquisition.
    stats: OnceLock<&'static ClassTiming>,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex of the given class.
    pub const fn new(class: LockClass, value: T) -> Mutex<T> {
        Mutex {
            class,
            stats: OnceLock::new(),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    fn stats(&self) -> &'static ClassTiming {
        self.stats
            .get_or_init(|| timing::class_timing(self.class.name()))
    }

    /// Acquires the mutex, blocking until available. Under `lockcheck`
    /// the acquisition is checked *before* blocking, so an ordering
    /// violation panics instead of deadlocking. Acquisitions that block
    /// contribute to the class's `lock.wait` histogram.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Exclusive, true);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        let (hold, inner) = if timing::lock_timing_enabled() {
            let stats = self.stats();
            let inner = match self.inner.try_lock() {
                Some(g) => g,
                None => {
                    let queued = Instant::now();
                    let g = self.inner.lock();
                    stats.wait.record(timing::nanos(queued.elapsed()));
                    g
                }
            };
            (HoldTimer::running(stats), inner)
        } else {
            (HoldTimer::off(), self.inner.lock())
        };
        MutexGuard { token, hold, inner }
    }

    /// Attempts to acquire without blocking. A try-acquisition cannot
    /// deadlock, so it is exempt from ordering checks; on success it
    /// still joins the held stack (locks taken *after* it are ordered
    /// against it).
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Exclusive, false);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        Some(MutexGuard {
            token,
            hold: self.hold_timer(),
            inner,
        })
    }

    fn hold_timer(&self) -> HoldTimer {
        if timing::lock_timing_enabled() {
            HoldTimer::running(self.stats())
        } else {
            HoldTimer::off()
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[cfg(feature = "lockcheck")]
    fn addr(&self) -> usize {
        self as *const Mutex<T> as usize
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T> {
    token: Token,
    /// Records the hold duration when dropped; declared before `inner`
    /// so the sample is taken just before the lock is released.
    hold: HoldTimer,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Projects the guard to a component of the protected value
    /// (parking_lot-style: `MutexGuard::map(g, f)`). The held-stack
    /// registration and hold timer transfer to the mapped guard.
    pub fn map<U: ?Sized>(orig: Self, f: impl FnOnce(&mut T) -> &mut U) -> MappedMutexGuard<'a, U> {
        let MutexGuard { token, hold, inner } = orig;
        MappedMutexGuard {
            token,
            hold,
            inner: parking_lot::MutexGuard::map(inner, f),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// RAII guard for a component of a mutex-protected value, from
/// [`MutexGuard::map`].
pub struct MappedMutexGuard<'a, T: ?Sized> {
    /// Held only for its release-on-drop effect.
    #[allow(dead_code)]
    token: Token,
    /// Held only for its record-on-drop effect.
    #[allow(dead_code)]
    hold: HoldTimer,
    inner: parking_lot::MappedMutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MappedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MappedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A class-tagged reader-writer lock; drop-in for `parking_lot::RwLock`
/// except that construction names the [`LockClass`].
pub struct RwLock<T> {
    class: LockClass,
    /// Per-instance cache of the class's timing slot, resolved (one
    /// registry lookup) on the first timed acquisition.
    stats: OnceLock<&'static ClassTiming>,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock of the given class.
    pub const fn new(class: LockClass, value: T) -> RwLock<T> {
        RwLock {
            class,
            stats: OnceLock::new(),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    fn stats(&self) -> &'static ClassTiming {
        self.stats
            .get_or_init(|| timing::class_timing(self.class.name()))
    }

    fn hold_timer(&self) -> HoldTimer {
        if timing::lock_timing_enabled() {
            HoldTimer::running(self.stats())
        } else {
            HoldTimer::off()
        }
    }

    /// Acquires shared read access. Reads participate in ordering checks
    /// like exclusive acquisitions: a read acquired out of order still
    /// deadlocks once a writer queues between the holders.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Shared, true);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        let (hold, inner) = if timing::lock_timing_enabled() {
            let stats = self.stats();
            let inner = match self.inner.try_read() {
                Some(g) => g,
                None => {
                    let queued = Instant::now();
                    let g = self.inner.read();
                    stats.wait.record(timing::nanos(queued.elapsed()));
                    g
                }
            };
            (HoldTimer::running(stats), inner)
        } else {
            (HoldTimer::off(), self.inner.read())
        };
        RwLockReadGuard { token, hold, inner }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Exclusive, true);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        let (hold, inner) = if timing::lock_timing_enabled() {
            let stats = self.stats();
            let inner = match self.inner.try_write() {
                Some(g) => g,
                None => {
                    let queued = Instant::now();
                    let g = self.inner.write();
                    stats.wait.record(timing::nanos(queued.elapsed()));
                    g
                }
            };
            (HoldTimer::running(stats), inner)
        } else {
            (HoldTimer::off(), self.inner.write())
        };
        RwLockWriteGuard { token, hold, inner }
    }

    /// Attempts shared read access without blocking (exempt from
    /// ordering checks, like [`Mutex::try_lock`]).
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = self.inner.try_read()?;
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Shared, false);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        Some(RwLockReadGuard {
            token,
            hold: self.hold_timer(),
            inner,
        })
    }

    /// Attempts exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = self.inner.try_write()?;
        #[cfg(feature = "lockcheck")]
        let token = Token::acquire(self.class, self.addr(), check::Mode::Exclusive, false);
        #[cfg(not(feature = "lockcheck"))]
        let token = Token;
        Some(RwLockWriteGuard {
            token,
            hold: self.hold_timer(),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[cfg(feature = "lockcheck")]
    fn addr(&self) -> usize {
        self as *const RwLock<T> as usize
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    /// Held only for its release-on-drop effect.
    #[allow(dead_code)]
    token: Token,
    /// Held only for its record-on-drop effect.
    #[allow(dead_code)]
    hold: HoldTimer,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    /// Held only for its release-on-drop effect.
    #[allow(dead_code)]
    token: Token,
    /// Held only for its record-on-drop effect.
    #[allow(dead_code)]
    hold: HoldTimer,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable for use with [`MutexGuard`] in place
/// (parking_lot style). Waiting releases the guard's held-stack entry
/// for the duration of the wait and re-registers it — re-running the
/// ordering checks — when the lock is re-acquired.
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting. The
    /// guard's hold timer is paused for the wait: parked time is billed
    /// to neither `lock.hold` nor `lock.wait`.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lockcheck")]
        let (class, addr) = guard.token.suspend();
        let paused = guard.hold.pause();
        self.inner.wait(&mut guard.inner);
        guard.hold = HoldTimer::resume(paused);
        #[cfg(feature = "lockcheck")]
        {
            guard.token = Token::acquire(class, addr, check::Mode::Exclusive, true);
        }
    }

    /// Blocks until notified or `timeout` elapses.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lockcheck")]
        let (class, addr) = guard.token.suspend();
        let paused = guard.hold.pause();
        let result = self.inner.wait_for(&mut guard.inner, timeout);
        guard.hold = HoldTimer::resume(paused);
        #[cfg(feature = "lockcheck")]
        {
            guard.token = Token::acquire(class, addr, check::Mode::Exclusive, true);
        }
        result
    }

    /// Blocks until notified or `deadline` is reached.
    #[track_caller]
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lockcheck")]
        let (class, addr) = guard.token.suspend();
        let paused = guard.hold.pause();
        let result = self.inner.wait_until(&mut guard.inner, deadline);
        guard.hold = HoldTimer::resume(paused);
        #[cfg(feature = "lockcheck")]
        {
            guard.token = Token::acquire(class, addr, check::Mode::Exclusive, true);
        }
        result
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// RAII marker for a coordinator entry point; see [`enter_coordinator`].
#[cfg(feature = "lockcheck")]
pub struct CoordinatorSection {
    op: &'static str,
}

#[cfg(feature = "lockcheck")]
impl Drop for CoordinatorSection {
    fn drop(&mut self) {
        check::exit_coordinator(self.op);
    }
}

/// RAII marker for a coordinator entry point; see [`enter_coordinator`].
#[cfg(not(feature = "lockcheck"))]
pub struct CoordinatorSection {}

/// Marks the current thread as executing a coordinator operation until
/// the returned section is dropped. If the thread is inside a
/// sink/manager callback region ([`enter_callback`]), the re-entrancy is
/// reported *before any lock is acquired* — a panic naming both entry
/// sites rather than a silent deadlock on the coordinator's own locks.
/// At the outermost section exit, the thread must hold no coordinator
/// (meta/shard) locks.
#[cfg(feature = "lockcheck")]
#[track_caller]
pub fn enter_coordinator(op: &'static str) -> CoordinatorSection {
    check::enter_coordinator(op, Location::caller());
    CoordinatorSection { op }
}

/// No-op twin of [`enter_coordinator`] for unchecked builds.
#[cfg(not(feature = "lockcheck"))]
#[inline(always)]
pub fn enter_coordinator(_op: &'static str) -> CoordinatorSection {
    CoordinatorSection {}
}

/// RAII marker for a sink/manager callback region; see
/// [`enter_callback`].
#[cfg(feature = "lockcheck")]
pub struct CallbackSection {
    _priv: (),
}

#[cfg(feature = "lockcheck")]
impl Drop for CallbackSection {
    fn drop(&mut self) {
        check::exit_callback();
    }
}

/// RAII marker for a sink/manager callback region; see
/// [`enter_callback`].
#[cfg(not(feature = "lockcheck"))]
pub struct CallbackSection {}

/// Marks the current thread as executing externally supplied code on
/// behalf of the coordinator (a delivery sink or a space-manager
/// callback) until the returned section is dropped. Coordinator entry
/// from inside such a region is a protocol violation.
#[cfg(feature = "lockcheck")]
#[track_caller]
pub fn enter_callback(label: &'static str) -> CallbackSection {
    check::enter_callback(label, Location::caller());
    CallbackSection { _priv: () }
}

/// No-op twin of [`enter_callback`] for unchecked builds.
#[cfg(not(feature = "lockcheck"))]
#[inline(always)]
pub fn enter_callback(_label: &'static str) -> CallbackSection {
    CallbackSection {}
}

/// Snapshot of the global lock-order graph observed so far, sorted by
/// `(from, to)`. Empty when the feature is off.
#[cfg(feature = "lockcheck")]
pub fn order_graph() -> Vec<OrderEdge> {
    check::snapshot()
}

/// No-op twin of [`order_graph`] for unchecked builds.
#[cfg(not(feature = "lockcheck"))]
pub fn order_graph() -> Vec<OrderEdge> {
    Vec::new()
}

/// Every violation message reported so far in this process (each one
/// also panicked at its detection site). Mostly useful to tests that
/// catch the panic and want the full report text. Empty when the
/// feature is off.
#[cfg(feature = "lockcheck")]
pub fn violations() -> Vec<String> {
    check::violations_snapshot()
}

/// No-op twin of [`violations`] for unchecked builds.
#[cfg(not(feature = "lockcheck"))]
pub fn violations() -> Vec<String> {
    Vec::new()
}

#[cfg(feature = "lockcheck")]
mod check {
    use super::LockClass;
    use std::cell::{Cell, RefCell};
    use std::collections::{BTreeMap, BTreeSet};
    use std::panic::Location;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub(crate) enum Mode {
        Shared,
        Exclusive,
    }

    impl Mode {
        fn word(self) -> &'static str {
            match self {
                Mode::Shared => "shared",
                Mode::Exclusive => "exclusive",
            }
        }
    }

    type Site = &'static Location<'static>;

    #[derive(Clone, Copy)]
    struct Held {
        class: LockClass,
        addr: usize,
        mode: Mode,
        site: Site,
        id: u64,
    }

    struct Callback {
        label: &'static str,
        site: Site,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
        static COORD_DEPTH: Cell<u32> = const { Cell::new(0) };
        static CALLBACKS: RefCell<Vec<Callback>> = const { RefCell::new(Vec::new()) };
    }

    struct Edge {
        count: u64,
        /// Site of the *held* acquisition the first time the edge was seen.
        hold_site: Site,
        /// Site of the *new* acquisition the first time the edge was seen.
        acq_site: Site,
    }

    // The checker's own state uses raw parking_lot locks: instrumenting
    // them would recurse into the checker. The stub's poison recovery
    // keeps the graph usable after a violation panic unwinds through it.
    static GRAPH: parking_lot::Mutex<BTreeMap<&'static str, BTreeMap<&'static str, Edge>>> =
        parking_lot::Mutex::new(BTreeMap::new());
    static VIOLATIONS: parking_lot::Mutex<Vec<String>> = parking_lot::Mutex::new(Vec::new());

    /// Records the report and panics at the offending acquisition.
    fn die(msg: String) -> ! {
        VIOLATIONS.lock().push(msg.clone());
        panic!("{msg}");
    }

    /// Registers an acquisition: same-instance relock detection, the
    /// coordinator's two-level protocol assertions, and the order-graph
    /// fold (all only for `blocking` acquisitions — a try-acquisition
    /// cannot deadlock), then pushes onto the held stack. Returns the
    /// registration id the guard's token releases on drop.
    pub(crate) fn on_acquire(
        class: LockClass,
        addr: usize,
        mode: Mode,
        site: Site,
        blocking: bool,
    ) -> u64 {
        let verdict = HELD.try_with(|held| {
            let held = held.borrow();
            if let Some(h) = held.iter().find(|h| h.addr == addr) {
                die(format!(
                    "lockcheck: recursive acquisition of {class}: already held ({}) since {}, \
                     re-acquired ({}) at {site}; a second acquisition on the same thread \
                     self-deadlocks or races a queued writer",
                    h.mode.word(),
                    h.site,
                    mode.word(),
                ));
            }
            if blocking {
                match class {
                    LockClass::Meta => {
                        if let Some(h) =
                            held.iter().find(|h| matches!(h.class, LockClass::Shard(_)))
                        {
                            die(format!(
                                "lockcheck: two-level protocol violation: acquiring meta at \
                                 {site} while holding {} acquired at {}; meta (level 1) must \
                                 never be taken after a shard (level 2)",
                                h.class, h.site,
                            ));
                        }
                    }
                    LockClass::Shard(id) => {
                        if !held.iter().any(|h| h.class == LockClass::Meta) {
                            die(format!(
                                "lockcheck: shard-without-meta violation: acquiring Shard({id}) \
                                 at {site} with no meta lock held; shard mutexes may only be \
                                 taken under the meta lock",
                            ));
                        }
                        if let Some(h) = held
                            .iter()
                            .find(|h| matches!(h.class, LockClass::Shard(j) if j >= id))
                        {
                            die(format!(
                                "lockcheck: shard-order violation: acquiring Shard({id}) at \
                                 {site} while holding {} acquired at {}; shards must be locked \
                                 in ascending SpaceId order",
                                h.class, h.site,
                            ));
                        }
                    }
                    _ => {}
                }
                record_edges(&held, class, site);
            }
        });
        if verdict.is_err() {
            // Thread-local storage already torn down (guard acquired from
            // a TLS destructor): nothing to check against, nothing to
            // release later.
            return super::SUSPENDED;
        }
        let id = NEXT_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        HELD.with(|held| {
            held.borrow_mut().push(Held {
                class,
                addr,
                mode,
                site,
                id,
            });
        });
        id
    }

    /// Removes the held-stack entry registered under `id`. Guards are
    /// not required to drop in LIFO order (the coordinator's guard map
    /// drops in key order), so this searches rather than pops.
    pub(crate) fn on_release(id: u64) {
        if id == super::SUSPENDED {
            return;
        }
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                held.remove(pos);
            }
        });
    }

    /// Folds one edge per held lock into the global graph, reporting an
    /// inversion if the reverse path is already on record. The violating
    /// edge is *not* inserted: the graph stays acyclic, so one seeded
    /// violation (a negative test) cannot poison checking for the rest
    /// of the process.
    fn record_edges(held: &[Held], class: LockClass, site: Site) {
        let to = class.name();
        let mut graph = GRAPH.lock();
        for h in held {
            let from = h.class.name();
            if from == to {
                continue;
            }
            if let Some(edge) = graph.get_mut(from).and_then(|m| m.get_mut(to)) {
                edge.count += 1;
                continue;
            }
            if let Some(path) = find_path(&graph, to, from) {
                let first = graph
                    .get(path[0])
                    .and_then(|m| m.get(path[1]))
                    .expect("path edges exist");
                die(format!(
                    "lockcheck: lock-order inversion: acquiring {class} at {site} while \
                     holding {} acquired at {} would establish `{from} -> {to}`, but the \
                     opposite order `{}` is already on record (first observed holding \
                     `{}` at {} then acquiring `{}` at {})",
                    h.class,
                    h.site,
                    path.join(" -> "),
                    path[0],
                    first.hold_site,
                    path[1],
                    first.acq_site,
                ));
            }
            graph.entry(from).or_default().insert(
                to,
                Edge {
                    count: 1,
                    hold_site: h.site,
                    acq_site: site,
                },
            );
        }
    }

    /// Depth-first path search `from ->* to`; returns the node chain
    /// (inclusive) if one exists. The graph holds lock *classes* — a few
    /// dozen nodes at most — so recursion depth is bounded and small.
    fn find_path(
        graph: &BTreeMap<&'static str, BTreeMap<&'static str, Edge>>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        fn dfs(
            graph: &BTreeMap<&'static str, BTreeMap<&'static str, Edge>>,
            cur: &'static str,
            to: &'static str,
            seen: &mut BTreeSet<&'static str>,
            path: &mut Vec<&'static str>,
        ) -> bool {
            path.push(cur);
            if cur == to {
                return true;
            }
            if let Some(succ) = graph.get(cur) {
                for &next in succ.keys() {
                    if seen.insert(next) && dfs(graph, next, to, seen, path) {
                        return true;
                    }
                }
            }
            path.pop();
            false
        }
        let mut seen = BTreeSet::from([from]);
        let mut path = Vec::new();
        if dfs(graph, from, to, &mut seen, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    pub(crate) fn enter_coordinator(op: &'static str, site: Site) {
        CALLBACKS.with(|cbs| {
            let cbs = cbs.borrow();
            if let Some(cb) = cbs.last() {
                die(format!(
                    "lockcheck: re-entrancy violation: coordinator op `{op}` entered at {site} \
                     from inside callback `{}` entered at {}; sinks and manager callbacks must \
                     not re-enter the coordinator",
                    cb.label, cb.site,
                ));
            }
        });
        COORD_DEPTH.with(|d| d.set(d.get() + 1));
    }

    pub(crate) fn exit_coordinator(op: &'static str) {
        let depth = COORD_DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        if depth == 0 && !std::thread::panicking() {
            HELD.with(|held| {
                if let Some(h) = held
                    .borrow()
                    .iter()
                    .find(|h| matches!(h.class, LockClass::Meta | LockClass::Shard(_)))
                {
                    die(format!(
                        "lockcheck: coordinator op `{op}` returned while still holding {} \
                         acquired at {}",
                        h.class, h.site,
                    ));
                }
            });
        }
    }

    pub(crate) fn enter_callback(label: &'static str, site: Site) {
        CALLBACKS.with(|cbs| cbs.borrow_mut().push(Callback { label, site }));
    }

    pub(crate) fn exit_callback() {
        let _ = CALLBACKS.try_with(|cbs| cbs.borrow_mut().pop());
    }

    pub(crate) fn snapshot() -> Vec<super::OrderEdge> {
        let graph = GRAPH.lock();
        let mut out = Vec::new();
        for (&from, succ) in graph.iter() {
            for (&to, edge) in succ.iter() {
                out.push(super::OrderEdge {
                    from,
                    to,
                    count: edge.count,
                });
            }
        }
        out
    }

    pub(crate) fn violations_snapshot() -> Vec<String> {
        VIOLATIONS.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_round_trip() {
        let m = Mutex::new(LockClass::Other("ut_round_m"), 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(LockClass::Other("ut_round_rw"), 5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.try_read().expect("uncontended"), 6);
        assert_eq!(rw.into_inner(), 6);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mapped_guard_round_trip() {
        let m = Mutex::new(LockClass::Other("ut_map"), (1u32, String::new()));
        let mut mapped = MutexGuard::map(m.lock(), |pair| &mut pair.1);
        mapped.push('z');
        drop(mapped);
        assert_eq!(m.lock().1, "z");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(LockClass::Other("ut_cv"), ());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        drop(g);
        // The guard's registration survived the wait: dropping it above
        // must have released cleanly so this re-acquisition succeeds.
        drop(m.lock());
    }

    #[cfg(feature = "lockcheck")]
    mod checked {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        }

        #[test]
        fn order_graph_records_edges() {
            let outer = Mutex::new(LockClass::Other("ut_edge_outer"), ());
            let inner = Mutex::new(LockClass::Other("ut_edge_inner"), ());
            for _ in 0..3 {
                let _a = outer.lock();
                let _b = inner.lock();
            }
            let edge = order_graph()
                .into_iter()
                .find(|e| e.from == "ut_edge_outer" && e.to == "ut_edge_inner")
                .expect("edge recorded");
            assert_eq!(edge.count, 3);
        }

        #[test]
        fn inversion_is_reported_with_both_sites() {
            let a = Mutex::new(LockClass::Other("ut_inv_a"), ());
            let b = Mutex::new(LockClass::Other("ut_inv_b"), ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }))
            .expect_err("inversion must panic");
            let msg = panic_text(err);
            assert!(msg.contains("lock-order inversion"), "got: {msg}");
            assert!(msg.contains("ut_inv_a") && msg.contains("ut_inv_b"));
            // Both acquisition sites are named (this file, some line).
            assert!(msg.matches(file!()).count() >= 2, "got: {msg}");
            assert!(violations().iter().any(|v| v.contains("ut_inv_b")));
        }

        #[test]
        fn recursive_relock_is_reported() {
            let m = Mutex::new(LockClass::Other("ut_rec"), ());
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g1 = m.lock();
                let _g2 = m.lock();
            }))
            .expect_err("relock must panic");
            let msg = panic_text(err);
            assert!(msg.contains("recursive acquisition"), "got: {msg}");
        }

        #[test]
        fn read_read_relock_is_reported() {
            let rw = RwLock::new(LockClass::Other("ut_rr"), ());
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g1 = rw.read();
                let _g2 = rw.read();
            }))
            .expect_err("read-read relock must panic");
            let msg = panic_text(err);
            assert!(msg.contains("recursive acquisition"), "got: {msg}");
        }

        #[test]
        fn try_lock_skips_order_checks() {
            let a = Mutex::new(LockClass::Other("ut_try_a"), ());
            let b = Mutex::new(LockClass::Other("ut_try_b"), ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // Reverse order via try_lock: cannot deadlock, must not report.
            let _gb = b.lock();
            let _ga = a.try_lock().expect("uncontended");
        }

        #[test]
        fn condvar_wait_releases_and_reacquires_registration() {
            let m = Mutex::new(LockClass::Other("ut_cv_reg"), ());
            let cv = Condvar::new();
            let mut g = m.lock();
            assert!(cv.wait_for(&mut g, Duration::from_millis(1)).timed_out());
            // Registration was re-acquired: a second lock on the same
            // instance must be caught as recursive, proving the guard is
            // still on the held stack.
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g2 = m.lock();
            }))
            .expect_err("still held after wait");
            assert!(panic_text(err).contains("recursive acquisition"));
        }

        #[test]
        fn callback_reentry_is_reported() {
            let _outer = enter_coordinator("ut_op_outer");
            let cb = enter_callback("ut_sink");
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _inner = enter_coordinator("ut_op_inner");
            }))
            .expect_err("re-entry must panic");
            let msg = panic_text(err);
            assert!(msg.contains("re-entrancy violation"), "got: {msg}");
            assert!(msg.contains("ut_op_inner") && msg.contains("ut_sink"));
            drop(cb);
            // Outside the callback region, nested coordinator entry is fine.
            let _inner = enter_coordinator("ut_op_inner");
        }

        #[test]
        fn mapped_guard_keeps_registration() {
            let m = Mutex::new(LockClass::Other("ut_map_reg"), (0u8, 0u8));
            let mapped = MutexGuard::map(m.lock(), |pair| &mut pair.0);
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g2 = m.lock();
            }))
            .expect_err("mapped guard still holds the lock");
            assert!(panic_text(err).contains("recursive acquisition"));
            drop(mapped);
            drop(m.lock());
        }
    }

    /// Serializes the tests that are sensitive to the global timing
    /// gate: the disable window below must not overlap another test's
    /// exact-count assertion. (A std mutex, not ours: the test
    /// infrastructure should not show up in the timing tables.)
    static TIMING_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// One sequential test covers both the recording path and the
    /// runtime gate.
    #[test]
    fn timing_gate_and_hold_recording() {
        let _serial = TIMING_TESTS.lock().unwrap();
        let data = |class: &str| lock_timing().into_iter().find(|t| t.class == class);
        // Disabled: the class never even registers.
        set_lock_timing(false);
        let off = Mutex::new(LockClass::Other("ut_timing_off"), ());
        drop(off.lock());
        assert!(data("ut_timing_off").is_none());
        set_lock_timing(true);
        // Enabled: uncontended lock/unlock records a hold, no wait.
        let on = Mutex::new(LockClass::Other("ut_timing_on"), ());
        drop(on.lock());
        drop(on.try_lock().expect("uncontended"));
        let t = data("ut_timing_on").expect("class registered");
        assert_eq!(t.hold.count, 2);
        assert_eq!(t.wait.count, 0);
        assert_eq!(t.hold.buckets.iter().sum::<u64>(), 2);
        // RwLock reads and writes feed the same class slot.
        let rw = RwLock::new(LockClass::Other("ut_timing_on"), ());
        drop(rw.read());
        drop(rw.write());
        assert_eq!(data("ut_timing_on").expect("still there").hold.count, 4);
    }

    /// A lock() that finds the mutex held must record a wait sample.
    /// The holder sleeps briefly after the rendezvous; if the contender
    /// still wins the race some round, the dance just repeats.
    #[test]
    fn timing_records_contended_wait() {
        static M: Mutex<u32> = Mutex::new(LockClass::Other("ut_timing_wait"), 0);
        let waits = || {
            lock_timing()
                .iter()
                .find(|t| t.class == "ut_timing_wait")
                .map(|t| t.wait.count)
                .unwrap_or(0)
        };
        let before = waits();
        let deadline = Instant::now() + Duration::from_secs(30);
        while waits() == before {
            assert!(Instant::now() < deadline, "no contended wait observed");
            let rendezvous = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = M.lock();
                    rendezvous.wait();
                    std::thread::sleep(Duration::from_millis(2));
                });
                rendezvous.wait();
                drop(M.lock());
            });
        }
    }

    #[test]
    fn condvar_wait_pauses_hold_timer() {
        let _serial = TIMING_TESTS.lock().unwrap();
        let m = Mutex::new(LockClass::Other("ut_timing_cv"), ());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(1)).timed_out());
        drop(g);
        let t = lock_timing()
            .into_iter()
            .find(|t| t.class == "ut_timing_cv")
            .expect("class registered");
        // Two hold samples: before the wait and after it.
        assert_eq!(t.hold.count, 2);
    }

    #[cfg(not(feature = "lockcheck"))]
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn disabled_checker_is_inert() {
        assert!(!ENABLED, "cfg(not(lockcheck)) ⇒ ENABLED is false");
        assert!(order_graph().is_empty());
        assert!(violations().is_empty());
        // Blatant inversion: must be silently permitted when off.
        let a = Mutex::new(LockClass::Other("ut_off_a"), ());
        let b = Mutex::new(LockClass::Other("ut_off_b"), ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let _c = enter_coordinator("op");
        let _cb = enter_callback("sink");
    }
}
