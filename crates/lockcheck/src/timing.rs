//! Always-on lock wait/hold timing, per [`LockClass`](crate::LockClass).
//!
//! Unlike the order checker (compile-time gated behind the `lockcheck`
//! feature), timing is available in every build: contention is a
//! *performance* question, and the builds whose performance matters are
//! exactly the ones compiled without the checker. The cost model keeps it
//! cheap enough to leave on:
//!
//! - One relaxed atomic load per acquisition when timing is disabled
//!   ([`set_lock_timing`]).
//! - On the uncontended path (a `try_lock` succeeds), no clock is read for
//!   the wait side; only the hold timer stamps one `Instant`.
//! - Wait time is recorded only for acquisitions that actually blocked, so
//!   `lock.wait.*` histograms count *contended* acquisitions — their
//!   `count` is the number of times a thread queued on that class.
//! - Hold time is recorded when the guard drops; condvar waits pause the
//!   hold timer so parked time is not billed as holding.
//!
//! Samples aggregate per class into log2-bucketed histograms (the same
//! bucket layout as `actorspace-obs`); [`lock_timing`] exports the raw
//! buckets, which `obs` folds into `lock.wait.<class>` /
//! `lock.hold.<class>` snapshot entries. The tables are process-global,
//! like the order graph.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 buckets, mirroring `actorspace_obs::metrics::N_BUCKETS`:
/// bucket `i > 0` covers `[2^(i-1), 2^i)` nanoseconds, bucket 0 covers
/// exactly 0, and the last bucket absorbs the tail.
pub const N_TIMING_BUCKETS: usize = 65;

static TIMING_ON: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables wait/hold timing. On by default; the
/// accumulated tables are kept (not reset) across toggles.
pub fn set_lock_timing(on: bool) {
    TIMING_ON.store(on, Ordering::Relaxed);
}

/// Whether wait/hold timing is currently recording.
#[inline]
pub fn lock_timing_enabled() -> bool {
    TIMING_ON.load(Ordering::Relaxed)
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

#[inline]
pub(crate) fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One atomically updated log2 histogram (count + sum + buckets).
pub(crate) struct AtomicHist {
    buckets: [AtomicU64; N_TIMING_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    const fn new() -> AtomicHist {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHist {
            buckets: [ZERO; N_TIMING_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn data(&self) -> TimingData {
        TimingData {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The wait and hold histograms of one lock class.
pub(crate) struct ClassTiming {
    pub(crate) wait: AtomicHist,
    pub(crate) hold: AtomicHist,
}

impl ClassTiming {
    const fn new() -> ClassTiming {
        ClassTiming {
            wait: AtomicHist::new(),
            hold: AtomicHist::new(),
        }
    }
}

// Like the order graph, the timing table uses raw parking_lot: this crate
// is the instrumentation boundary and must not recurse into itself. The
// table is only locked on the *first* acquisition of each lock instance
// (the resolved pointer is cached in the lock) and by exports.
static REGISTRY: parking_lot::Mutex<BTreeMap<&'static str, &'static ClassTiming>> =
    parking_lot::Mutex::new(BTreeMap::new());

/// Resolves (allocating on first use) the process-wide timing slot for a
/// class name. The returned reference is `'static`: slots are leaked once
/// and live for the process, so lock hot paths can cache the pointer.
pub(crate) fn class_timing(name: &'static str) -> &'static ClassTiming {
    let mut map = REGISTRY.lock();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(ClassTiming::new())))
}

/// Raw histogram contents for one timing dimension of one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingData {
    /// Samples recorded (for `wait`: contended acquisitions only).
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum: u64,
    /// Per-bucket sample counts, [`N_TIMING_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

/// Wait/hold timing of one lock class, as exported by [`lock_timing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockTiming {
    /// Canonical class name ([`crate::LockClass::name`]).
    pub class: &'static str,
    /// Time spent blocked acquiring locks of this class.
    pub wait: TimingData,
    /// Time guards of this class were held (condvar waits excluded).
    pub hold: TimingData,
}

/// Snapshot of every class's wait/hold histograms, sorted by class name.
/// Classes are present once any lock of theirs has been acquired with
/// timing enabled.
pub fn lock_timing() -> Vec<LockTiming> {
    let map = REGISTRY.lock();
    map.iter()
        .map(|(&class, t)| LockTiming {
            class,
            wait: t.wait.data(),
            hold: t.hold.data(),
        })
        .collect()
}

/// Guard-embedded hold timer: stamps acquisition time and records the
/// elapsed hold into the class's hold histogram when dropped. Inert (and
/// allocation-free) when timing was disabled at acquisition.
pub(crate) struct HoldTimer(Option<(&'static ClassTiming, Instant)>);

impl HoldTimer {
    /// An inert timer (timing disabled).
    #[inline]
    pub(crate) fn off() -> HoldTimer {
        HoldTimer(None)
    }

    /// Starts timing a hold of `timing`'s class.
    #[inline]
    pub(crate) fn running(timing: &'static ClassTiming) -> HoldTimer {
        HoldTimer(Some((timing, Instant::now())))
    }

    /// Records the hold so far and stops the timer (condvar wait entry);
    /// returns the slot for [`HoldTimer::resume`] after the wait.
    pub(crate) fn pause(&mut self) -> Option<&'static ClassTiming> {
        let (timing, started) = self.0.take()?;
        timing.hold.record(nanos(started.elapsed()));
        Some(timing)
    }

    /// Restarts a paused timer (condvar wait exit). The hold on either
    /// side of the wait is recorded as two samples; the parked time in
    /// between is billed to neither.
    #[inline]
    pub(crate) fn resume(paused: Option<&'static ClassTiming>) -> HoldTimer {
        match paused {
            Some(timing) => HoldTimer::running(timing),
            None => HoldTimer::off(),
        }
    }
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        if let Some((timing, started)) = self.0.take() {
            timing.hold.record(nanos(started.elapsed()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_totals() {
        let h = AtomicHist::new();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        let d = h.data();
        assert_eq!(d.count, 5);
        assert_eq!(d.sum, 1006);
        assert_eq!(d.buckets.len(), N_TIMING_BUCKETS);
        assert_eq!(d.buckets[0], 1); // the 0 sample
        assert_eq!(d.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn class_timing_resolves_one_slot_per_class() {
        let a = class_timing("ut_timing_slot") as *const ClassTiming;
        let b = class_timing("ut_timing_slot") as *const ClassTiming;
        assert_eq!(a, b);
        assert!(lock_timing().iter().any(|t| t.class == "ut_timing_slot"));
    }
}
