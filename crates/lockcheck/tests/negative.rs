//! Seeded-violation tests: each deliberately breaks the sharded
//! coordinator's two-level locking protocol and asserts the checker
//! reports it — naming *both* offending acquisition sites — instead of
//! letting the schedule decide whether anything deadlocks.
//!
//! The whole file is compiled out without `--features lockcheck` (the
//! wrappers are inert and nothing would panic).
#![cfg(feature = "lockcheck")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use actorspace_lockcheck::{violations, LockClass, Mutex, RwLock};

/// Runs `f`, which must die with a lockcheck report, and returns the
/// report text.
fn expect_violation(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("seeded violation must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("lockcheck panics carry a string report");
    assert!(
        msg.starts_with("lockcheck:"),
        "panic was not a lockcheck report: {msg}"
    );
    msg
}

#[test]
fn descending_shard_locks_are_reported() {
    let meta = RwLock::new(LockClass::Meta, ());
    let hi = Mutex::new(LockClass::Shard(7), ());
    let lo = Mutex::new(LockClass::Shard(3), ());
    let msg = expect_violation(|| {
        let _m = meta.read();
        let _hi = hi.lock();
        let _lo = lo.lock(); // descending SpaceId — must die here
    });
    assert!(msg.contains("shard-order violation"), "got: {msg}");
    assert!(
        msg.contains("Shard(3)") && msg.contains("Shard(7)"),
        "both shards named: {msg}"
    );
    // Both acquisition sites appear: where Shard(7) was taken (held) and
    // where Shard(3) was requested (acquiring) — two lines of this file.
    assert_eq!(
        msg.matches("negative.rs").count(),
        2,
        "both sites named: {msg}"
    );
    assert!(
        violations().iter().any(|v| v.contains("shard-order")),
        "report recorded for later inspection"
    );
}

#[test]
fn meta_after_shard_is_reported() {
    let meta = RwLock::new(LockClass::Meta, ());
    let shard = Mutex::new(LockClass::Shard(1), ());
    let msg = expect_violation(|| {
        let m = meta.read();
        let _s = shard.lock();
        drop(m); // level 1 released while level 2 is still held …
        let _again = meta.write(); // … then re-taken: inverted order
    });
    assert!(msg.contains("two-level protocol violation"), "got: {msg}");
    assert!(msg.contains("Shard(1)"), "offending shard named: {msg}");
    assert_eq!(
        msg.matches("negative.rs").count(),
        2,
        "both sites named: {msg}"
    );
}

#[test]
fn shard_without_meta_is_reported() {
    let orphan = Mutex::new(LockClass::Shard(9), ());
    let msg = expect_violation(|| {
        let _s = orphan.lock(); // no meta lock held — must die here
    });
    assert!(msg.contains("shard-without-meta violation"), "got: {msg}");
    assert!(msg.contains("Shard(9)"), "got: {msg}");
    assert!(msg.contains("negative.rs"), "acquiring site named: {msg}");
}
