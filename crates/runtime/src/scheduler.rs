//! The worker loop: steal a scheduled actor, drain a batch of its mailbox,
//! hand it back.
//!
//! Workers share a single [`Injector`](crossbeam::deque::Injector) queue of
//! scheduled actors. Each actor is in the queue at most once (the mailbox
//! state machine), so fairness is per-actor round-robin with a configurable
//! batch size. Workers park on a condition variable when the queue is
//! empty; every injection takes the sleep lock and notifies, so wakeups are
//! never lost.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use actorspace_obs::{DeadLetterReason, TraceId};
use crossbeam::deque::Steal;

use crate::actor::ActorCell;
use crate::ctx::Ctx;
use crate::message::Payload;
use crate::system::Shared;

pub(crate) fn run_worker(shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.injector.steal() {
            Steal::Success(cell) => process_batch(&shared, cell),
            Steal::Retry => continue,
            Steal::Empty => park(&shared),
        }
    }
}

fn park(shared: &Shared) {
    let mut sleeping = shared.sleep_lock.lock();
    // Re-check under the lock: an injection between our failed steal and
    // here would have notified before we wait, so verify emptiness now.
    if shared.shutdown.load(Ordering::Acquire) || !shared.injector.is_empty() {
        return;
    }
    *sleeping += 1;
    shared.sleep_cv.wait(&mut sleeping);
    *sleeping -= 1;
}

fn process_batch(shared: &Arc<Shared>, cell: Arc<ActorCell>) {
    cell.mailbox.begin_running();
    // Take the behavior out for the duration of the batch; the state
    // machine guarantees exclusivity.
    let mut behavior = cell.behavior.lock().take();
    let mut stopped = behavior.is_none();

    for _ in 0..shared.batch {
        let Some((payload, route)) = cell.mailbox.pop() else {
            break;
        };
        let trace = route.map(|r| r.trace).unwrap_or(TraceId::NONE);
        match payload {
            Payload::Start => {
                if let Some(b) = behavior.as_mut() {
                    let mut ctx = Ctx::new(shared, cell.id, None);
                    let unwound = catch_unwind(AssertUnwindSafe(|| b.on_start(&mut ctx)));
                    if unwound.is_err() {
                        shared.note_dead_letter(
                            DeadLetterReason::BehaviorPanic,
                            Some(cell.id),
                            trace,
                        );
                    }
                    apply_ctx(shared, &cell, &mut behavior, ctx, &mut stopped);
                }
            }
            Payload::Become(b) => {
                if !stopped {
                    behavior = Some(b);
                }
            }
            Payload::User(msg) => {
                if let Some(b) = behavior.as_mut() {
                    let from = msg.from;
                    let mut ctx = Ctx::new(shared, cell.id, from);
                    let unwound = catch_unwind(AssertUnwindSafe(|| b.receive(&mut ctx, msg)));
                    if unwound.is_err() {
                        // A panicking behavior drops the message; the actor
                        // survives with its current state (fail-soft).
                        shared.note_dead_letter(
                            DeadLetterReason::BehaviorPanic,
                            Some(cell.id),
                            trace,
                        );
                    } else {
                        // `delivered` is emitted at processing time, not
                        // mailbox-accept time: an accepted-but-unprocessed
                        // message can still be harvested and failed over
                        // when its node crashes, and each trace must end
                        // in exactly one terminal stage.
                        shared.deliveries.inc();
                        shared.obs.tracer.record(
                            trace,
                            shared.node,
                            actorspace_obs::Stage::Delivered,
                        );
                    }
                    apply_ctx(shared, &cell, &mut behavior, ctx, &mut stopped);
                } else {
                    // Messages to a stopped actor are dead letters.
                    shared.note_dead_letter(DeadLetterReason::StoppedActor, Some(cell.id), trace);
                }
            }
        }
        shared.dec_pending();
        if stopped {
            // Drain whatever remains as dead letters.
            while let Some((p, r)) = cell.mailbox.pop() {
                if matches!(p, Payload::User(_)) {
                    shared.note_dead_letter(
                        DeadLetterReason::StoppedActor,
                        Some(cell.id),
                        r.map(|r| r.trace).unwrap_or(TraceId::NONE),
                    );
                }
                shared.dec_pending();
            }
            break;
        }
    }

    *cell.behavior.lock() = behavior;
    if cell.mailbox.finish_running() {
        shared.injector.push(cell);
        shared.notify_worker();
    }
}

fn apply_ctx(
    shared: &Arc<Shared>,
    cell: &Arc<ActorCell>,
    behavior: &mut Option<Box<dyn crate::actor::Behavior>>,
    ctx: Ctx<'_>,
    stopped: &mut bool,
) {
    let (next, stop) = ctx.into_effects();
    if let Some(nb) = next {
        *behavior = Some(nb);
    }
    if stop {
        *stopped = true;
        *behavior = None;
        shared.stop_actor(cell.id);
    }
}
