//! The coordinator hook: routing state-changing primitives through an
//! external coordinator.
//!
//! On a single node, visibility operations apply directly to the local
//! [`Registry`](actorspace_core::Registry). In a cluster (§7.3), "the
//! current design needs a global ordering on individual broadcasts between
//! coordinators to order visibility changes globally, so that all nodes
//! have the same view of visibility" — so every state-changing primitive
//! must go through the coordinator bus instead of mutating local state
//! immediately. Installing a [`CoordinatorHook`] reroutes the primitives
//! invoked by behaviors ([`Ctx`](crate::Ctx)) and by the system API.
//!
//! Hook implementations typically return before the operation has applied
//! anywhere; the suspended-message semantics of §5.6 absorb the resulting
//! window (a send racing a not-yet-applied `make_visible` simply suspends
//! until the visibility event arrives).

use actorspace_atoms::Path;
use actorspace_capability::Capability;
use actorspace_core::{ActorId, MemberId, Result, SpaceId};

use crate::actor::BoxBehavior;

/// Reroutes state-changing ActorSpace primitives (visibility, attribute,
/// creation, destruction). Pattern sends and broadcasts are *not* routed:
/// they resolve against the local replica per the paper's design.
pub trait CoordinatorHook: Send + Sync {
    /// `make_visible` (§5.4).
    fn make_visible(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()>;

    /// `make_invisible` (§5.4).
    fn make_invisible(
        &self,
        member: MemberId,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()>;

    /// `change_attributes` (§5.4).
    fn change_attributes(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<Capability>,
    ) -> Result<()>;

    /// `create_actorSpace` (§5.2). The id must be allocated from the local
    /// node's range.
    fn create_space(&self, cap: Option<Capability>) -> SpaceId;

    /// Space destruction (§7.1).
    fn destroy_space(&self, space: SpaceId, cap: Option<Capability>) -> Result<()>;

    /// Actor creation (§4): the hook allocates the id, installs the
    /// behavior cell locally, and replicates the record.
    fn create_actor(
        &self,
        host: SpaceId,
        cap: Option<Capability>,
        behavior: BoxBehavior,
    ) -> Result<ActorId>;
}
