//! Behaviors and actor cells.
//!
//! A [`Behavior`] is the paper's behavior description (§4): it receives one
//! message at a time and may `create` actors, `send to` addresses or
//! patterns, and `become` a new behavior — all through the [`Ctx`] handle.

use actorspace_core::ActorId;

use crate::ctx::Ctx;
use crate::mailbox::Mailbox;
use crate::message::Message;

/// An actor behavior. One message is processed at a time per actor; `&mut
/// self` state is therefore race-free without locks in user code.
pub trait Behavior: Send + 'static {
    /// Handles one message.
    fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message);

    /// Called once, before any message, on the actor's first scheduling.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// A boxed behavior — what `become` installs.
pub type BoxBehavior = Box<dyn Behavior>;

/// Wraps a closure as a [`Behavior`].
///
/// ```
/// use actorspace_runtime::{from_fn, Value};
/// let echo = from_fn(|ctx, msg| {
///     if let Some(sender) = msg.from {
///         ctx.send_addr(sender, msg.body);
///     }
/// });
/// # let _ = echo;
/// ```
pub fn from_fn<F>(f: F) -> impl Behavior
where
    F: FnMut(&mut Ctx<'_>, Message) + Send + 'static,
{
    struct FnBehavior<F>(F);
    impl<F> Behavior for FnBehavior<F>
    where
        F: FnMut(&mut Ctx<'_>, Message) + Send + 'static,
    {
        fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            (self.0)(ctx, msg)
        }
    }
    FnBehavior(f)
}

/// The per-actor record owned by the runtime: identity, mailbox, and the
/// current behavior. The scheduling state machine in [`Mailbox`] guarantees
/// at most one worker touches `behavior` at a time; the mutex is belt and
/// braces (and satisfies the borrow checker across the worker boundary).
pub(crate) struct ActorCell {
    pub id: ActorId,
    pub mailbox: Mailbox,
    pub behavior: actorspace_lockcheck::Mutex<Option<BoxBehavior>>,
}

impl ActorCell {
    pub fn new(id: ActorId, behavior: BoxBehavior) -> ActorCell {
        ActorCell {
            id,
            mailbox: Mailbox::new(),
            behavior: actorspace_lockcheck::Mutex::new(
                actorspace_lockcheck::LockClass::Behavior,
                Some(behavior),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn from_fn_is_a_behavior() {
        // Construction-only check (execution is covered by system tests).
        fn assert_behavior(_b: impl Behavior) {}
        assert_behavior(from_fn(|_ctx, msg| {
            let _ = msg.body == Value::Unit;
        }));
    }

    #[test]
    fn actor_cell_holds_behavior() {
        let cell = ActorCell::new(ActorId(1), Box::new(from_fn(|_, _| {})));
        assert!(cell.behavior.lock().is_some());
        assert_eq!(cell.mailbox.len(), 0);
    }
}
