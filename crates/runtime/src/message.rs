//! Messages, ports, and envelopes.
//!
//! §7.2: "The executing actors are supplied with three different message
//! ports, each of which has a different purpose. The Behavior-port is used
//! for sending the actor its next behavior. The Invocation-port is used for
//! sending the actor any messages sent to it using send or broadcast. The
//! RPC-port is used when an actor performs a system call that expects a
//! return value."

use actorspace_core::{ActorId, Route};

use crate::actor::BoxBehavior;
use crate::value::Value;

/// Which of an actor's three message ports an envelope targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Next-behavior installation (processed before anything else).
    Behavior,
    /// Replies to system calls expecting return values.
    Rpc,
    /// Ordinary `send`/`broadcast` traffic.
    Invocation,
}

/// A delivered message as a behavior sees it.
#[derive(Debug, Clone)]
pub struct Message {
    /// The sender's mail address, when the sender chose to reveal it
    /// (messages from outside the system carry `None`).
    pub from: Option<ActorId>,
    /// The payload.
    pub body: Value,
    /// The port this message arrived on.
    pub port: Port,
}

impl Message {
    /// An invocation-port message with no sender.
    pub fn new(body: Value) -> Message {
        Message {
            from: None,
            body,
            port: Port::Invocation,
        }
    }

    /// An invocation-port message from a known sender.
    pub fn from_sender(from: ActorId, body: Value) -> Message {
        Message {
            from: Some(from),
            body,
            port: Port::Invocation,
        }
    }

    /// An RPC-port reply.
    pub fn rpc(from: Option<ActorId>, body: Value) -> Message {
        Message {
            from,
            body,
            port: Port::Rpc,
        }
    }
}

/// What actually travels to a mailbox.
pub(crate) enum Payload {
    /// A user message for `Behavior::receive`.
    User(Message),
    /// Behavior replacement, delivered on the Behavior port. This is how
    /// `become` is realized when it crosses actor (or node) boundaries.
    Become(BoxBehavior),
    /// The start signal: runs `Behavior::on_start` before any message.
    Start,
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::User(m) => f.debug_tuple("User").field(m).finish(),
            Payload::Become(_) => f.write_str("Become(..)"),
            Payload::Start => f.write_str("Start"),
        }
    }
}

/// An addressed payload.
#[derive(Debug)]
pub struct Envelope {
    /// Destination actor.
    pub to: ActorId,
    pub(crate) payload: Payload,
    /// The pattern resolution that chose `to`, when the envelope came from
    /// a `send`/`broadcast`. Kept with the message through the mailbox so a
    /// failover path can re-resolve it if `to` dies unprocessed.
    pub(crate) route: Option<Route>,
}

impl Envelope {
    /// A user message envelope (point-to-point; carries no route).
    pub fn user(to: ActorId, msg: Message) -> Envelope {
        Envelope {
            to,
            payload: Payload::User(msg),
            route: None,
        }
    }

    /// A user message envelope produced by pattern resolution.
    pub fn user_routed(to: ActorId, msg: Message, route: Option<Route>) -> Envelope {
        Envelope {
            to,
            payload: Payload::User(msg),
            route,
        }
    }

    /// A behavior-replacement envelope.
    pub fn become_(to: ActorId, behavior: BoxBehavior) -> Envelope {
        Envelope {
            to,
            payload: Payload::Become(behavior),
            route: None,
        }
    }

    pub(crate) fn start(to: ActorId) -> Envelope {
        Envelope {
            to,
            payload: Payload::Start,
            route: None,
        }
    }

    /// The port this envelope will be queued on.
    pub fn port(&self) -> Port {
        match &self.payload {
            Payload::User(m) => m.port,
            Payload::Become(_) | Payload::Start => Port::Behavior,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_constructors_set_ports() {
        assert_eq!(Message::new(Value::Unit).port, Port::Invocation);
        assert_eq!(Message::rpc(None, Value::Unit).port, Port::Rpc);
        let m = Message::from_sender(ActorId(1), Value::int(2));
        assert_eq!(m.from, Some(ActorId(1)));
    }

    #[test]
    fn envelope_port_classification() {
        let e = Envelope::user(ActorId(1), Message::new(Value::Unit));
        assert_eq!(e.port(), Port::Invocation);
        let e = Envelope::user(ActorId(1), Message::rpc(None, Value::Unit));
        assert_eq!(e.port(), Port::Rpc);
        let e = Envelope::start(ActorId(1));
        assert_eq!(e.port(), Port::Behavior);
    }
}
