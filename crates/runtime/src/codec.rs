//! Wire encoding of values and messages.
//!
//! §5: "The run-time system for ActorSpace will support heterogeneity by
//! selecting transport protocols and data representation formats at
//! run-time." Transport selection is the [`Transport`](crate::Transport)
//! trait; this module is the data-representation half: a compact,
//! self-describing binary format for [`Value`] and [`Message`]. The
//! simulated cluster encodes every message onto the wire and decodes it on
//! arrival, so cross-node payloads genuinely round-trip through bytes.
//!
//! Format: one tag byte per value, little-endian fixed-width scalars,
//! u32-length-prefixed strings and lists. Atoms travel as their text
//! (interner ids are process-local). Capabilities travel as raw key bits
//! plus a rights byte — they are "communicated in messages" by design
//! (§5.4), and the wire is inside the trust domain.

use std::sync::Arc;

use actorspace_capability::{CapKey, Capability, Rights};
use actorspace_core::{ActorId, SpaceId};

use crate::message::{Message, Port};
use crate::value::Value;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-value.
    Truncated,
    /// An unknown tag byte.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes after the decoded value.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

const T_UNIT: u8 = 0x00;
const T_FALSE: u8 = 0x01;
const T_TRUE: u8 = 0x02;
const T_INT: u8 = 0x03;
const T_FLOAT: u8 = 0x04;
const T_STR: u8 = 0x05;
const T_ATOM: u8 = 0x06;
const T_ADDR: u8 = 0x07;
const T_SPACE: u8 = 0x08;
const T_CAP: u8 = 0x09;
const T_LIST: u8 = 0x0a;

/// Encodes a value, appending to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(T_UNIT),
        Value::Bool(false) => out.push(T_FALSE),
        Value::Bool(true) => out.push(T_TRUE),
        Value::Int(i) => {
            out.push(T_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(T_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(T_STR);
            put_bytes(s.as_bytes(), out);
        }
        Value::Atom(a) => {
            out.push(T_ATOM);
            put_bytes(a.as_str().as_bytes(), out);
        }
        Value::Addr(a) => {
            out.push(T_ADDR);
            out.extend_from_slice(&a.0.to_le_bytes());
        }
        Value::Space(s) => {
            out.push(T_SPACE);
            out.extend_from_slice(&s.0.to_le_bytes());
        }
        Value::Cap(c) => {
            out.push(T_CAP);
            out.extend_from_slice(&c.key().to_bits().to_le_bytes());
            out.push(rights_bits(c.rights()));
        }
        Value::List(items) => {
            out.push(T_LIST);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items.iter() {
                encode_value(item, out);
            }
        }
    }
}

/// Encodes a value into a fresh buffer.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_value(v, &mut out);
    out
}

fn put_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn rights_bits(r: Rights) -> u8 {
    let mut b = 0u8;
    if r.covers(Rights::VISIBILITY) {
        b |= 1;
    }
    if r.covers(Rights::ATTRIBUTES) {
        b |= 2;
    }
    if r.covers(Rights::MANAGE) {
        b |= 4;
    }
    b
}

fn rights_from_bits(b: u8) -> Rights {
    let mut r = Rights::NONE;
    if b & 1 != 0 {
        r = r | Rights::VISIBILITY;
    }
    if b & 2 != 0 {
        r = r | Rights::ATTRIBUTES;
    }
    if b & 4 != 0 {
        r = r | Rights::MANAGE;
    }
    r
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError::BadUtf8)
    }
}

fn decode_inner(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        T_UNIT => Ok(Value::Unit),
        T_FALSE => Ok(Value::Bool(false)),
        T_TRUE => Ok(Value::Bool(true)),
        T_INT => Ok(Value::Int(r.i64()?)),
        T_FLOAT => Ok(Value::Float(f64::from_le_bytes(
            r.take(8)?.try_into().expect("8 bytes"),
        ))),
        T_STR => Ok(Value::str(r.str()?)),
        T_ATOM => Ok(Value::atom(r.str()?)),
        T_ADDR => Ok(Value::Addr(ActorId(r.u64()?))),
        T_SPACE => Ok(Value::Space(SpaceId(r.u64()?))),
        T_CAP => {
            let key = CapKey::from_bits(r.u128()?);
            let rights = rights_from_bits(r.u8()?);
            Ok(Value::Cap(Capability::from_parts(key, rights)))
        }
        T_LIST => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_inner(r)?);
            }
            Ok(Value::List(Arc::new(items)))
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Decodes a single value from `bytes`, requiring full consumption.
pub fn decode_value(bytes: &[u8]) -> Result<Value, DecodeError> {
    let mut r = Reader { buf: bytes, at: 0 };
    let v = decode_inner(&mut r)?;
    if r.at != bytes.len() {
        return Err(DecodeError::TrailingBytes(bytes.len() - r.at));
    }
    Ok(v)
}

/// Encodes a message (port + sender + body).
pub fn encode_message(m: &Message, out: &mut Vec<u8>) {
    out.push(match m.port {
        Port::Behavior => 0,
        Port::Rpc => 1,
        Port::Invocation => 2,
    });
    match m.from {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            out.extend_from_slice(&a.0.to_le_bytes());
        }
    }
    encode_value(&m.body, out);
}

/// Encodes a message into a fresh buffer.
pub fn message_to_bytes(m: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    encode_message(m, &mut out);
    out
}

/// Decodes a message, requiring full consumption.
pub fn decode_message(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut r = Reader { buf: bytes, at: 0 };
    let port = match r.u8()? {
        0 => Port::Behavior,
        1 => Port::Rpc,
        2 => Port::Invocation,
        t => return Err(DecodeError::BadTag(t)),
    };
    let from = match r.u8()? {
        0 => None,
        1 => Some(ActorId(r.u64()?)),
        t => return Err(DecodeError::BadTag(t)),
    };
    let body = decode_inner(&mut r)?;
    if r.at != bytes.len() {
        return Err(DecodeError::TrailingBytes(bytes.len() - r.at));
    }
    Ok(Message { from, body, port })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorspace_capability::CapMinter;

    fn round_trip(v: &Value) -> Value {
        decode_value(&value_to_bytes(v)).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::int(0),
            Value::int(i64::MIN),
            Value::int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::NEG_INFINITY),
            Value::str(""),
            Value::str("héllo → wörld"),
            Value::atom("srv/fib"),
            Value::Addr(ActorId(u64::MAX)),
            Value::Space(SpaceId(7)),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn nan_floats_round_trip_bitwise() {
        let v = Value::Float(f64::NAN);
        let got = round_trip(&v);
        match got {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn capabilities_round_trip_with_rights() {
        let cap = CapMinter::new().new_capability();
        let weak = cap.restrict(Rights::VISIBILITY | Rights::ATTRIBUTES);
        for c in [cap, weak] {
            let got = round_trip(&Value::Cap(c));
            let rc = got.as_cap().expect("cap variant");
            assert_eq!(rc.key(), c.key());
            assert_eq!(rc.rights(), c.rights());
        }
    }

    #[test]
    fn nested_lists_round_trip() {
        let v = Value::list([
            Value::int(1),
            Value::list([Value::str("x"), Value::list([Value::Unit])]),
            Value::atom("deep/path"),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn messages_round_trip() {
        for m in [
            Message::new(Value::int(5)),
            Message::from_sender(ActorId(9), Value::str("hello")),
            Message::rpc(
                Some(ActorId(1)),
                Value::list([Value::int(1), Value::int(2)]),
            ),
        ] {
            let bytes = message_to_bytes(&m);
            let got = decode_message(&bytes).unwrap();
            assert_eq!(got.from, m.from);
            assert_eq!(got.port, m.port);
            assert_eq!(got.body, m.body);
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(decode_value(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode_value(&[0xff]), Err(DecodeError::BadTag(0xff)));
        assert_eq!(decode_value(&[T_INT, 1, 2]), Err(DecodeError::Truncated));
        // Valid unit + junk.
        assert_eq!(
            decode_value(&[T_UNIT, 0]),
            Err(DecodeError::TrailingBytes(1))
        );
        // Bad UTF-8 in a string.
        let mut bad = vec![T_STR];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_value(&bad), Err(DecodeError::BadUtf8));
        // List claiming more items than present.
        let mut short = vec![T_LIST];
        short.extend_from_slice(&3u32.to_le_bytes());
        short.push(T_UNIT);
        assert_eq!(decode_value(&short), Err(DecodeError::Truncated));
    }
}
