//! Abstract transport objects (§7.2).
//!
//! "The Coordinator and the executing actors communicate through abstract
//! transport objects which are subclassed to use a specific message passing
//! mechanism; the mechanism may be selected at run-time."
//!
//! Local delivery is built into the system (mailbox push). A [`Transport`]
//! is the pluggable *uplink* used for actors the local node does not host:
//! the simulated cluster installs one that forwards over inter-node links;
//! tests install channel- or closure-backed ones.

use actorspace_core::{ActorId, Route};

use crate::message::Message;

/// A message-passing mechanism for actors not hosted locally.
pub trait Transport: Send + Sync {
    /// Attempts delivery; returns false if the destination is unknown to
    /// this transport too (the message becomes a dead letter).
    fn deliver(&self, to: ActorId, msg: Message) -> bool;

    /// Like [`Transport::deliver`], but carrying the pattern resolution
    /// that chose `to` when there was one. Transports that can re-route
    /// around failed destinations (the cluster uplink) override this; the
    /// default ignores the route.
    fn deliver_routed(&self, to: ActorId, msg: Message, route: Option<&Route>) -> bool {
        let _ = route;
        self.deliver(to, msg)
    }
}

/// Wraps a closure as a [`Transport`].
pub struct FnTransport<F>(pub F);

impl<F> Transport for FnTransport<F>
where
    F: Fn(ActorId, Message) -> bool + Send + Sync,
{
    fn deliver(&self, to: ActorId, msg: Message) -> bool {
        (self.0)(to, msg)
    }
}

/// A transport that forwards into an MPSC channel — useful in tests and as
/// a bridge to polling consumers.
pub struct ChannelTransport {
    sender: std::sync::mpsc::SyncSender<(ActorId, Message)>,
}

impl ChannelTransport {
    /// Creates the transport and its receiving end. `capacity` bounds the
    /// in-flight queue.
    pub fn new(
        capacity: usize,
    ) -> (
        ChannelTransport,
        std::sync::mpsc::Receiver<(ActorId, Message)>,
    ) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (ChannelTransport { sender: tx }, rx)
    }
}

impl Transport for ChannelTransport {
    fn deliver(&self, to: ActorId, msg: Message) -> bool {
        self.sender.send((to, msg)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn fn_transport_invokes_closure() {
        let t = FnTransport(|to: ActorId, _msg: Message| to.0 == 7);
        assert!(t.deliver(ActorId(7), Message::new(Value::Unit)));
        assert!(!t.deliver(ActorId(8), Message::new(Value::Unit)));
    }

    #[test]
    fn channel_transport_round_trips() {
        let (t, rx) = ChannelTransport::new(4);
        assert!(t.deliver(ActorId(3), Message::new(Value::int(9))));
        let (to, msg) = rx.recv().unwrap();
        assert_eq!(to, ActorId(3));
        assert_eq!(msg.body, Value::int(9));
    }
}
