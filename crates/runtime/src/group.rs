//! Group-communication utilities built *on top of* the primitives — the
//! compositions the paper sketches rather than mandates.
//!
//! §5.3: "we do not guarantee a global or partial order on broadcast
//! messages. … If a global order on broadcasts to a specific group is
//! desired, it can be obtained by sending all messages that are to be
//! broadcast to a special actor whose sole purpose is to receive messages
//! from group members, and then broadcast these serially to the group
//! using some agreed upon protocol (cf. sequenced send in the actor
//! language HAL)."

use actorspace_core::{Pattern, SpaceId};

use crate::actor::{from_fn, Behavior};
use crate::system::{ActorHandle, ActorSystem};
use crate::value::Value;

/// Builds the §5.3 sequencing actor: every message sent to it is
/// re-broadcast to `pattern @ space`, serially. Because the sequencer
/// processes one message at a time and per-recipient delivery is FIFO, all
/// group members observe its broadcasts in the same order — a total order
/// on the group's broadcasts without any global protocol.
///
/// Messages are wrapped as `(seq, original-body)` so receivers can verify
/// (or rely on) the sequence.
pub fn broadcast_sequencer(pattern: Pattern, space: SpaceId) -> impl Behavior {
    let mut seq: i64 = 0;
    from_fn(move |ctx, msg| {
        let stamped = Value::list([Value::int(seq), msg.body]);
        seq += 1;
        // Delivery failures (no matching member yet) follow the space's
        // unmatched-broadcast policy, like any other broadcast.
        let _ = ctx.broadcast(&pattern, space, stamped);
    })
}

/// Spawns the sequencer and returns its handle; send group messages to
/// this actor instead of broadcasting directly.
pub fn spawn_broadcast_sequencer(
    system: &ActorSystem,
    pattern: Pattern,
    space: SpaceId,
) -> ActorHandle {
    system.spawn(broadcast_sequencer(pattern, space))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Config;
    use actorspace_atoms::path;
    use actorspace_lockcheck::{LockClass, Mutex};
    use actorspace_pattern::pattern;
    use std::sync::Arc;
    use std::time::Duration;

    /// Two producers racing through the sequencer: every member receives
    /// the messages in the *same* total order (by construction:
    /// consecutive sequence numbers).
    #[test]
    fn sequenced_broadcasts_are_totally_ordered() {
        let sys = ActorSystem::new(Config {
            workers: 4,
            ..Config::default()
        });
        let space = sys.create_space(None).unwrap();

        let n_members = 4;
        let logs: Vec<Arc<Mutex<Vec<i64>>>> = (0..n_members)
            .map(|_| {
                Arc::new(Mutex::new(
                    LockClass::Other("test.runtime.group_log"),
                    Vec::new(),
                ))
            })
            .collect();
        for (i, log) in logs.iter().enumerate() {
            let log = log.clone();
            let m = sys.spawn(from_fn(move |_ctx, msg| {
                let parts = msg.body.as_list().unwrap();
                log.lock().push(parts[0].as_int().unwrap());
            }));
            sys.make_visible(m.id(), &path(&format!("grp/{i}")), space, None)
                .unwrap();
            m.leak();
        }

        let sequencer = spawn_broadcast_sequencer(&sys, pattern("grp/*"), space);
        let seq_id = sequencer.id();

        // Two racing producers, 50 messages each.
        let p1 = sys.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(seq_id, msg.body);
        }));
        let p2 = sys.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(seq_id, msg.body);
        }));
        for i in 0..50 {
            p1.send(Value::int(1000 + i));
            p2.send(Value::int(2000 + i));
        }
        assert!(sys.await_idle(Duration::from_secs(30)));

        let first = logs[0].lock().clone();
        assert_eq!(first.len(), 100);
        // The per-member sequence numbers are exactly 0..100 in order.
        assert_eq!(first, (0..100).collect::<Vec<i64>>());
        for log in &logs[1..] {
            assert_eq!(*log.lock(), first, "members disagree on broadcast order");
        }
        sys.shutdown();
    }

    /// Without the sequencer, the paper guarantees nothing about order —
    /// but every member still receives every broadcast (integrity).
    #[test]
    fn unsequenced_broadcasts_keep_integrity() {
        let sys = ActorSystem::new(Config {
            workers: 4,
            ..Config::default()
        });
        let space = sys.create_space(None).unwrap();
        let log = Arc::new(Mutex::new(
            LockClass::Other("test.runtime.group_log"),
            Vec::new(),
        ));
        let l = log.clone();
        let m = sys.spawn(from_fn(move |_ctx, msg| {
            l.lock().push(msg.body.as_int().unwrap());
        }));
        sys.make_visible(m.id(), &path("grp/x"), space, None)
            .unwrap();
        for i in 0..50 {
            sys.broadcast(&pattern("grp/*"), space, Value::int(i), None)
                .unwrap();
        }
        assert!(sys.await_idle(Duration::from_secs(30)));
        let mut got = log.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<i64>>());
        sys.shutdown();
    }
}
