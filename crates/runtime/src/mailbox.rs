//! Per-actor mailboxes: three FIFO port queues plus the scheduling state
//! machine that guarantees an actor is processed by at most one worker at a
//! time.
//!
//! The state machine is the classic idle → scheduled → running cycle:
//!
//! * a producer that enqueues into an **idle** mailbox transitions it to
//!   **scheduled** and hands the actor to the scheduler;
//! * a worker takes a scheduled actor, marks it **running**, drains a batch
//!   of messages, then returns it to **idle** — re-scheduling itself if
//!   messages raced in meanwhile.
//!
//! Port priority (paper §7.2 semantics): Behavior replacements are consumed
//! before RPC replies, which are consumed before ordinary invocations.
//! Within a port, delivery is FIFO. Across actors and for broadcasts no
//! order is guaranteed, matching §5.3.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use actorspace_core::Route;
use actorspace_lockcheck::{LockClass, Mutex};

use crate::message::{Payload, Port};

/// One queued entry: the payload plus the pattern resolution that produced
/// it (if any), retained for failover re-routing.
pub(crate) type Queued = (Payload, Option<Route>);

/// Scheduling states.
const IDLE: usize = 0;
const SCHEDULED: usize = 1;
const RUNNING: usize = 2;

/// A three-port mailbox with scheduling state.
pub(crate) struct Mailbox {
    behavior: Mutex<VecDeque<Queued>>,
    rpc: Mutex<VecDeque<Queued>>,
    invocation: Mutex<VecDeque<Queued>>,
    state: AtomicUsize,
    len: AtomicUsize,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox {
            behavior: Mutex::new(LockClass::Mailbox, VecDeque::new()),
            rpc: Mutex::new(LockClass::Mailbox, VecDeque::new()),
            invocation: Mutex::new(LockClass::Mailbox, VecDeque::new()),
            state: AtomicUsize::new(IDLE),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueues a payload on `port`. Returns `true` when the caller must
    /// hand the actor to the scheduler (the mailbox was idle).
    pub fn push(&self, port: Port, payload: Payload, route: Option<Route>) -> bool {
        match port {
            Port::Behavior => self.behavior.lock().push_back((payload, route)),
            Port::Rpc => self.rpc.lock().push_back((payload, route)),
            Port::Invocation => self.invocation.lock().push_back((payload, route)),
        }
        self.len.fetch_add(1, Ordering::Release);
        self.try_schedule()
    }

    /// Attempts the idle → scheduled transition. Returns true on success
    /// (caller must inject the actor).
    pub fn try_schedule(&self) -> bool {
        self.state
            .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the mailbox running (worker picked it up).
    pub fn begin_running(&self) {
        self.state.store(RUNNING, Ordering::Release);
    }

    /// Returns the mailbox to idle after a batch. Returns `true` if
    /// messages remain and the caller won the right to re-schedule.
    pub fn finish_running(&self) -> bool {
        self.state.store(IDLE, Ordering::Release);
        // Re-check: a producer may have enqueued after our last pop but
        // before the store above — it would have seen RUNNING and not
        // scheduled, so the responsibility is ours.
        self.len.load(Ordering::Acquire) > 0 && self.try_schedule()
    }

    /// Pops the next payload by port priority.
    pub fn pop(&self) -> Option<Queued> {
        let got = {
            if let Some(p) = self.behavior.lock().pop_front() {
                Some(p)
            } else if let Some(p) = self.rpc.lock().pop_front() {
                Some(p)
            } else {
                self.invocation.lock().pop_front()
            }
        };
        if got.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        got
    }

    /// Empties every queue, returning the entries in port-priority order.
    /// Used to harvest accepted-but-unprocessed messages from a crashed
    /// node's mailboxes for failover re-routing.
    pub fn drain(&self) -> Vec<Queued> {
        let mut out = Vec::new();
        out.extend(self.behavior.lock().drain(..));
        out.extend(self.rpc.lock().drain(..));
        out.extend(self.invocation.lock().drain(..));
        self.len.fetch_sub(out.len(), Ordering::Release);
        out
    }

    /// Total queued messages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::value::Value;

    fn user(i: i64) -> Payload {
        Payload::User(Message::new(Value::int(i)))
    }

    fn rpc(i: i64) -> Payload {
        Payload::User(Message::rpc(None, Value::int(i)))
    }

    fn val(q: Queued) -> i64 {
        match q.0 {
            Payload::User(m) => m.body.as_int().unwrap(),
            _ => panic!("expected user payload"),
        }
    }

    #[test]
    fn fifo_within_a_port() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.push(Port::Invocation, user(i), None);
        }
        for i in 0..5 {
            assert_eq!(val(mb.pop().unwrap()), i);
        }
        assert!(mb.pop().is_none());
    }

    #[test]
    fn port_priority_behavior_then_rpc_then_invocation() {
        let mb = Mailbox::new();
        mb.push(Port::Invocation, user(3), None);
        mb.push(Port::Rpc, rpc(2), None);
        mb.push(Port::Behavior, Payload::Start, None);
        assert!(matches!(mb.pop().unwrap().0, Payload::Start));
        assert_eq!(val(mb.pop().unwrap()), 2);
        assert_eq!(val(mb.pop().unwrap()), 3);
    }

    #[test]
    fn first_push_schedules_subsequent_do_not() {
        let mb = Mailbox::new();
        assert!(
            mb.push(Port::Invocation, user(1), None),
            "idle mailbox must schedule"
        );
        assert!(
            !mb.push(Port::Invocation, user(2), None),
            "already scheduled"
        );
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn finish_running_detects_racing_messages() {
        let mb = Mailbox::new();
        assert!(mb.push(Port::Invocation, user(1), None));
        mb.begin_running();
        // While running, pushes do not schedule.
        assert!(!mb.push(Port::Invocation, user(2), None));
        mb.pop().unwrap();
        // One message left: finishing must hand back a reschedule.
        assert!(mb.finish_running());
        mb.begin_running();
        mb.pop().unwrap();
        assert!(!mb.finish_running());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mb = Mailbox::new();
        assert_eq!(mb.len(), 0);
        mb.push(Port::Invocation, user(1), None);
        mb.push(Port::Rpc, rpc(2), None);
        assert_eq!(mb.len(), 2);
        mb.pop();
        assert_eq!(mb.len(), 1);
        mb.pop();
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn concurrent_pushers_schedule_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::new());
        let schedules = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8 {
            let mb = mb.clone();
            let schedules = schedules.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    if mb.push(Port::Invocation, user(t * 100 + i), None) {
                        schedules.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            schedules.load(Ordering::Relaxed),
            1,
            "exactly one scheduling transition"
        );
        assert_eq!(mb.len(), 800);
    }
}
