//! The context handle a behavior uses to act on the world — the paper's
//! ActorInterface (§7.2): "actors communicate explicitly with the local
//! coordinator which carries out the ActorSpace primitives."

use std::sync::Arc;

use actorspace_atoms::Path;
use actorspace_capability::Capability;
use actorspace_core::{ActorId, Disposition, MemberId, Pattern, Result, SpaceId};

use crate::actor::{Behavior, BoxBehavior};
use crate::message::{Envelope, Message, Port};
use crate::system::Shared;
use crate::value::Value;

/// Capabilities of a running behavior: the Actor primitives (`create`,
/// `send to`, `become`) plus the ActorSpace extensions (pattern send and
/// broadcast, visibility control, space creation).
pub struct Ctx<'a> {
    shared: &'a Arc<Shared>,
    self_id: ActorId,
    sender: Option<ActorId>,
    next_behavior: Option<BoxBehavior>,
    stop: bool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(shared: &'a Arc<Shared>, self_id: ActorId, sender: Option<ActorId>) -> Self {
        Ctx {
            shared,
            self_id,
            sender,
            next_behavior: None,
            stop: false,
        }
    }

    pub(crate) fn into_effects(self) -> (Option<BoxBehavior>, bool) {
        (self.next_behavior, self.stop)
    }

    /// This actor's own mail address.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The sender of the message being processed, if revealed.
    pub fn sender(&self) -> Option<ActorId> {
        self.sender
    }

    /// The space this actor was created in — the default scope for pattern
    /// resolution (§7.1: "patterns are resolved inside the sender's host
    /// actorSpace, unless the pattern explicitly refers to another
    /// actorSpace").
    pub fn host_space(&self) -> SpaceId {
        self.shared
            .registry
            .actor(self.self_id)
            .map(|r| r.host)
            .unwrap_or(actorspace_core::ROOT_SPACE)
    }

    // ------------------------------------------------------------------
    // Actor primitives (§4)
    // ------------------------------------------------------------------

    /// `create`: a new actor hosted in this actor's host space. The new
    /// address is returned immediately (the RPC-port round trip of §7.2 is
    /// collapsed because the coordinator is in-process).
    pub fn create(&mut self, behavior: impl Behavior) -> ActorId {
        let host = self.host_space();
        self.create_in(host, behavior, None)
            .expect("own host space exists")
    }

    /// `create` into an explicit host space with an optional capability.
    pub fn create_in(
        &mut self,
        space: SpaceId,
        behavior: impl Behavior,
        cap: Option<&Capability>,
    ) -> Result<ActorId> {
        self.shared.op_create_actor(space, cap, Box::new(behavior))
    }

    /// `send to`: point-to-point by mail address (the locality-preserving
    /// Actor primitive). Returns false if the address is dead.
    pub fn send_addr(&mut self, to: ActorId, body: Value) -> bool {
        self.shared
            .deliver(Envelope::user(to, Message::from_sender(self.self_id, body)))
    }

    /// Replies to the current message's sender, if any.
    pub fn reply(&mut self, body: Value) -> bool {
        match self.sender {
            Some(to) => self.send_addr(to, body),
            None => false,
        }
    }

    /// Sends an RPC-port reply (system-call return values, §7.2).
    pub fn reply_rpc(&mut self, to: ActorId, body: Value) -> bool {
        self.shared.deliver(Envelope::user(
            to,
            Message {
                from: Some(self.self_id),
                body,
                port: Port::Rpc,
            },
        ))
    }

    /// `become`: this actor's next behavior, applied after the current
    /// message is fully processed (§4).
    pub fn become_(&mut self, behavior: impl Behavior) {
        self.next_behavior = Some(Box::new(behavior));
    }

    /// Stops this actor after the current message: it is removed from the
    /// actor table and the registry, and later messages become dead
    /// letters.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    // ------------------------------------------------------------------
    // ActorSpace primitives (§5)
    // ------------------------------------------------------------------

    /// `send(pattern@space, message)` (§5.3).
    pub fn send_pattern(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
    ) -> Result<Disposition> {
        let msg = Message::from_sender(self.self_id, body);
        self.shared
            .with_registry(|reg, sink| reg.send(pattern, space, msg, sink))
    }

    /// `send(pattern, message)` resolved in this actor's host space (§7.1).
    pub fn send_here(&mut self, pattern: &Pattern, body: Value) -> Result<Disposition> {
        let space = self.host_space();
        self.send_pattern(pattern, space, body)
    }

    /// `broadcast(pattern@space, message)` (§5.3).
    pub fn broadcast(
        &mut self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
    ) -> Result<Disposition> {
        let msg = Message::from_sender(self.self_id, body);
        self.shared
            .with_registry(|reg, sink| reg.broadcast(pattern, space, msg, sink))
    }

    /// `broadcast` resolved in this actor's host space.
    pub fn broadcast_here(&mut self, pattern: &Pattern, body: Value) -> Result<Disposition> {
        let space = self.host_space();
        self.broadcast(pattern, space, body)
    }

    /// `send` where the *space itself* is chosen by a pattern (§5.3: "the
    /// actorSpace specification … may itself be pattern based"), resolved
    /// in this actor's host space.
    pub fn send_at(
        &mut self,
        pattern: &Pattern,
        space_pattern: &Pattern,
        body: Value,
    ) -> Result<Disposition> {
        let host = self.host_space();
        let space = self
            .shared
            .registry
            .resolve_space_pattern(space_pattern, host)?;
        self.send_pattern(pattern, space, body)
    }

    /// `create_actorSpace(capability)` (§5.2).
    pub fn create_space(&mut self, cap: Option<&Capability>) -> SpaceId {
        self.shared.op_create_space(cap)
    }

    /// `new_capability()` (§5.4).
    pub fn new_capability(&mut self) -> Capability {
        self.shared.minter.new_capability()
    }

    /// Makes this actor itself visible — "actors are autonomous entities,
    /// so they are able to make themselves visible or invisible given an
    /// actorSpace" (§5.4). Self-visibility still requires this actor's own
    /// capability if one was bound at creation.
    pub fn make_self_visible(
        &mut self,
        attr: &Path,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.make_visible(
            MemberId::Actor(self.self_id),
            vec![attr.clone()],
            space,
            cap,
        )
    }

    /// Makes this actor invisible in `space`.
    pub fn make_self_invisible(&mut self, space: SpaceId, cap: Option<&Capability>) -> Result<()> {
        self.shared
            .op_make_invisible(MemberId::Actor(self.self_id), space, cap)
    }

    /// `make_visible` for any member this actor holds a capability for.
    pub fn make_visible(
        &mut self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let member = member.into();
        self.shared.op_make_visible(member, attrs, space, cap)
    }

    /// `make_invisible` for any member.
    pub fn make_invisible(
        &mut self,
        member: impl Into<MemberId>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared.op_make_invisible(member.into(), space, cap)
    }

    /// `change_attributes` (§5.4).
    pub fn change_attributes(
        &mut self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared
            .op_change_attributes(member.into(), attrs, space, cap)
    }

    /// Resolves a pattern without sending.
    pub fn resolve(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<ActorId>> {
        self.shared.registry.resolve(pattern, space)
    }

    /// Self-reports this actor's load for least-loaded arbitration in
    /// `space` (§8 scheduling experimentation).
    pub fn report_load(&mut self, space: SpaceId, load: u64) -> Result<()> {
        let me = self.self_id;
        self.shared.registry.report_load(space, me, load)
    }
}
