//! The dynamic message payload type.
//!
//! ActorSpace is "not a programming language … the computations themselves
//! may be expressed in different programming notations" (§5). `Value` is
//! the neutral interchange payload those notations share: scalars, atoms,
//! mail addresses (actor and space), capabilities, and lists. The
//! interpreter crate evaluates directly over it, Rust behaviors
//! pattern-match on it, and the simulated network copies it between nodes.

use std::fmt;
use std::sync::Arc;

use actorspace_atoms::{Atom, Path};
use actorspace_capability::Capability;
use actorspace_core::{ActorId, SpaceId};

/// A message payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The unit/nil value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable string (cheap to clone).
    Str(Arc<str>),
    /// An interned atom.
    Atom(Atom),
    /// An actor mail address — addresses are first-class and may be
    /// communicated in messages (the Actor locality rule, §3).
    Addr(ActorId),
    /// An actorSpace mail address.
    Space(SpaceId),
    /// A capability — "can be … communicated in messages" (§5.4).
    Cap(Capability),
    /// A list of values (cheap to clone).
    List(Arc<Vec<Value>>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// An integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// An atom value.
    pub fn atom(name: &str) -> Value {
        Value::Atom(Atom::intern(name))
    }

    /// A list value.
    pub fn list(items: impl Into<Vec<Value>>) -> Value {
        Value::List(Arc::new(items.into()))
    }

    /// The integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, accepting `Int` with conversion.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The actor address, if this is an `Addr`.
    pub fn as_addr(&self) -> Option<ActorId> {
        match self {
            Value::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// The space address, if this is a `Space`.
    pub fn as_space(&self) -> Option<SpaceId> {
        match self {
            Value::Space(s) => Some(*s),
            _ => None,
        }
    }

    /// The list contents, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The capability, if this is a `Cap`.
    pub fn as_cap(&self) -> Option<Capability> {
        match self {
            Value::Cap(c) => Some(*c),
            _ => None,
        }
    }

    /// An attribute path from an atom or string value (`srv/fib`).
    pub fn as_path(&self) -> Option<Path> {
        match self {
            Value::Atom(a) => Some(Path::from(*a)),
            Value::Str(s) => Path::parse(s).ok(),
            _ => None,
        }
    }

    /// Truthiness: everything except `Unit`, `Bool(false)`, and `Int(0)` is
    /// true (used by the interpreter).
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Unit | Value::Bool(false) | Value::Int(0))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Atom(a) => write!(f, "{a}"),
            Value::Addr(a) => write!(f, "{a}"),
            Value::Space(s) => write!(f, "{s}"),
            Value::Cap(_) => write!(f, "#capability"),
            Value::List(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<ActorId> for Value {
    fn from(a: ActorId) -> Self {
        Value::Addr(a)
    }
}

impl From<SpaceId> for Value {
    fn from(s: SpaceId) -> Self {
        Value::Space(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::list(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
        let a = ActorId(3);
        assert_eq!(Value::Addr(a).as_addr(), Some(a));
        let s = SpaceId(4);
        assert_eq!(Value::Space(s).as_space(), Some(s));
    }

    #[test]
    fn list_round_trip() {
        let l = Value::list([Value::int(1), Value::str("two")]);
        let items = l.as_list().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], Value::int(1));
    }

    #[test]
    fn paths_from_atoms_and_strings() {
        use actorspace_atoms::path;
        assert_eq!(Value::atom("fib").as_path(), Some(path("fib")));
        assert_eq!(Value::str("srv/fib").as_path(), Some(path("srv/fib")));
        assert_eq!(Value::int(1).as_path(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Unit.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::int(0).truthy());
        assert!(Value::int(1).truthy());
        assert!(Value::str("").truthy());
        assert!(Value::list([]).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::atom("hi").to_string(), "hi");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::list([Value::int(1), Value::int(2)]).to_string(),
            "(1 2)"
        );
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let big = Value::list((0..1000).map(Value::int).collect::<Vec<_>>());
        let copy = big.clone();
        assert_eq!(big, copy);
    }
}
